//! Calibration probe: prints the baseline behaviours the experiment
//! environments are calibrated to (see DESIGN.md §3) — a raw event-engine
//! throughput probe (timing-wheel engine vs the heap-based reference
//! oracle), then one full-size transfer per (setup, transport) pair of
//! interest, with simulated time, throughput and event counts.
//!
//! Emits everything machine-readable to `BENCH_engine.json`, a
//! sweep-throughput section (fuzz-scenario worlds/sec at several `--jobs`
//! levels through `kmsg_bench::sweep`) to `BENCH_sweep.json`, and a
//! datacenter-scaling section (star fan-in worlds at increasing host
//! counts: setup time, events/sec, per-flow heap bytes) to
//! `BENCH_scale.json`.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin timing_probe [--quick]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::Rng;

use kmsg_apps::*;
use kmsg_core::Transport;
use kmsg_netsim::engine::{EventTarget, Sim};
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::memscope;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::reference::ReferenceSim;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::time::SimTime;

/// Counting allocator so the scaling section can report live heap bytes
/// per flow (the same measurement the pre-slab baseline in EXPERIMENTS.md
/// "Scaling" was taken with) and allocation calls per subsystem (tagged
/// through `memscope`, so a regression in `allocs_per_event` names its
/// offender).
struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: [AtomicU64; memscope::N_SCOPES] = [ZERO_CALLS; memscope::N_SCOPES];

fn alloc_snapshot() -> [u64; memscope::N_SCOPES] {
    std::array::from_fn(|i| ALLOC_CALLS[i].load(Ordering::Relaxed))
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(l.size(), Ordering::Relaxed);
        ALLOC_CALLS[memscope::current()].fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE_BYTES.fetch_sub(l.size(), Ordering::Relaxed);
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(l.size(), Ordering::Relaxed);
        ALLOC_CALLS[memscope::current()].fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, new)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct EngineProbe {
    name: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

struct TransferProbe {
    setup: String,
    proto: String,
    sim_secs: f64,
    throughput_mbps: f64,
    events: u64,
    wall_secs: f64,
}

struct CountTarget(AtomicU64);
impl EventTarget for CountTarget {
    fn fire(self: Arc<Self>, _sim: &Sim, _token: u64) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn probe(name: &'static str, events: u64, run: impl FnOnce() -> u64) -> EngineProbe {
    let wall = Instant::now();
    let executed = run();
    let wall_secs = wall.elapsed().as_secs_f64();
    assert_eq!(executed, events, "{name}: probe must drain exactly");
    EngineProbe {
        name,
        events,
        wall_secs,
        events_per_sec: events as f64 / wall_secs,
    }
}

/// Raw engine throughput: the now-lane fast path (zero-delay), a jittered
/// schedule spread across wheel levels, and the zero-alloc target path.
fn engine_probes(events: u64) -> Vec<EngineProbe> {
    let delays: Vec<u64> = {
        let mut rng = SeedSource::new(42).stream("engine-bench-jitter");
        (0..events)
            .map(|_| rng.gen_range(1_000u64..=50_000_000))
            .collect()
    };

    vec![
        probe("wheel/zero_delay", events, || {
            let sim = Sim::new(1);
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..events {
                let h = hits.clone();
                sim.schedule_in(Duration::ZERO, move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            sim.run_until(SimTime::ZERO);
            sim.events_executed()
        }),
        probe("heap/zero_delay", events, || {
            let sim = ReferenceSim::new();
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..events {
                let h = hits.clone();
                sim.schedule_in(Duration::ZERO, move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            sim.run_until(SimTime::ZERO);
            sim.events_executed()
        }),
        probe("wheel/jittered", events, || {
            let sim = Sim::new(1);
            for &d in &delays {
                sim.schedule_at(SimTime::from_nanos(d), |_| {});
            }
            sim.run_to_completion();
            sim.events_executed()
        }),
        probe("heap/jittered", events, || {
            let sim = ReferenceSim::new();
            for &d in &delays {
                sim.schedule_at(SimTime::from_nanos(d), |_| {});
            }
            sim.run_to_completion();
            sim.events_executed()
        }),
        probe("wheel/zero_delay_targets", events, || {
            let sim = Sim::new(1);
            let target = Arc::new(CountTarget(AtomicU64::new(0)));
            for i in 0..events {
                sim.schedule_target_in(Duration::ZERO, target.clone(), i);
            }
            sim.run_until(SimTime::ZERO);
            sim.events_executed()
        }),
    ]
}

fn speedup(probes: &[EngineProbe], new: &str, old: &str) -> f64 {
    let rate = |name: &str| {
        probes
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.events_per_sec)
            .unwrap_or(f64::NAN)
    };
    rate(new) / rate(old)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Hand-rolled JSON (the workspace has no serde_json).
fn write_json(engine_events: u64, engines: &[EngineProbe], transfers: &[TransferProbe]) {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"engine\",\n");
    out.push_str(&format!("  \"events_per_run\": {engine_events},\n"));
    out.push_str("  \"engines\": [\n");
    for (i, p) in engines.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}}}{}\n",
            json_escape(p.name),
            p.events,
            p.wall_secs,
            p.events_per_sec,
            if i + 1 < engines.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup\": {{\"zero_delay\": {:.2}, \"jittered\": {:.2}, \"zero_delay_targets_vs_heap\": {:.2}}},\n",
        speedup(engines, "wheel/zero_delay", "heap/zero_delay"),
        speedup(engines, "wheel/jittered", "heap/jittered"),
        speedup(engines, "wheel/zero_delay_targets", "heap/zero_delay"),
    ));
    out.push_str("  \"transfers\": [\n");
    for (i, t) in transfers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"setup\": \"{}\", \"transport\": \"{}\", \"sim_secs\": {:.3}, \"throughput_mbps\": {:.3}, \"events\": {}, \"wall_secs\": {:.3}, \"events_per_wall_sec\": {:.1}}}{}\n",
            json_escape(&t.setup),
            json_escape(&t.proto),
            t.sim_secs,
            t.throughput_mbps,
            t.events,
            t.wall_secs,
            t.events as f64 / t.wall_secs,
            if i + 1 < transfers.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", out).expect("write BENCH_engine.json");
}

struct SweepProbe {
    jobs: usize,
    worlds: u64,
    wall_secs: f64,
    worlds_per_sec: f64,
}

/// Sweep throughput: the same batch of fuzz-scenario worlds executed
/// through the sweep runner at increasing `--jobs` levels. Every level
/// produces identical verdicts (asserted); only wall-clock time may move.
fn sweep_probes(worlds: u64) -> Vec<SweepProbe> {
    let mut levels = vec![1usize, 2, 4, kmsg_bench::sweep::default_jobs()];
    levels.sort_unstable();
    levels.dedup();
    let mut out = Vec::new();
    let mut reference: Option<Vec<usize>> = None;
    for jobs in levels {
        let wall = Instant::now();
        let verdicts = kmsg_bench::fuzzer::sweep_seeds(0, worlds, jobs, None, |seed| {
            let v = kmsg_bench::fuzzer::check_seed(seed);
            (!v.is_empty()).then(|| v.len())
        });
        let wall_secs = wall.elapsed().as_secs_f64();
        let summary = vec![
            usize::try_from(verdicts.ran).expect("fits"),
            usize::try_from(verdicts.clean).expect("fits"),
        ];
        match &reference {
            None => reference = Some(summary),
            Some(r) => assert_eq!(*r, summary, "sweep outcome must not depend on jobs"),
        }
        out.push(SweepProbe {
            jobs,
            worlds,
            wall_secs,
            worlds_per_sec: worlds as f64 / wall_secs,
        });
    }
    out
}

fn write_sweep_json(probes: &[SweepProbe]) {
    let base = probes
        .first()
        .map_or(f64::NAN, |p| p.worlds_per_sec);
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"sweep\",\n");
    out.push_str("  \"world\": \"fuzz-scenario\",\n");
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        kmsg_bench::sweep::default_jobs()
    ));
    out.push_str("  \"levels\": [\n");
    for (i, p) in probes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"jobs\": {}, \"worlds\": {}, \"wall_secs\": {:.6}, \"worlds_per_sec\": {:.2}, \"speedup_vs_jobs1\": {:.2}}}{}\n",
            p.jobs,
            p.worlds,
            p.wall_secs,
            p.worlds_per_sec,
            p.worlds_per_sec / base,
            if i + 1 < probes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_sweep.json", out).expect("write BENCH_sweep.json");
}

/// The pre-slab per-flow heap cost (bytes) measured with this same idle
/// fan-in probe at 1000 flows — the reference the scaling rows compare
/// against (EXPERIMENTS.md "Scaling").
const BASELINE_BYTES_PER_FLOW: f64 = 6169.4;

struct ScaleRow {
    hosts: usize,
    setup_secs: f64,
    events: u64,
    run_secs: f64,
    events_per_sec: f64,
    sim_secs: f64,
    delivered_bytes: u64,
    bytes_per_flow: f64,
    established: usize,
    /// Allocator calls per executed event over the converging-senders
    /// world (setup included — constant-per-world costs amortize away at
    /// the large host counts the metric is judged at).
    allocs_per_event: f64,
    /// Allocator-call delta per `memscope` subsystem over the same run.
    allocs_by_scope: [u64; memscope::N_SCOPES],
}

struct Quiet;
impl StreamEvents for Quiet {}

struct AcceptQuiet;
impl StreamAccept for AcceptQuiet {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        Arc::new(Quiet)
    }
}

/// Live heap bytes attributable to one established-but-idle flow: build a
/// star fan-in world, settle it, open `flows` connections, and divide the
/// live-bytes delta by the flow count. Identical in shape and parameters
/// to the probe that produced [`BASELINE_BYTES_PER_FLOW`].
fn idle_flow_bytes(flows: usize) -> (f64, usize) {
    let sim = Sim::new(42);
    let net = Network::new(&sim);
    let topo = star_fanin(&net, flows);
    let _listener = TcpListener::bind(
        &net,
        topo.sink,
        CONVERGE_PORT,
        TcpConfig::default(),
        Arc::new(AcceptQuiet),
    )
    .expect("bind idle sink");
    sim.run_for(Duration::from_millis(10));
    let before = LIVE_BYTES.load(Ordering::Relaxed);
    // Ramp the dials: the hub's drop-tail queue holds ~4k SYNs (256 KiB),
    // so a single instantaneous burst of 10⁵ dials drops most of the herd
    // and exponential backoff pushes its tail past any fixed settle
    // window. Chunks under the queue depth with a short gap dial cleanly;
    // rows at or below the chunk size still burst exactly as before.
    let mut conns: Vec<TcpConn> = Vec::with_capacity(flows);
    for chunk in topo.senders.chunks(2048) {
        for &s in chunk {
            conns.push(
                TcpConn::connect(
                    &net,
                    s,
                    Endpoint::new(topo.sink, CONVERGE_PORT),
                    TcpConfig::default(),
                    Arc::new(Quiet),
                )
                .expect("idle connect"),
            );
        }
        sim.run_for(Duration::from_millis(20));
    }
    sim.run_for(Duration::from_secs(5));
    let established = conns.iter().filter(|c| c.is_established()).count();
    let after = LIVE_BYTES.load(Ordering::Relaxed);
    let delta = after as isize - before as isize;
    (delta as f64 / flows as f64, established)
}

/// Datacenter-scaling probe: per host count, an idle-flow memory
/// measurement plus a full converging-senders run (64 KiB per sender into
/// one sink) timing world setup and event throughput.
fn scale_probes(host_counts: &[usize], seed: u64) -> Vec<ScaleRow> {
    let mut rows = Vec::with_capacity(host_counts.len());
    for &hosts in host_counts {
        let (bytes_per_flow, established) = idle_flow_bytes(hosts);
        let before = alloc_snapshot();
        let r = run_converging_senders(&ConvergeSpec::star(seed, hosts));
        let after = alloc_snapshot();
        assert_eq!(
            r.delivered_bytes,
            r.flows as u64 * 64 * 1024,
            "scale run at {hosts} hosts must deliver everything"
        );
        assert_eq!(r.closed_flows, r.flows, "all flows must close at {hosts} hosts");
        let allocs_by_scope: [u64; memscope::N_SCOPES] =
            std::array::from_fn(|i| after[i] - before[i]);
        let total_allocs: u64 = allocs_by_scope.iter().sum();
        rows.push(ScaleRow {
            hosts,
            setup_secs: r.setup_secs,
            events: r.events,
            run_secs: r.run_secs,
            events_per_sec: r.events as f64 / r.run_secs,
            sim_secs: r.sim_secs,
            delivered_bytes: r.delivered_bytes,
            bytes_per_flow,
            established,
            allocs_per_event: total_allocs as f64 / r.events as f64,
            allocs_by_scope,
        });
    }
    rows
}

fn write_scale_json(rows: &[ScaleRow]) {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"scale\",\n");
    out.push_str("  \"topology\": \"star-fanin\",\n");
    out.push_str("  \"bytes_per_sender\": 65536,\n");
    out.push_str(&format!(
        "  \"baseline_bytes_per_flow\": {BASELINE_BYTES_PER_FLOW},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let by_scope = memscope::SCOPE_LABELS
            .iter()
            .zip(r.allocs_by_scope.iter())
            .map(|(label, n)| format!("\"{label}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"hosts\": {}, \"flows\": {}, \"setup_secs\": {:.4}, \"events\": {}, \
             \"run_secs\": {:.3}, \"events_per_sec\": {:.1}, \"sim_secs\": {:.3}, \
             \"delivered_bytes\": {}, \"bytes_per_flow\": {:.1}, \
             \"reduction_vs_baseline\": {:.3}, \"established\": {}, \
             \"allocs_per_event\": {:.3}, \"allocs_by_scope\": {{{}}}}}{}\n",
            r.hosts,
            r.hosts,
            r.setup_secs,
            r.events,
            r.run_secs,
            r.events_per_sec,
            r.sim_secs,
            r.delivered_bytes,
            r.bytes_per_flow,
            1.0 - r.bytes_per_flow / BASELINE_BYTES_PER_FLOW,
            r.established,
            r.allocs_per_event,
            by_scope,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_scale.json", out).expect("write BENCH_scale.json");
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let engine_events: u64 = if args.quick { 200_000 } else { 1_000_000 };

    kmsg_telemetry::log_info!("Engine throughput probe ({engine_events} events per run):\n");
    kmsg_telemetry::log_info!(
        "{:<26} {:>12} {:>10} {:>16}",
        "engine/workload", "events", "wall", "events/sec"
    );
    kmsg_bench::rule(68);
    let engines = engine_probes(engine_events);
    for p in &engines {
        kmsg_telemetry::log_info!(
            "{:<26} {:>12} {:>8.3} s {:>16.0}",
            p.name, p.events, p.wall_secs, p.events_per_sec
        );
    }
    kmsg_telemetry::log_info!(
        "\nwheel vs heap speedup: zero-delay {:.2}x, jittered {:.2}x, \
         zero-delay targets {:.2}x\n",
        speedup(&engines, "wheel/zero_delay", "heap/zero_delay"),
        speedup(&engines, "wheel/jittered", "heap/jittered"),
        speedup(&engines, "wheel/zero_delay_targets", "heap/zero_delay"),
    );

    let dataset_size = if args.quick {
        args.size
    } else {
        PAPER_DATASET_SIZE
    };
    kmsg_telemetry::log_info!(
        "Calibration probe ({} MB dataset):\n",
        dataset_size / (1024 * 1024)
    );
    kmsg_telemetry::log_info!(
        "{:<8} {:<5} {:>10} {:>12} {:>12} {:>9}",
        "setup", "proto", "sim time", "throughput", "events", "wall"
    );
    kmsg_bench::rule(62);
    let mut transfers = Vec::new();
    for (setup, proto) in [
        (Setup::Local, Transport::Tcp),
        (Setup::Local, Transport::Udt),
        (Setup::EuVpc, Transport::Tcp),
        (Setup::EuVpc, Transport::Udt),
        (Setup::Eu2Us, Transport::Tcp),
        (Setup::Eu2Us, Transport::Udt),
        (Setup::Eu2Au, Transport::Tcp),
        (Setup::Eu2Au, Transport::Udt),
    ] {
        let dataset = Dataset::climate(dataset_size, args.seed);
        let cfg = ExperimentConfig::transfer(setup.clone(), proto, dataset, args.seed);
        let wall = Instant::now();
        let r = run_experiment(&cfg);
        assert!(r.verified, "calibration transfers must verify");
        let wall_secs = wall.elapsed().as_secs_f64();
        kmsg_telemetry::log_info!(
            "{:<8} {:<5} {:>8.1} s {:>9.2} MB/s {:>12} {:>7.1} s",
            setup.label(),
            proto.to_string(),
            r.transfer_time.expect("completed").as_secs_f64(),
            r.throughput.expect("completed") / 1e6,
            r.events,
            wall_secs
        );
        transfers.push(TransferProbe {
            setup: setup.label().to_string(),
            proto: proto.to_string(),
            sim_secs: r.transfer_time.expect("completed").as_secs_f64(),
            throughput_mbps: r.throughput.expect("completed") / 1e6,
            events: r.events,
            wall_secs,
        });
    }
    kmsg_telemetry::log_info!(
        "\nCalibration targets (paper, §V): TCP disk-limited (~110 MB/s) at\n\
         Local/EU-VPC and collapsing to ~1-2 MB/s on the lossy WAN paths;\n\
         UDT near the ~10 MB/s EC2 UDP policer on every real-network setup."
    );

    write_json(engine_events, &engines, &transfers);

    // Sweep throughput: how fast the parallel runner turns over whole
    // worlds. Wall-clock scaling tracks the machine's core count (a
    // single-core container shows ~1.0x at every level — the byte-identity
    // assertion still exercises the parallel path).
    let sweep_worlds: u64 = if args.quick { 24 } else { 96 };
    kmsg_telemetry::log_info!(
        "\nSweep throughput probe ({sweep_worlds} fuzz-scenario worlds, \
         {} cores available):\n",
        kmsg_bench::sweep::default_jobs()
    );
    kmsg_telemetry::log_info!(
        "{:<8} {:>10} {:>16} {:>10}",
        "jobs", "wall", "worlds/sec", "speedup"
    );
    kmsg_bench::rule(48);
    let sweeps = sweep_probes(sweep_worlds);
    let base = sweeps.first().map_or(f64::NAN, |p| p.worlds_per_sec);
    for p in &sweeps {
        kmsg_telemetry::log_info!(
            "{:<8} {:>8.3} s {:>16.2} {:>9.2}x",
            p.jobs,
            p.wall_secs,
            p.worlds_per_sec,
            p.worlds_per_sec / base
        );
    }
    write_sweep_json(&sweeps);

    // Datacenter scaling: star fan-in worlds at increasing host counts.
    // Each row pairs an idle-flow heap measurement with a full converging
    // transfer (10⁵ hosts in the full run; CI's --quick stops at the 10⁴
    // smoke row).
    let host_counts: &[usize] = if args.quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    kmsg_telemetry::log_info!(
        "\nScaling probe (star fan-in, 64 KiB per sender, baseline {:.1} B/flow):\n",
        BASELINE_BYTES_PER_FLOW
    );
    kmsg_telemetry::log_info!(
        "{:<8} {:>10} {:>12} {:>14} {:>12} {:>10} {:>10}",
        "hosts", "setup", "events", "events/sec", "B/flow", "vs base", "allocs/ev"
    );
    kmsg_bench::rule(84);
    let scale_rows = scale_probes(host_counts, args.seed);
    for r in &scale_rows {
        kmsg_telemetry::log_info!(
            "{:<8} {:>8.3} s {:>12} {:>14.0} {:>12.1} {:>9.1}% {:>10.3}",
            r.hosts,
            r.setup_secs,
            r.events,
            r.events_per_sec,
            r.bytes_per_flow,
            (1.0 - r.bytes_per_flow / BASELINE_BYTES_PER_FLOW) * 100.0,
            r.allocs_per_event
        );
        assert_eq!(
            r.established, r.hosts,
            "every idle probe flow must establish at {} hosts",
            r.hosts
        );
    }
    write_scale_json(&scale_rows);

    // Flight-recorder sample: one small mixed-transport transfer on the
    // lossy WAN path with telemetry enabled. The exported files contain
    // only sim-time-derived data (wall-clock rates stay in
    // BENCH_engine.json), so they are byte-identical for a given seed.
    let tel_size = 4 * 1024 * 1024;
    let dataset = Dataset::climate(tel_size, args.seed);
    let mut cfg = ExperimentConfig::transfer(Setup::Eu2Us, Transport::Data, dataset, args.seed);
    cfg.telemetry = true;
    let r = run_experiment(&cfg);
    kmsg_bench::write_trace_out(&args, &r.recorder);
    r.recorder
        .write_snapshot("telemetry.json")
        .expect("write telemetry.json");
    r.recorder
        .write_jsonl("telemetry.jsonl")
        .expect("write telemetry.jsonl");
    kmsg_telemetry::log_info!(
        "\nWrote BENCH_engine.json, BENCH_sweep.json, BENCH_scale.json, telemetry.json, \
         telemetry.jsonl ({} events recorded, {} retained)",
        r.recorder.recorded_total(),
        r.recorder.event_count()
    );
}
