//! Calibration probe: prints the baseline behaviours the experiment
//! environments are calibrated to (see DESIGN.md §3) — one full-size
//! transfer per (setup, transport) pair of interest, with simulated time,
//! throughput and event counts.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin timing_probe
//! ```

use kmsg_apps::*;
use kmsg_core::Transport;
use std::time::Instant;

fn main() {
    println!("Calibration probe ({} MB dataset):\n", PAPER_DATASET_SIZE / (1024 * 1024));
    println!(
        "{:<8} {:<5} {:>10} {:>12} {:>12} {:>9}",
        "setup", "proto", "sim time", "throughput", "events", "wall"
    );
    kmsg_bench::rule(62);
    for (setup, proto) in [
        (Setup::Local, Transport::Tcp),
        (Setup::Local, Transport::Udt),
        (Setup::EuVpc, Transport::Tcp),
        (Setup::EuVpc, Transport::Udt),
        (Setup::Eu2Us, Transport::Tcp),
        (Setup::Eu2Us, Transport::Udt),
        (Setup::Eu2Au, Transport::Tcp),
        (Setup::Eu2Au, Transport::Udt),
    ] {
        let dataset = Dataset::climate(PAPER_DATASET_SIZE, 1);
        let cfg = ExperimentConfig::transfer(setup.clone(), proto, dataset, 1);
        let wall = Instant::now();
        let r = run_experiment(&cfg);
        assert!(r.verified, "calibration transfers must verify");
        println!(
            "{:<8} {:<5} {:>8.1} s {:>9.2} MB/s {:>12} {:>7.1} s",
            setup.label(),
            proto.to_string(),
            r.transfer_time.expect("completed").as_secs_f64(),
            r.throughput.expect("completed") / 1e6,
            r.events,
            wall.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nCalibration targets (paper, §V): TCP disk-limited (~110 MB/s) at\n\
         Local/EU-VPC and collapsing to ~1-2 MB/s on the lossy WAN paths;\n\
         UDT near the ~10 MB/s EC2 UDP policer on every real-network setup."
    );
}
