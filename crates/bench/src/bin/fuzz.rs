//! **Fuzz** — seeded scenario fuzzing with protocol invariant oracles.
//!
//! For every seed in the range, a [`ScenarioSpec`] is generated
//! deterministically (topology, link shape, workload, healing fault
//! schedule), executed in the simulator with full telemetry, and the
//! recorded trace plus end-of-run facts are judged by the whole
//! `kmsg-oracle` suite. On a violation the scenario is shrunk to a minimal
//! spec that still trips the same rule, and the run writes replayable
//! artifacts — `failing_seed.json` (minimized + original spec + verdict)
//! and `failing_trace.jsonl` (the minimized run's flight-recorder stream) —
//! then exits nonzero so CI can upload them.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fuzz -- \
//!     [--seeds A..B] [--jobs N] [--budget-secs N] [--out DIR] \
//!     [--selftest] [--replay failing_seed.json] [--quick] [--verbose]
//! ```
//!
//! * `--seeds A..B` — half-open seed range to fuzz (default `0..200`).
//! * `--jobs N` — worker threads sharding the seed range (default: all
//!   cores). Output is byte-identical to `--jobs 1`: every world is
//!   isolated and the first failing seed is resolved in submission
//!   order (see `kmsg_bench::sweep`).
//! * `--budget-secs N` — soft wall-clock budget: no new scenario starts
//!   after it expires (already-started runs finish; default unlimited).
//! * `--out DIR` — artifact directory (default `fuzz_artifacts`).
//! * `--selftest` — before fuzzing, run the first seed twice and fail
//!   unless trace and verdict are byte-identical.
//! * `--replay FILE` — run one scenario from an artifact (either a bare
//!   spec document or a `failing_seed.json`) instead of fuzzing.
//! * `--overlay-seeds A..B` — additionally sweep the mesh pub/sub overlay
//!   scenario family ([`OverlaySpec`]) over its own seed range after the
//!   chain sweep: gossip-maintained routing tables, scripted partitions
//!   and rerouting, judged by the same oracle suite (which then includes
//!   the overlay rules). Disabled by default.
//! * `--quick` — shorthand for `--seeds 0..25`.

use std::time::{Duration, Instant};

use kmsg_apps::fuzz::ScenarioSpec;
use kmsg_apps::OverlaySpec;
use kmsg_bench::fuzzer::{check_overlay_spec, check_spec, sweep_seeds};
use kmsg_oracle::{minimize, render_verdict, Json, Violation};

/// Parsed command line.
struct FuzzArgs {
    seed_from: u64,
    seed_to: u64,
    jobs: usize,
    budget_secs: Option<u64>,
    out_dir: String,
    selftest: bool,
    replay: Option<String>,
    overlay_seeds: Option<(u64, u64)>,
}

fn parse_args() -> FuzzArgs {
    let mut out = FuzzArgs {
        seed_from: 0,
        seed_to: 200,
        jobs: kmsg_bench::sweep::default_jobs(),
        budget_secs: None,
        out_dir: "fuzz_artifacts".to_string(),
        selftest: false,
        replay: None,
        overlay_seeds: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = args.next().expect("--seeds takes A..B");
                let (a, b) = v.split_once("..").expect("--seeds takes A..B");
                out.seed_from = a.parse().expect("--seeds lower bound");
                out.seed_to = b.parse().expect("--seeds upper bound");
                assert!(out.seed_to > out.seed_from, "--seeds range is empty");
            }
            "--jobs" => {
                out.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs takes a number");
            }
            "--budget-secs" => {
                out.budget_secs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--budget-secs takes a number"),
                );
            }
            "--overlay-seeds" => {
                let v = args.next().expect("--overlay-seeds takes A..B");
                let (a, b) = v.split_once("..").expect("--overlay-seeds takes A..B");
                let from = a.parse().expect("--overlay-seeds lower bound");
                let to = b.parse().expect("--overlay-seeds upper bound");
                assert!(to > from, "--overlay-seeds range is empty");
                out.overlay_seeds = Some((from, to));
            }
            "--out" => out.out_dir = args.next().expect("--out takes a directory"),
            "--selftest" => out.selftest = true,
            "--replay" => out.replay = Some(args.next().expect("--replay takes a file")),
            "--quick" => {
                out.seed_from = 0;
                out.seed_to = 25;
            }
            "--verbose" => kmsg_telemetry::log::set_verbose(true),
            other => panic!("unknown flag {other}; see the fuzz binary docs"),
        }
    }
    out
}

/// Whether a spec still trips the rule that made the original run fail.
fn still_fails(spec: &ScenarioSpec, oracle: &str, rule: &str) -> bool {
    check_spec(spec)
        .1
        .iter()
        .any(|v| v.oracle == oracle && v.rule == rule)
}

/// Shrinks a failing spec and writes the replayable artifacts. Returns the
/// rendered `failing_seed.json` document.
fn minimize_and_write(
    original: &ScenarioSpec,
    violations: &[Violation],
    out_dir: &str,
) -> String {
    let first = violations.first().expect("at least one violation");
    let (oracle, rule) = (first.oracle, first.rule);
    kmsg_telemetry::log_info!(
        "seed {}: minimizing against [{oracle}/{rule}] …",
        original.seed
    );
    let (minimized, tested) =
        minimize(original.clone(), |s| still_fails(s, oracle, rule));
    kmsg_telemetry::log_info!(
        "minimized after {tested} candidate runs: complexity {} -> {}",
        kmsg_oracle::Shrinkable::complexity(original),
        kmsg_oracle::Shrinkable::complexity(&minimized)
    );
    let (run, min_violations) = check_spec(&minimized);
    let doc = Json::obj(vec![
        ("spec", minimized.to_json()),
        ("original", original.to_json()),
        ("oracle", Json::Str(oracle.to_string())),
        ("rule", Json::Str(rule.to_string())),
        ("verdict", Json::Str(render_verdict(&min_violations))),
    ]);
    let rendered = doc.render();
    std::fs::create_dir_all(out_dir).expect("create artifact directory");
    let seed_path = format!("{out_dir}/failing_seed.json");
    let trace_path = format!("{out_dir}/failing_trace.jsonl");
    std::fs::write(&seed_path, &rendered).expect("write failing_seed.json");
    std::fs::write(&trace_path, run.result.recorder.to_jsonl())
        .expect("write failing_trace.jsonl");
    kmsg_telemetry::log_info!("wrote {seed_path} and {trace_path}");
    rendered
}

/// Loads a spec from an artifact file: a bare spec document or a
/// `failing_seed.json` wrapper (its `spec` field wins).
fn load_replay(path: &str) -> ScenarioSpec {
    let text = std::fs::read_to_string(path).expect("read replay artifact");
    let doc = Json::parse(&text).expect("parse replay artifact");
    let spec_doc = doc.get("spec").unwrap_or(&doc);
    ScenarioSpec::from_json(spec_doc).expect("decode replay spec")
}

fn selftest(seed: u64) {
    let spec = ScenarioSpec::generate(seed);
    let run_once = || {
        let (run, violations) = check_spec(&spec);
        (run.result.recorder.to_jsonl(), render_verdict(&violations))
    };
    let (jsonl_a, verdict_a) = run_once();
    let (jsonl_b, verdict_b) = run_once();
    assert!(
        jsonl_a == jsonl_b,
        "selftest: same-seed traces diverged (seed {seed})"
    );
    assert_eq!(
        verdict_a, verdict_b,
        "selftest: same-seed verdicts diverged (seed {seed})"
    );
    kmsg_telemetry::log_info!(
        "selftest: seed {seed} byte-identical across two runs ({} trace bytes)",
        jsonl_a.len()
    );
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.replay {
        let spec = load_replay(path);
        kmsg_telemetry::log_info!("replaying {path} (seed {})", spec.seed);
        let (_, violations) = check_spec(&spec);
        kmsg_telemetry::log_info!("{}", render_verdict(&violations).trim_end());
        if !violations.is_empty() {
            // Reproduced the recorded failure: exit nonzero like the
            // original fuzz run did.
            std::process::exit(1);
        }
        return;
    }

    if args.selftest {
        selftest(args.seed_from);
    }

    let started = Instant::now();
    let deadline = args
        .budget_secs
        .map(|secs| started + Duration::from_secs(secs));
    let outcome = sweep_seeds(args.seed_from, args.seed_to, args.jobs, deadline, |seed| {
        let spec = ScenarioSpec::generate(seed);
        let violations = check_spec(&spec).1;
        (!violations.is_empty()).then_some((spec, violations))
    });
    if outcome.budget_hit {
        kmsg_telemetry::log_info!(
            "budget of {}s exhausted after {} scenarios; stopping early",
            args.budget_secs.unwrap_or(0),
            outcome.ran
        );
    }
    if let Some((seed, (spec, violations))) = outcome.failure {
        kmsg_telemetry::log_info!(
            "seed {seed} VIOLATES {} invariant(s):\n{}",
            violations.len(),
            render_verdict(&violations).trim_end()
        );
        minimize_and_write(&spec, &violations, &args.out_dir);
        std::process::exit(1);
    }
    kmsg_telemetry::log_info!(
        "fuzz: {}/{} scenarios oracle-clean in {:.1}s (seeds {}..{})",
        outcome.clean,
        outcome.ran,
        started.elapsed().as_secs_f64(),
        args.seed_from,
        args.seed_from + outcome.ran
    );

    if let Some((from, to)) = args.overlay_seeds {
        let overlay_started = Instant::now();
        let outcome = sweep_seeds(from, to, args.jobs, deadline, |seed| {
            let spec = OverlaySpec::generate(seed);
            let violations = check_overlay_spec(&spec).1;
            (!violations.is_empty()).then_some((spec, violations))
        });
        if outcome.budget_hit {
            kmsg_telemetry::log_info!(
                "budget exhausted after {} overlay scenarios; stopping early",
                outcome.ran
            );
        }
        if let Some((seed, (spec, violations))) = outcome.failure {
            kmsg_telemetry::log_info!(
                "overlay seed {seed} VIOLATES {} invariant(s):\n{}",
                violations.len(),
                render_verdict(&violations).trim_end()
            );
            // Overlay specs replay from the seed alone, so the artifact
            // records the seed, verdict and trace rather than a shrunk
            // spec document.
            let (report, _) = check_overlay_spec(&spec);
            std::fs::create_dir_all(&args.out_dir).expect("create artifact directory");
            let doc = Json::obj(vec![
                ("overlay_seed", Json::Num(seed as f64)),
                ("verdict", Json::Str(render_verdict(&violations))),
                ("report", Json::Str(report.render())),
            ]);
            let seed_path = format!("{}/overlay_failing_seed.json", args.out_dir);
            let trace_path = format!("{}/overlay_failing_trace.jsonl", args.out_dir);
            std::fs::write(&seed_path, doc.render()).expect("write overlay_failing_seed.json");
            std::fs::write(&trace_path, report.recorder.to_jsonl())
                .expect("write overlay_failing_trace.jsonl");
            kmsg_telemetry::log_info!("wrote {seed_path} and {trace_path}");
            std::process::exit(1);
        }
        kmsg_telemetry::log_info!(
            "fuzz: {}/{} overlay scenarios oracle-clean in {:.1}s (seeds {}..{})",
            outcome.clean,
            outcome.ran,
            overlay_started.elapsed().as_secs_f64(),
            from,
            from + outcome.ran
        );
    }
}
