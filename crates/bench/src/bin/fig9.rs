//! **Figure 9** — data transfer throughput for different RTTs, over TCP,
//! UDT and the adaptive DATA meta-protocol (error bars: 95% confidence
//! intervals; repetitions until the relative standard error < 10%, as in
//! the paper).
//!
//! Expected shape: TCP excels at low RTT (disk-limited at ~110 MB/s
//! locally and in the VPC) but collapses on the lossy high-BDP paths; UDT
//! sits near the 10 MB/s UDP policer everywhere; DATA tracks whichever is
//! better, with some ramp-up cost and higher variance.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig9 [--quick] [--size-mb N] [--reps N]
//! ```

use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, Setup};
use kmsg_core::Transport;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let dataset = Dataset::climate(args.size, args.seed);
    kmsg_telemetry::log_info!(
        "Figure 9 — disk-to-disk transfer throughput vs RTT ({} MB dataset, \
         >= {} runs, RSE < 10% stopping rule)",
        args.size / (1024 * 1024),
        args.min_reps
    );
    kmsg_telemetry::log_info!(
        "\n{:<8} {:>8} | {:>22} {:>22} {:>22}",
        "setup", "RTT", "TCP (MB/s ± CI95)", "UDT (MB/s ± CI95)", "DATA (MB/s ± CI95)"
    );
    kmsg_bench::rule(92);
    for setup in Setup::paper_setups() {
        let mut row = format!(
            "{:<8} {:>5.0} ms |",
            setup.label(),
            setup.rtt().as_secs_f64() * 1e3
        );
        for transport in [Transport::Tcp, Transport::Udt, Transport::Data] {
            let stats = kmsg_bench::repeat_until_stable(args.min_reps, args.reps, |rep| {
                let mut cfg = ExperimentConfig::transfer(
                    setup.clone(),
                    transport,
                    dataset,
                    args.seed.wrapping_mul(1000) + rep,
                );
                if transport == Transport::Data {
                    // The paper measures repeated runs against a standing
                    // deployment, so the learner arrives warm; model that
                    // with warm-up rounds and report the last round.
                    cfg.transfer_rounds = if setup.rtt() < std::time::Duration::from_millis(50) {
                        10
                    } else {
                        2
                    };
                    cfg.max_sim_time = std::time::Duration::from_secs(2400);
                }
                let result = run_experiment(&cfg);
                assert!(result.verified, "transfer must verify ({transport})");
                result.throughput.expect("transfer completed") / 1e6
            });
            row.push_str(&format!(
                " {:>12.2} ± {:>6.2}",
                stats.mean(),
                stats.ci95_half_width()
            ));
        }
        kmsg_telemetry::log_info!("{row}");
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): TCP ~disk speed at <= 3 ms RTT, then a sharp\n\
         drop-off; UDT consistent near 10 MB/s on every real-network setup\n\
         (Amazon's UDP rate limit) and buffer/queue-limited locally; DATA\n\
         close to the best protocol at every RTT, with ramp-up overhead and\n\
         wider error bars."
    );
}
