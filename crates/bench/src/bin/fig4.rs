//! **Figure 4** — TD learner with the dense matrix `Q(s, a)`
//! implementation (11 states × 5 actions = 55 entries), ε: 0.8 → 0.1,
//! Δε = 0.01: for large state-action spaces the model converges too
//! slowly to be useful within a transfer.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig4 [--quick]
//! ```

use kmsg_bench::learner_env;
use kmsg_core::data::{PatternKind, PspKind, ValueBackend};
use kmsg_core::Transport;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let secs = if args.quick { 30 } else { 120 };
    kmsg_telemetry::log_info!("Figure 4 — TD learner, dense matrix Q(s,a) ({secs} s, analysis link)");
    let tcp_ref = learner_env::reference_throughput(Transport::Tcp, 20, args.seed);
    let udt_ref = learner_env::reference_throughput(Transport::Udt, 20, args.seed);
    let cfg = learner_env::td_data_cfg(
        ValueBackend::Matrix,
        0.8, // the paper's eps_max for the matrix run
        PspKind::Pattern(PatternKind::MinimalRest),
        args.seed,
    );
    let result = learner_env::run_timed(Transport::Data, Some(cfg), secs, args.seed);
    learner_env::print_learner_table("matrix Q(s,a)", &result, (tcp_ref, udt_ref));
        // Single traces are seed-noisy; summarise a few seeds for context.
    kmsg_telemetry::log_info!("\nmulti-seed tails (final quarter):");
    for extra in 1..4 {
        let seed = args.seed + extra;
        let cfg = learner_env::td_data_cfg(
            ValueBackend::Matrix,
            0.8,
            PspKind::Pattern(PatternKind::MinimalRest),
            seed,
        );
        let r = learner_env::run_timed(Transport::Data, Some(cfg), secs, seed);
        let (thr, ratio) = kmsg_bench::learner_summary::tail(&r);
        kmsg_telemetry::log_info!(
            "  seed {seed}: mean tail throughput {} MB/s, mean tail ratio {}",
            kmsg_bench::fmt_mbps(thr),
            kmsg_bench::fmt_ratio(ratio)
        );
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): the 55-entry table stays under-explored; the\n\
         ratio keeps wandering and throughput settles late, if at all. Note:\n\
         this implementation adopts the full TD target on first visits\n\
         (DESIGN.md §6.6), which softens the paper's worst case — the matrix\n\
         backend here converges late/noisily rather than never. The robust\n\
         multi-seed comparison across backends is `ablation_learners`."
    );
}
