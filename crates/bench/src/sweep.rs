//! Parallel multi-world sweep runner.
//!
//! The paper's evaluation is a parameter sweep: many independent,
//! self-contained simulation worlds (fuzz seeds, figure data points,
//! ablation cells). Each world is deterministic given its spec, so the
//! sweep is embarrassingly parallel — the only thing that must *not*
//! change with parallelism is the output. This module shards worlds
//! across a small work-stealing thread pool and reduces results in
//! **submission order**, so the artifacts a sweep produces (verdict
//! lists, figure tables, JSON exports) are byte-identical at `--jobs 1`
//! and `--jobs N`.
//!
//! Determinism model:
//!
//! * **Worlds never cross threads.** A task is a spec (seed, cell
//!   parameters); the worker thread that claims it constructs *and* runs
//!   the world. Nothing about a `Sim` needs to be `Send`.
//! * **Per-world isolation.** Every world owns its RNG streams, its
//!   flight recorder and its connection-id counter (all per-`Sim` since
//!   PR 2), so concurrent worlds cannot observe each other.
//! * **Ordered reduction.** Results land in a slot keyed by submission
//!   index; the caller reads them back as a `Vec` in submission order.
//!   Thread scheduling affects only wall-clock time, never output.
//!
//! For early-exit sweeps (the fuzzer stops at the first failing seed)
//! use [`map_cancel`] with a [`SweepCtl`]: `cancel_after(i)` guarantees
//! every index `<= i` still runs to completion while indices `> i` may
//! be skipped — so the *smallest* failing index is found exactly as the
//! sequential loop would find it, regardless of which thread saw a
//! failure first.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Cancellation handle passed to every task in [`map_cancel`].
///
/// `cancel_after(i)` sets a cutoff: indices greater than `i` may be
/// skipped, indices up to and including `i` always run. Calling it from
/// several tasks keeps the smallest cutoff, so the winning index is the
/// smallest one that requested cancellation — matching a sequential
/// early-exit loop.
#[derive(Debug)]
pub struct SweepCtl {
    /// Exclusive upper bound of indices that must still run.
    cutoff: AtomicUsize,
}

impl SweepCtl {
    fn new(len: usize) -> Self {
        SweepCtl {
            cutoff: AtomicUsize::new(len),
        }
    }

    /// Requests that indices strictly greater than `idx` be skipped.
    pub fn cancel_after(&self, idx: usize) {
        self.cutoff.fetch_min(idx.saturating_add(1), Ordering::SeqCst);
    }

    /// Whether `idx` is still required to run.
    #[must_use]
    pub fn wanted(&self, idx: usize) -> bool {
        idx < self.cutoff.load(Ordering::SeqCst)
    }
}

/// Runs `f` over every task, returning results in submission order.
///
/// `jobs <= 1` (or a sweep of one task) runs everything sequentially on
/// the calling thread — zero threads spawned, exactly today's behaviour.
/// Otherwise `min(jobs, tasks)` workers share the tasks through
/// work-stealing deques: each worker drains its own shard front-to-back
/// and steals from the back of a sibling's deque when idle.
pub fn map<T, R, F>(jobs: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_cancel(jobs, tasks, |_ctl, idx, task| f(idx, task))
        .into_iter()
        .map(|r| r.expect("no cancellation requested"))
        .collect()
}

/// [`map`] with cooperative early exit. Skipped tasks yield `None`; the
/// prefix of indices below the final cutoff is always fully `Some`.
pub fn map_cancel<T, R, F>(jobs: usize, tasks: Vec<T>, f: F) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(&SweepCtl, usize, T) -> R + Sync,
{
    let n = tasks.len();
    let ctl = SweepCtl::new(n);
    let workers = jobs.clamp(1, n.max(1));
    if workers <= 1 {
        // Sequential fast path: no threads, no slots, no locking.
        let mut out = Vec::with_capacity(n);
        for (idx, task) in tasks.into_iter().enumerate() {
            if ctl.wanted(idx) {
                out.push(Some(f(&ctl, idx, task)));
            } else {
                out.push(None);
            }
        }
        return out;
    }

    // Task and result slots, keyed by submission index. A worker claims
    // an index from a deque, takes the task out of its slot, runs it on
    // this thread, and parks the result in the matching result slot.
    let task_slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Round-robin pre-shard: worker w owns indices w, w+jobs, w+2*jobs…
    // Low indices are spread across workers, so under cancellation the
    // still-wanted prefix drains with full parallelism.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    let run_one = |idx: usize| {
        let task = task_slots[idx].lock().take();
        if let Some(task) = task {
            if ctl.wanted(idx) {
                let r = f(&ctl, idx, task);
                *result_slots[idx].lock() = Some(r);
            }
        }
    };

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let run_one = &run_one;
            scope.spawn(move || {
                loop {
                    // Own shard first (front: submission order)…
                    let idx = deques[me].lock().pop_front();
                    if let Some(idx) = idx {
                        run_one(idx);
                        continue;
                    }
                    // …then steal from a sibling's back.
                    let mut stole = false;
                    for other in (0..deques.len()).filter(|&o| o != me) {
                        let idx = deques[other].lock().pop_back();
                        if let Some(idx) = idx {
                            run_one(idx);
                            stole = true;
                            break;
                        }
                    }
                    if !stole {
                        break; // every deque empty: sweep drained
                    }
                }
            });
        }
    });

    result_slots.into_iter().map(|s| s.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn preserves_submission_order_under_adversarial_delays() {
        // Early tasks sleep longest, so with several workers the results
        // *complete* in roughly reverse order — the output must still be
        // in submission order.
        let tasks: Vec<usize> = (0..24).collect();
        let out = map(4, tasks, |idx, v| {
            assert_eq!(idx, v);
            std::thread::sleep(Duration::from_millis(((24 - v) % 7) as u64));
            v * 10
        });
        assert_eq!(out, (0..24).map(|v| v * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |idx: usize, v: u64| -> u64 { v.wrapping_mul(31).wrapping_add(idx as u64) };
        let tasks: Vec<u64> = (0..57).map(|i| i * 3 + 1).collect();
        let seq = map(1, tasks.clone(), work);
        let par = map(4, tasks, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map(8, (0..100).collect::<Vec<usize>>(), |_idx, v| {
            calls.fetch_add(1, Ordering::SeqCst);
            v
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn jobs_zero_and_one_run_in_caller_thread() {
        let caller = std::thread::current().id();
        for jobs in [0, 1] {
            let out = map(jobs, vec![1, 2, 3], |_idx, v| {
                assert_eq!(std::thread::current().id(), caller);
                v * 2
            });
            assert_eq!(out, vec![2, 4, 6]);
        }
    }

    #[test]
    fn cancel_after_keeps_the_full_prefix() {
        // Every task above 10 asks for cancellation; the smallest cutoff
        // must win and indices 0..=10 must all have run.
        let out = map_cancel(4, (0..64).collect::<Vec<usize>>(), |ctl, idx, v| {
            if idx >= 10 {
                ctl.cancel_after(10);
            }
            v
        });
        for (idx, slot) in out.iter().enumerate().take(11) {
            assert_eq!(slot.as_ref(), Some(&idx), "prefix index {idx} must run");
        }
        // Everything past the cutoff that did get skipped is None, and
        // nothing reordered: present values equal their index.
        for (idx, slot) in out.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, idx);
            }
        }
        assert!(out[11..].iter().any(Option::is_none), "some tail skipped");
    }

    #[test]
    fn cancel_smallest_failure_wins_regardless_of_discovery_order() {
        // Two "failures" at 5 and 20; whichever is discovered first, the
        // prefix up to 5 always runs, so a submission-order scan finds 5.
        for jobs in [1, 2, 4, 8] {
            let out = map_cancel(jobs, (0..40).collect::<Vec<usize>>(), |ctl, idx, v| {
                let failed = idx == 5 || idx == 20;
                if failed {
                    ctl.cancel_after(idx);
                }
                (v, failed)
            });
            let first_failure = out
                .iter()
                .enumerate()
                .find_map(|(i, r)| r.as_ref().and_then(|(_, f)| f.then_some(i)));
            assert_eq!(first_failure, Some(5), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_sweep() {
        let out: Vec<u32> = map(4, Vec::<u32>::new(), |_i, v| v);
        assert!(out.is_empty());
    }
}
