//! Library core of the `fuzz` binary: seed checking and the parallel
//! first-failure sweep.
//!
//! Factored out of `bin/fuzz.rs` so integration tests can assert that the
//! parallel sweep is byte-identical to the sequential one without
//! spawning processes, and so other drivers (CI, the timing probe) can
//! reuse the world-checking logic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use kmsg_apps::fuzz::{oracle_config, run_scenario, FuzzRun, ScenarioSpec};
use kmsg_apps::{overlay_oracle_config, overlay_run_facts, run_overlay_spec, OverlayReport, OverlaySpec};
use kmsg_oracle::{check_all, Violation};

use crate::sweep;

/// Runs a spec and applies the full oracle suite to its trace.
#[must_use]
pub fn check_spec(spec: &ScenarioSpec) -> (FuzzRun, Vec<Violation>) {
    let run = run_scenario(spec);
    let events = run.result.recorder.events();
    let violations = check_all(&events, &run.facts, &oracle_config(spec));
    (run, violations)
}

/// Generates and checks one seed, returning only the violations.
#[must_use]
pub fn check_seed(seed: u64) -> Vec<Violation> {
    check_spec(&ScenarioSpec::generate(seed)).1
}

/// Runs a mesh overlay spec and applies the full oracle suite (including
/// the [`OverlayOracle`](kmsg_oracle::OverlayOracle) fact rules) to its
/// trace.
#[must_use]
pub fn check_overlay_spec(spec: &OverlaySpec) -> (OverlayReport, Vec<Violation>) {
    let report = run_overlay_spec(spec);
    let events = report.recorder.events();
    let violations = check_all(&events, &overlay_run_facts(&report), &overlay_oracle_config());
    (report, violations)
}

/// Generates and checks one overlay seed, returning only the violations.
#[must_use]
pub fn check_overlay_seed(seed: u64) -> Vec<Violation> {
    check_overlay_spec(&OverlaySpec::generate(seed)).1
}

/// Outcome of a first-failure sweep over a seed range.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// Scenarios counted as run — sequential semantics: everything up to
    /// and including the first failure (worlds a parallel run completed
    /// beyond the failure are not counted, so the summary line matches
    /// `--jobs 1` byte for byte).
    pub ran: u64,
    /// Scenarios among `ran` that were oracle-clean.
    pub clean: u64,
    /// The first failure in **submission order** (the smallest failing
    /// seed the sequential loop would have hit), with the checker's
    /// payload for it.
    pub failure: Option<(u64, R)>,
    /// Whether the wall-clock budget expired before the range was done.
    pub budget_hit: bool,
}

/// Sweeps `seed_from..seed_to`, sharding seeds across `jobs` workers, and
/// stops at the first failure in submission order.
///
/// `check` returns `None` for a clean seed or `Some(payload)` for a
/// violating one. On a violation the sweep cancels every *later* seed
/// that has not started while guaranteeing all earlier seeds still run —
/// so the reported failure is exactly the one the sequential loop finds,
/// no matter which worker saw a failure first.
///
/// `deadline`, when set, is the soft wall-clock budget: no new world
/// starts after it passes (the first seed always runs). Budget expiry is
/// inherently wall-clock-dependent and therefore excluded from the
/// byte-identity guarantee.
pub fn sweep_seeds<R, C>(
    seed_from: u64,
    seed_to: u64,
    jobs: usize,
    deadline: Option<Instant>,
    check: C,
) -> SweepOutcome<R>
where
    R: Send,
    C: Fn(u64) -> Option<R> + Sync,
{
    let seeds: Vec<u64> = (seed_from..seed_to).collect();
    let budget_hit = AtomicBool::new(false);
    let results = sweep::map_cancel(jobs, seeds, |ctl, idx, seed| {
        if idx > 0 {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    budget_hit.store(true, Ordering::SeqCst);
                    return None; // never started
                }
            }
        }
        let verdict = check(seed);
        if verdict.is_some() {
            ctl.cancel_after(idx);
        }
        Some((seed, verdict))
    });

    let mut out = SweepOutcome {
        ran: 0,
        clean: 0,
        failure: None,
        budget_hit: budget_hit.load(Ordering::SeqCst),
    };
    for slot in results {
        match slot {
            // Skipped by cancellation, or budget expired before start.
            None | Some(None) => {}
            Some(Some((seed, verdict))) => {
                if out.failure.is_some() {
                    continue; // completed beyond the first failure
                }
                out.ran += 1;
                match verdict {
                    None => out.clean += 1,
                    Some(payload) => out.failure = Some((seed, payload)),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_counts_match_sequential_semantics() {
        // Failures at seeds 7 and 13: the sweep must report 7, count ran=8
        // (seeds 0..=7) and clean=7, at any parallelism.
        for jobs in [1, 4] {
            let out = sweep_seeds(0, 30, jobs, None, |seed| {
                (seed == 7 || seed == 13).then(|| format!("boom {seed}"))
            });
            assert_eq!(out.ran, 8, "jobs={jobs}");
            assert_eq!(out.clean, 7, "jobs={jobs}");
            assert_eq!(out.failure, Some((7, "boom 7".to_string())), "jobs={jobs}");
            assert!(!out.budget_hit);
        }
    }

    #[test]
    fn clean_sweep_counts_everything() {
        for jobs in [1, 3] {
            let out = sweep_seeds(10, 25, jobs, None, |_| None::<()>);
            assert_eq!(out.ran, 15);
            assert_eq!(out.clean, 15);
            assert!(out.failure.is_none());
        }
    }

    #[test]
    fn expired_budget_still_runs_first_seed() {
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let out = sweep_seeds(0, 50, 4, Some(past), |_| None::<()>);
        assert!(out.ran >= 1, "the first seed always runs");
        assert!(out.budget_hit);
    }
}
