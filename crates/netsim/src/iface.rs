//! Transport-neutral connection interface.
//!
//! TCP and UDT are both reliable, ordered byte streams with very different
//! congestion-control behaviour (the property the paper exploits). The
//! middleware layer talks to either through the same [`Connection`] handle
//! and [`StreamEvents`] callbacks, which is what makes per-message protocol
//! selection possible.

use std::sync::Arc;

use bytes::Bytes;

use crate::packet::{Endpoint, WireProtocol};

/// Identifier of a simulated connection, unique within one [`Sim`].
///
/// Ids come from a per-simulation counter so the same seed assigns the
/// same ids run after run (a process-global counter would leak state from
/// earlier runs into the telemetry stream and break reproducibility).
///
/// [`Sim`]: crate::engine::Sim
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(u64);

impl ConnectionId {
    pub(crate) fn fresh(sim: &crate::engine::Sim) -> Self {
        ConnectionId(sim.fresh_conn_id())
    }

    /// Rebuilds an id from its raw value (for flows stored by raw id in
    /// dense per-stack tables).
    pub(crate) const fn from_raw(raw: u64) -> Self {
        ConnectionId(raw)
    }

    /// Raw numeric value (diagnostics only).
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloseReason {
    /// Orderly shutdown (both sides finished).
    Normal,
    /// Aborted locally or by the peer.
    Reset,
    /// The transport gave up after repeated timeouts.
    Timeout,
}

/// Callbacks a reliable stream delivers to its owner.
///
/// All callbacks run inside simulation events, never while internal
/// transport locks are held, so implementations may call back into the
/// connection (e.g. [`Connection::send`]) freely.
pub trait StreamEvents: Send + Sync {
    /// The connection finished its handshake and is ready to carry data.
    fn on_connected(&self, conn: &Connection) {
        let _ = conn;
    }

    /// In-order stream data arrived.
    fn on_data(&self, conn: &Connection, data: Bytes) {
        let _ = (conn, data);
    }

    /// Send-buffer space became available after a blocked
    /// [`Connection::send`].
    fn on_writable(&self, conn: &Connection) {
        let _ = conn;
    }

    /// The connection terminated.
    fn on_closed(&self, conn: &Connection, reason: CloseReason) {
        let _ = (conn, reason);
    }
}

/// Decides what to do with connections accepted by a listening socket
/// (TCP or UDT).
pub trait StreamAccept: Send + Sync {
    /// A new inbound connection exists; return the event handler that will
    /// own it.
    fn on_accept(&self, conn: &Connection) -> Arc<dyn StreamEvents>;
}

/// A handle to a reliable, ordered stream connection (TCP or UDT).
///
/// Cloning the handle is cheap and refers to the same connection.
#[derive(Debug, Clone)]
pub enum Connection {
    /// A simulated TCP connection.
    Tcp(crate::tcp::TcpConn),
    /// A simulated UDT connection.
    Udt(crate::udt::UdtConn),
}

impl Connection {
    /// The connection's globally unique id.
    #[must_use]
    pub fn id(&self) -> ConnectionId {
        match self {
            Connection::Tcp(c) => c.id(),
            Connection::Udt(c) => c.id(),
        }
    }

    /// The wire protocol of this connection.
    #[must_use]
    pub fn protocol(&self) -> WireProtocol {
        match self {
            Connection::Tcp(_) => WireProtocol::Tcp,
            Connection::Udt(_) => WireProtocol::Udt,
        }
    }

    /// The local endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        match self {
            Connection::Tcp(c) => c.local(),
            Connection::Udt(c) => c.local(),
        }
    }

    /// The remote endpoint.
    #[must_use]
    pub fn peer(&self) -> Endpoint {
        match self {
            Connection::Tcp(c) => c.peer(),
            Connection::Udt(c) => c.peer(),
        }
    }

    /// Appends bytes to the send buffer, returning how many were accepted.
    ///
    /// A short (or zero) return means the buffer is full; the owner will get
    /// [`StreamEvents::on_writable`] once space frees up.
    pub fn send(&self, data: Bytes) -> usize {
        match self {
            Connection::Tcp(c) => c.send(data),
            Connection::Udt(c) => c.send(data),
        }
    }

    /// Free space in the send buffer, in bytes.
    #[must_use]
    pub fn free_send_buffer(&self) -> usize {
        match self {
            Connection::Tcp(c) => c.free_send_buffer(),
            Connection::Udt(c) => c.free_send_buffer(),
        }
    }

    /// Bytes accepted into the send buffer but not yet acknowledged by the
    /// peer (buffered + in flight).
    #[must_use]
    pub fn unacked_bytes(&self) -> usize {
        match self {
            Connection::Tcp(c) => c.unacked_bytes(),
            Connection::Udt(c) => c.unacked_bytes(),
        }
    }

    /// Cumulative payload bytes acknowledged by the peer.
    #[must_use]
    pub fn acked_bytes(&self) -> u64 {
        match self {
            Connection::Tcp(c) => c.acked_bytes(),
            Connection::Udt(c) => c.acked_bytes(),
        }
    }

    /// Initiates an orderly close after all buffered data is delivered.
    pub fn close(&self) {
        match self {
            Connection::Tcp(c) => c.close(),
            Connection::Udt(c) => c.close(),
        }
    }

    /// Whether the connection has completed its handshake and not closed.
    #[must_use]
    pub fn is_established(&self) -> bool {
        match self {
            Connection::Tcp(c) => c.is_established(),
            Connection::Udt(c) => c.is_established(),
        }
    }

    /// The transport's current smoothed RTT estimate, if one exists.
    #[must_use]
    pub fn rtt_estimate(&self) -> Option<std::time::Duration> {
        match self {
            Connection::Tcp(c) => c.rtt_estimate(),
            Connection::Udt(c) => c.rtt_estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_ids_are_unique_and_reproducible() {
        let sim = crate::engine::Sim::new(1);
        let a = ConnectionId::fresh(&sim);
        let b = ConnectionId::fresh(&sim);
        assert_ne!(a, b);
        assert!(b.raw() > a.raw());
        // A fresh simulation restarts the counter: same seed, same ids.
        let sim2 = crate::engine::Sim::new(1);
        assert_eq!(ConnectionId::fresh(&sim2), a);
    }
}

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}

    #[test]
    fn public_types_are_send_sync() {
        assert_send_sync::<crate::engine::Sim>();
        assert_send_sync::<crate::network::Network>();
        assert_send::<Connection>();
        assert_send::<crate::tcp::TcpConn>();
        assert_send::<crate::udt::UdtConn>();
        assert_send::<crate::udp::UdpSocket>();
        assert_send_sync::<crate::link::Link>();
        assert_send_sync::<crate::trace::RingTracer>();
        assert_send_sync::<ConnectionId>();
        assert_send_sync::<crate::time::SimTime>();
    }
}
