//! Packet representation shared by all simulated transports.

use bytes::Bytes;

/// Identifies a simulated host within a [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a `NodeId` from [`NodeId::index`] — for deserialising
    /// addresses. The caller is responsible for the index referring to a
    /// node that exists in the target [`Network`](crate::network::Network).
    #[must_use]
    pub const fn from_index(index: u32) -> NodeId {
        NodeId(index)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A (node, port) pair — the simulated analog of a socket address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The host.
    pub node: NodeId,
    /// The port number on that host.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    #[must_use]
    pub const fn new(node: NodeId, port: u16) -> Self {
        Endpoint { node, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// The on-the-wire protocol family of a packet.
///
/// UDT packets travel as UDP on the wire, which matters for links that
/// police UDP traffic (Amazon EC2 rate-limits UDP to roughly 10 MB/s, which
/// the paper identifies as the cap on UDT throughput in its experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireProtocol {
    /// TCP segment.
    Tcp,
    /// Plain UDP datagram.
    Udp,
    /// UDT packet (UDP on the wire).
    Udt,
}

impl WireProtocol {
    /// Stable snake_case label for telemetry output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            WireProtocol::Tcp => "tcp",
            WireProtocol::Udp => "udp",
            WireProtocol::Udt => "udt",
        }
    }

    /// Whether this packet is part of the UDP family for policing purposes.
    #[must_use]
    pub const fn is_udp_family(self) -> bool {
        matches!(self, WireProtocol::Udp | WireProtocol::Udt)
    }
}

/// Per-packet per-hop overhead in bytes (IP + transport headers,
/// approximated as a constant).
pub const HEADER_OVERHEAD: usize = 40;

/// Transport-specific packet payloads.
#[derive(Debug, Clone)]
pub enum PacketBody {
    /// A TCP segment (see [`crate::tcp`]).
    Tcp(crate::tcp::TcpSegment),
    /// A UDP datagram payload.
    Udp(Bytes),
    /// A UDT packet (see [`crate::udt`]).
    Udt(crate::udt::UdtPacket),
}

/// A packet in flight between two endpoints.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Wire protocol family.
    pub protocol: WireProtocol,
    /// Total size on the wire, including header overhead.
    pub wire_size: usize,
    /// Sever epoch of the link the packet is currently crossing, stamped at
    /// transmit time. If the link's epoch has advanced by arrival (the link
    /// was [severed](crate::link::Link::sever) mid-flight), the packet dies.
    pub sever_epoch: u64,
    /// Raw causal-span id of this packet's `flight` span (0 when tracing
    /// is off). In-memory only — never serialised, so enabling tracing
    /// cannot perturb wire sizes or timing.
    pub span: u64,
    /// Raw span id of the `hop` span for the link currently being crossed
    /// (0 between hops or when tracing is off). In-memory only.
    pub hop_span: u64,
    /// Transport payload.
    pub body: PacketBody,
}

impl Packet {
    /// Builds a packet, deriving `wire_size` from the payload length plus
    /// [`HEADER_OVERHEAD`].
    #[must_use]
    pub fn new(
        src: Endpoint,
        dst: Endpoint,
        protocol: WireProtocol,
        payload_len: usize,
        body: PacketBody,
    ) -> Self {
        Packet {
            src,
            dst,
            protocol,
            wire_size: payload_len + HEADER_OVERHEAD,
            sever_epoch: 0,
            span: 0,
            hop_span: 0,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_family_classification() {
        assert!(WireProtocol::Udp.is_udp_family());
        assert!(WireProtocol::Udt.is_udp_family());
        assert!(!WireProtocol::Tcp.is_udp_family());
    }

    #[test]
    fn wire_size_includes_overhead() {
        let a = Endpoint::new(NodeId(0), 1);
        let b = Endpoint::new(NodeId(1), 2);
        let p = Packet::new(a, b, WireProtocol::Udp, 100, PacketBody::Udp(Bytes::new()));
        assert_eq!(p.wire_size, 100 + HEADER_OVERHEAD);
    }

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(NodeId(3), 8080);
        assert_eq!(e.to_string(), "n3:8080");
    }
}
