//! Pluggable congestion control for the simulated TCP stack.
//!
//! The Reno logic that used to be baked into [`crate::tcp`] now lives
//! behind the [`CongestionController`] trait, next to two alternative
//! controllers:
//!
//! * [`Reno`] — the original slow-start/AIMD/fast-recovery behaviour,
//!   byte-for-byte identical in telemetry to the pre-trait stack;
//! * [`Cubic`] — a CUBIC-style window controller: the cubic growth
//!   function `W(t) = C·(t−K)³ + W_max` replaces AIMD in congestion
//!   avoidance, with multiplicative decrease `β = 0.7` and fast
//!   convergence on repeated losses below `W_max`;
//! * [`Bbr`] — a BBR-style rate controller: windowed-max bottleneck
//!   bandwidth and windowed-min RTT estimators drive a paced sending rate
//!   through startup (gain 2.885) → drain → probe-bandwidth phases, with
//!   the congestion window acting only as an inflight cap of
//!   `cwnd_gain × BDP`.
//!
//! Controllers are selected per connection through
//! [`CcConfig::algorithm`] inside [`crate::tcp::TcpConfig`] (and thus the
//! interned-config table of the per-network TCP stack). Every controller
//! decision that the fuzzer's legality oracles need is stamped into the
//! flight recorder: Reno keeps the legacy `TcpCwnd` events, CUBIC and BBR
//! emit `CcWindow` / `BbrState` records checked by `CubicOracle` and
//! `BbrOracle` in `kmsg-oracle`.
//!
//! Deliberate simplifications (documented so the oracles can be exact):
//! CUBIC omits the TCP-friendly (Reno-tracking) region and uses pure
//! cubic growth; BBR omits the ProbeRTT phase and inherits loss recovery
//! (retransmission scheduling) from the shared stack machinery.

use kmsg_telemetry::{EventKind, Recorder};

use crate::time::SimTime;

/// Which congestion-control algorithm a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// Classic Reno/NewReno AIMD (the paper's TCP).
    Reno,
    /// CUBIC-style window growth with fast convergence.
    Cubic,
    /// BBR-style model-based rate control with pacing.
    Bbr,
}

impl CcAlgorithm {
    /// All algorithms, in stable order (fuzzer dimension / learner axis).
    #[must_use]
    pub fn all() -> [CcAlgorithm; 3] {
        [CcAlgorithm::Reno, CcAlgorithm::Cubic, CcAlgorithm::Bbr]
    }

    /// Stable label used in artifacts and telemetry.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CcAlgorithm::Reno => "reno",
            CcAlgorithm::Cubic => "cubic",
            CcAlgorithm::Bbr => "bbr",
        }
    }

    /// Parses an artifact label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<CcAlgorithm> {
        match label {
            "reno" => Some(CcAlgorithm::Reno),
            "cubic" => Some(CcAlgorithm::Cubic),
            "bbr" => Some(CcAlgorithm::Bbr),
            _ => None,
        }
    }
}

/// Congestion-controller tuning knobs, interned as part of
/// [`crate::tcp::TcpConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct CcConfig {
    /// Which controller to run.
    pub algorithm: CcAlgorithm,
    /// CUBIC scaling constant `C`, in MSS/s³ (RFC 8312 default 0.4).
    pub cubic_c: f64,
    /// CUBIC multiplicative-decrease factor `β` (RFC 8312 default 0.7).
    pub cubic_beta: f64,
    /// CUBIC fast convergence: a loss below the previous `W_max` sets the
    /// new `W_max` to `cwnd·(2−β)/2` instead of `cwnd`, releasing
    /// bandwidth to newer flows faster.
    pub cubic_fast_convergence: bool,
    /// BBR startup pacing/cwnd gain (2/ln 2 ≈ 2.885).
    pub bbr_startup_gain: f64,
    /// BBR inflight cap gain outside startup (`cwnd = gain × BDP`).
    pub bbr_cwnd_gain: f64,
    /// Test-only fault: disable the fast-convergence `W_max` reduction
    /// while still claiming `cubic_fast_convergence` semantics. Breaks
    /// CUBIC legality — `CubicOracle` must catch it. Never enable outside
    /// tests.
    #[doc(hidden)]
    pub buggy_no_fast_convergence: bool,
    /// Test-only fault: jump from startup straight to probe-bandwidth,
    /// skipping the drain phase (the queue built up by the 2.885× startup
    /// gain is never drained). Breaks the BBR phase machine — `BbrOracle`
    /// must catch it. Never enable outside tests.
    #[doc(hidden)]
    pub buggy_skip_drain: bool,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            algorithm: CcAlgorithm::Reno,
            cubic_c: 0.4,
            cubic_beta: 0.7,
            cubic_fast_convergence: true,
            bbr_startup_gain: 2.885,
            bbr_cwnd_gain: 2.0,
            buggy_no_fast_convergence: false,
            buggy_skip_drain: false,
        }
    }
}

impl CcConfig {
    /// Defaults with the given algorithm selected.
    #[must_use]
    pub fn for_algorithm(algorithm: CcAlgorithm) -> CcConfig {
        CcConfig {
            algorithm,
            ..CcConfig::default()
        }
    }
}

/// The mutable window state a controller decision operates on, plus the
/// immutable inputs it may consult. Borrowed piecewise out of the flow so
/// the controller (also a flow field) can be invoked without cloning.
#[derive(Debug)]
pub struct CcCtx<'a> {
    /// Congestion window, bytes (shared with the flow's send path).
    pub cwnd: &'a mut f64,
    /// Slow-start threshold, bytes.
    pub ssthresh: &'a mut f64,
    /// Maximum segment size, bytes.
    pub mss: f64,
    /// Bytes currently in flight (`snd_nxt − snd_una`).
    pub flight: f64,
    /// Connection id for telemetry.
    pub conn: u64,
    /// The flight recorder.
    pub rec: &'a Recorder,
}

/// One congestion-control algorithm instance (per flow).
///
/// The shared stack owns loss detection, retransmission scheduling, RTO
/// backoff and recovery-episode bookkeeping; the controller only evolves
/// `cwnd`/`ssthresh`, optionally paces via [`Self::pacing_rate`], and
/// stamps its decisions into the flight recorder.
pub trait CongestionController: Send {
    /// Stable controller label (matches [`CcAlgorithm::label`]).
    fn name(&self) -> &'static str;
    /// A cumulative ACK advanced `snd_una` by `newly` bytes.
    fn on_ack(&mut self, ctx: &mut CcCtx<'_>, newly: u64, now: SimTime);
    /// A fresh loss episode began (receiver-reported holes outside any
    /// ongoing recovery). Called at most once per episode.
    fn on_loss(&mut self, ctx: &mut CcCtx<'_>, now: SimTime);
    /// A retransmission timeout fired on an established connection.
    fn on_rto(&mut self, ctx: &mut CcCtx<'_>, now: SimTime);
    /// The recovery episode ended (`snd_una` passed the recovery point).
    fn on_recovery_exit(&mut self, ctx: &mut CcCtx<'_>, now: SimTime);
    /// An RTT sample was measured (timestamp echo), seconds.
    fn on_rtt_sample(&mut self, _rtt_s: f64, _now: SimTime) {}
    /// Current pacing rate in bytes/second; `None` sends unpaced (ACK
    /// clocked against the window), which is what window-based
    /// controllers do.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
}

/// Builds the controller instance a config calls for.
#[must_use]
pub fn build(cfg: &CcConfig) -> Box<dyn CongestionController> {
    match cfg.algorithm {
        CcAlgorithm::Reno => Box::new(Reno),
        CcAlgorithm::Cubic => Box::new(Cubic::new(cfg)),
        CcAlgorithm::Bbr => Box::new(Bbr::new(cfg)),
    }
}

/// Classic Reno/NewReno: slow start, AIMD congestion avoidance, halving
/// on loss, collapse to one MSS on RTO. Stateless — all window state
/// lives in the flow — and telemetry-identical to the pre-trait stack.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reno;

impl CongestionController for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, ctx: &mut CcCtx<'_>, newly: u64, _now: SimTime) {
        if *ctx.cwnd < *ctx.ssthresh {
            // Slow start with appropriate byte counting.
            *ctx.cwnd += (newly as f64).min(ctx.mss);
        } else {
            *ctx.cwnd += ctx.mss * ctx.mss / *ctx.cwnd;
        }
    }

    fn on_loss(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        *ctx.ssthresh = (ctx.flight / 2.0).max(2.0 * ctx.mss);
        *ctx.cwnd = *ctx.ssthresh;
        ctx.rec.record(
            now.as_nanos(),
            EventKind::TcpCwnd {
                conn: ctx.conn,
                cwnd: *ctx.cwnd,
                ssthresh: *ctx.ssthresh,
                cause: "fast_recovery",
            },
        );
    }

    fn on_rto(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        // RFC 5681 timeout response.
        *ctx.ssthresh = (ctx.flight / 2.0).max(2.0 * ctx.mss);
        *ctx.cwnd = ctx.mss;
        ctx.rec.record(
            now.as_nanos(),
            EventKind::TcpCwnd {
                conn: ctx.conn,
                cwnd: *ctx.cwnd,
                ssthresh: *ctx.ssthresh,
                cause: "rto",
            },
        );
    }

    fn on_recovery_exit(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        *ctx.cwnd = ctx.cwnd.min(ctx.ssthresh.max(2.0 * ctx.mss));
        ctx.rec.record(
            now.as_nanos(),
            EventKind::TcpCwnd {
                conn: ctx.conn,
                cwnd: *ctx.cwnd,
                ssthresh: *ctx.ssthresh,
                cause: "recovery_exit",
            },
        );
    }
}

/// CUBIC-style congestion avoidance (RFC 8312, without the TCP-friendly
/// region): after each loss the window converges back to `W_max` along
/// `W(t) = C·(t−K)³ + W_max` with `K = ∛((W_max − W_epoch)/C)`.
///
/// Telemetry contract checked by `CubicOracle`: an `"epoch"` `CcWindow`
/// event opens every congestion-avoidance epoch (carrying the epoch
/// window and `W_max`), `"growth"` checkpoints fire whenever the window
/// crosses an MSS boundary (each must sit on or under the cubic curve and
/// grow monotonically), `"loss"` applies `β` with fast convergence, and
/// `"rto"` collapses to one MSS.
#[derive(Debug, Clone)]
pub struct Cubic {
    c: f64,
    beta: f64,
    fast_convergence: bool,
    buggy_no_fast_convergence: bool,
    /// Window size before the last reduction, bytes.
    w_max: f64,
    /// Congestion-avoidance epoch start (`None` in slow start/recovery).
    epoch_start: Option<SimTime>,
    /// Time to reach `w_max` from the epoch start, seconds.
    k: f64,
    /// `floor(cwnd/mss)` at the last growth checkpoint.
    last_growth_mss: u64,
}

impl Cubic {
    /// New CUBIC instance from config knobs.
    #[must_use]
    pub fn new(cfg: &CcConfig) -> Cubic {
        Cubic {
            c: cfg.cubic_c,
            beta: cfg.cubic_beta,
            fast_convergence: cfg.cubic_fast_convergence,
            buggy_no_fast_convergence: cfg.buggy_no_fast_convergence,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            last_growth_mss: 0,
        }
    }

    /// Applies the multiplicative decrease shared by loss and RTO: update
    /// `W_max` (with fast convergence), set `ssthresh = β·cwnd`, reset
    /// the epoch, and record the transition. Loss keeps `cwnd` at the β
    /// target; RTO collapses it to one MSS.
    fn reduce(&mut self, ctx: &mut CcCtx<'_>, now: SimTime, collapse: bool, cause: &'static str) {
        let prev = *ctx.cwnd;
        let fast_path = self.fast_convergence && prev < self.w_max;
        self.w_max = if fast_path && !self.buggy_no_fast_convergence {
            prev * (2.0 - self.beta) / 2.0
        } else {
            prev
        };
        *ctx.ssthresh = (prev * self.beta).max(2.0 * ctx.mss);
        *ctx.cwnd = if collapse { ctx.mss } else { *ctx.ssthresh };
        self.epoch_start = None;
        ctx.rec.record(
            now.as_nanos(),
            EventKind::CcWindow {
                conn: ctx.conn,
                controller: "cubic",
                cause,
                prev_cwnd: prev,
                cwnd: *ctx.cwnd,
                ssthresh: *ctx.ssthresh,
                w_max: self.w_max,
            },
        );
    }
}

impl CongestionController for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ctx: &mut CcCtx<'_>, newly: u64, now: SimTime) {
        if *ctx.cwnd < *ctx.ssthresh {
            // Slow start, same as Reno; the cubic clock starts in
            // congestion avoidance.
            *ctx.cwnd += (newly as f64).min(ctx.mss);
            self.epoch_start = None;
            return;
        }
        let t0 = match self.epoch_start {
            Some(t0) => t0,
            None => {
                // New congestion-avoidance epoch: anchor the cubic curve.
                if self.w_max < *ctx.cwnd {
                    self.w_max = *ctx.cwnd;
                }
                self.k = ((self.w_max - *ctx.cwnd) / (self.c * ctx.mss)).cbrt();
                self.epoch_start = Some(now);
                self.last_growth_mss = (*ctx.cwnd / ctx.mss) as u64;
                ctx.rec.record(
                    now.as_nanos(),
                    EventKind::CcWindow {
                        conn: ctx.conn,
                        controller: "cubic",
                        cause: "epoch",
                        prev_cwnd: *ctx.cwnd,
                        cwnd: *ctx.cwnd,
                        ssthresh: *ctx.ssthresh,
                        w_max: self.w_max,
                    },
                );
                now
            }
        };
        let t = now.duration_since(t0).as_secs_f64();
        let target = self.w_max + self.c * ctx.mss * (t - self.k).powi(3);
        if target > *ctx.cwnd {
            let prev = *ctx.cwnd;
            // Close a cwnd-proportional fraction of the gap per ACK (the
            // usual cwnd += (W(t) − cwnd)/cwnd · MSS step), never
            // overshooting the curve.
            *ctx.cwnd = (prev + ctx.mss * (target - prev) / prev).min(target);
            let mss_units = (*ctx.cwnd / ctx.mss) as u64;
            if mss_units != self.last_growth_mss {
                self.last_growth_mss = mss_units;
                ctx.rec.record(
                    now.as_nanos(),
                    EventKind::CcWindow {
                        conn: ctx.conn,
                        controller: "cubic",
                        cause: "growth",
                        prev_cwnd: prev,
                        cwnd: *ctx.cwnd,
                        ssthresh: *ctx.ssthresh,
                        w_max: self.w_max,
                    },
                );
            }
        }
    }

    fn on_loss(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        self.reduce(ctx, now, false, "loss");
    }

    fn on_rto(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        self.reduce(ctx, now, true, "rto");
    }

    fn on_recovery_exit(&mut self, _ctx: &mut CcCtx<'_>, _now: SimTime) {
        // The β reduction already happened at the loss; nothing to
        // deflate.
    }
}

/// BBR probe-bandwidth pacing-gain cycle (RFC draft: one 1.25 probe, one
/// 0.75 drain, six cruise phases, advanced once per min-RTT).
pub const BBR_GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Rounds of bandwidth history kept for the windowed-max filter.
const BW_WINDOW_ROUNDS: usize = 10;
/// Seconds before a min-RTT sample expires and is replaced.
const MIN_RTT_WINDOW_S: f64 = 10.0;
/// Relative bandwidth growth below which a startup round counts as flat.
const FULL_BW_GROWTH: f64 = 1.25;
/// Consecutive flat rounds that declare the pipe full.
const FULL_BW_ROUNDS: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrPhase {
    Startup,
    Drain,
    ProbeBw(usize),
}

impl BbrPhase {
    fn label(self) -> &'static str {
        match self {
            BbrPhase::Startup => "startup",
            BbrPhase::Drain => "drain",
            BbrPhase::ProbeBw(_) => "probe_bw",
        }
    }
}

/// BBR-style model-based congestion control: estimate the bottleneck
/// bandwidth (windowed max of per-round average delivery-rate samples)
/// and the round-trip propagation delay (windowed min), pace at
/// `gain × btl_bw`, and cap inflight at `cwnd_gain × BDP`.
///
/// Phase machine: startup (gain 2.885, exits when the bandwidth estimate
/// plateaus for three rounds) → drain (inverse gain until inflight fits
/// the BDP) → probe-bandwidth (the eight-step gain cycle). ProbeRTT is
/// omitted. `BbrState` checkpoints are recorded on every phase transition
/// and on every ≥5% re-adoption of the bandwidth estimate; `BbrOracle`
/// checks phase-sequence legality and the pacing/cwnd bounds against the
/// estimates carried in those events.
#[derive(Debug, Clone)]
pub struct Bbr {
    startup_gain: f64,
    cwnd_gain: f64,
    skip_drain: bool,
    phase: BbrPhase,
    started: bool,
    /// Windowed per-round max delivery-rate samples, bytes/s.
    bw_window: [f64; BW_WINDOW_ROUNDS],
    round: u64,
    /// Cumulative bytes acked.
    delivered: f64,
    /// `delivered` level at which the current round ends.
    round_end_delivered: f64,
    /// When the current round started.
    round_start: SimTime,
    /// `delivered` level when the current round started.
    round_start_delivered: f64,
    /// Adopted bottleneck bandwidth (max over the window), bytes/s.
    btl_bw: f64,
    /// `btl_bw` value last stamped into a `BbrState` event.
    recorded_bw: f64,
    min_rtt: f64,
    min_rtt_stamp: SimTime,
    full_bw: f64,
    full_bw_rounds: u32,
    /// Probe-bandwidth cycle anchor.
    cycle_stamp: SimTime,
}

impl Bbr {
    /// New BBR instance from config knobs.
    #[must_use]
    pub fn new(cfg: &CcConfig) -> Bbr {
        Bbr {
            startup_gain: cfg.bbr_startup_gain,
            cwnd_gain: cfg.bbr_cwnd_gain,
            skip_drain: cfg.buggy_skip_drain,
            phase: BbrPhase::Startup,
            started: false,
            bw_window: [0.0; BW_WINDOW_ROUNDS],
            round: 0,
            delivered: 0.0,
            round_end_delivered: 0.0,
            round_start: SimTime::ZERO,
            round_start_delivered: 0.0,
            btl_bw: 0.0,
            recorded_bw: 0.0,
            min_rtt: f64::INFINITY,
            min_rtt_stamp: SimTime::ZERO,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_stamp: SimTime::ZERO,
        }
    }

    fn pacing_gain(&self) -> f64 {
        match self.phase {
            BbrPhase::Startup => self.startup_gain,
            BbrPhase::Drain => 1.0 / self.startup_gain,
            BbrPhase::ProbeBw(i) => BBR_GAIN_CYCLE[i % BBR_GAIN_CYCLE.len()],
        }
    }

    fn cwnd_gain_now(&self) -> f64 {
        match self.phase {
            BbrPhase::Startup => self.startup_gain,
            _ => self.cwnd_gain,
        }
    }

    /// Estimated bandwidth-delay product, bytes (0 until both estimators
    /// have a sample).
    fn bdp(&self) -> f64 {
        if self.btl_bw > 0.0 && self.min_rtt.is_finite() {
            self.btl_bw * self.min_rtt
        } else {
            0.0
        }
    }

    fn record_state(&mut self, ctx: &CcCtx<'_>, now: SimTime) {
        self.recorded_bw = self.btl_bw;
        let min_rtt_us = if self.min_rtt.is_finite() {
            (self.min_rtt * 1e6) as u64
        } else {
            0
        };
        ctx.rec.record(
            now.as_nanos(),
            EventKind::BbrState {
                conn: ctx.conn,
                phase: self.phase.label(),
                pacing_rate_bps: self.pacing_rate().unwrap_or(0.0),
                btl_bw_bps: self.btl_bw,
                min_rtt_us,
                cwnd: *ctx.cwnd,
            },
        );
    }
}

impl CongestionController for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_ack(&mut self, ctx: &mut CcCtx<'_>, newly: u64, now: SimTime) {
        let mut checkpoint = false;
        if !self.started {
            self.started = true;
            self.cycle_stamp = now;
            self.round_start = now;
            self.round_end_delivered = ctx.flight.max(1.0);
            checkpoint = true;
        }
        // At most one phase transition per ACK (relative to the phase on
        // entry), so coalesced transitions can never skip a phase's
        // `BbrState` record.
        let phase_at_entry = self.phase;
        self.delivered += newly as f64;
        // Round accounting: one round per flight's worth of delivery and
        // at least one min-RTT of wall time. Each completed round
        // contributes one delivery-rate sample: the round's bytes over
        // the round's wall time. Per-ACK sampling is not viable here — a
        // cumulative ACK that fills a retransmit hole acks a burst
        // "instantaneously", and the spike would poison the windowed max;
        // the min-RTT span averages such jumps over a full round trip.
        let round_dt = now.duration_since(self.round_start).as_secs_f64();
        let min_span = if self.min_rtt.is_finite() { self.min_rtt } else { 0.0 };
        if self.delivered >= self.round_end_delivered && round_dt >= min_span {
            let dt = round_dt;
            if dt > 0.0 {
                let sample = (self.delivered - self.round_start_delivered) / dt;
                self.bw_window[(self.round as usize) % BW_WINDOW_ROUNDS] = sample;
                self.round += 1;
                if self.phase == BbrPhase::Startup {
                    // Full-pipe detection: bandwidth stopped growing 25%
                    // per round for three consecutive rounds.
                    let bw = self.bw_window.iter().fold(0.0_f64, |a, &b| a.max(b));
                    if bw >= self.full_bw * FULL_BW_GROWTH {
                        self.full_bw = bw;
                        self.full_bw_rounds = 0;
                    } else if self.full_bw > 0.0 {
                        self.full_bw_rounds += 1;
                        if self.full_bw_rounds >= FULL_BW_ROUNDS {
                            self.phase = if self.skip_drain {
                                BbrPhase::ProbeBw(0)
                            } else {
                                BbrPhase::Drain
                            };
                            self.cycle_stamp = now;
                            checkpoint = true;
                        }
                    }
                }
            }
            self.round_start = now;
            self.round_start_delivered = self.delivered;
            self.round_end_delivered = self.delivered + ctx.flight.max(1.0);
        }
        self.btl_bw = self.bw_window.iter().fold(0.0_f64, |a, &b| a.max(b));
        match phase_at_entry {
            BbrPhase::Drain => {
                if ctx.flight <= self.bdp() {
                    self.phase = BbrPhase::ProbeBw(0);
                    self.cycle_stamp = now;
                    checkpoint = true;
                }
            }
            BbrPhase::ProbeBw(i) => {
                // Advance the gain cycle once per min-RTT (same phase
                // label, so no checkpoint needed).
                if self.min_rtt.is_finite()
                    && now.duration_since(self.cycle_stamp).as_secs_f64() >= self.min_rtt
                {
                    self.phase = BbrPhase::ProbeBw((i + 1) % BBR_GAIN_CYCLE.len());
                    self.cycle_stamp = now;
                }
            }
            BbrPhase::Startup => {}
        }
        // Window update: inflight cap at cwnd_gain × BDP once the model
        // has data; grow like slow start until then to feed the
        // estimators.
        let bdp = self.bdp();
        if bdp > 0.0 {
            *ctx.cwnd = (self.cwnd_gain_now() * bdp).max(4.0 * ctx.mss);
        } else {
            *ctx.cwnd += (newly as f64).min(ctx.mss);
        }
        // Checkpoint significant bandwidth-estimate moves too; recording
        // happens after the window update so every `BbrState` event is
        // internally consistent (cwnd vs. the estimates it was computed
        // from) — the oracle's BDP bound relies on that.
        if self.btl_bw > 0.0
            && (self.recorded_bw == 0.0
                || (self.btl_bw - self.recorded_bw).abs() > 0.05 * self.recorded_bw)
        {
            checkpoint = true;
        }
        if checkpoint {
            self.record_state(ctx, now);
        }
    }

    fn on_loss(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        // BBR does not back off on isolated loss; the event still records
        // the loss signal the TCP oracle pairs fast retransmits with.
        ctx.rec.record(
            now.as_nanos(),
            EventKind::CcWindow {
                conn: ctx.conn,
                controller: "bbr",
                cause: "loss",
                prev_cwnd: *ctx.cwnd,
                cwnd: *ctx.cwnd,
                ssthresh: *ctx.ssthresh,
                w_max: 0.0,
            },
        );
    }

    fn on_rto(&mut self, ctx: &mut CcCtx<'_>, now: SimTime) {
        // Conservative collapse; the estimators survive, so the window
        // re-inflates to gain × BDP on the next delivery.
        let prev = *ctx.cwnd;
        *ctx.cwnd = ctx.mss;
        ctx.rec.record(
            now.as_nanos(),
            EventKind::CcWindow {
                conn: ctx.conn,
                controller: "bbr",
                cause: "rto",
                prev_cwnd: prev,
                cwnd: *ctx.cwnd,
                ssthresh: *ctx.ssthresh,
                w_max: 0.0,
            },
        );
    }

    fn on_recovery_exit(&mut self, _ctx: &mut CcCtx<'_>, _now: SimTime) {}

    fn on_rtt_sample(&mut self, rtt_s: f64, now: SimTime) {
        let expired =
            now.duration_since(self.min_rtt_stamp).as_secs_f64() > MIN_RTT_WINDOW_S;
        if rtt_s < self.min_rtt || expired {
            self.min_rtt = rtt_s;
            self.min_rtt_stamp = now;
        }
    }

    fn pacing_rate(&self) -> Option<f64> {
        // Unpaced until the model has a bandwidth estimate (the initial
        // window is small enough to be harmless).
        if self.btl_bw > 0.0 {
            Some(self.pacing_gain() * self.btl_bw)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        cwnd: &'a mut f64,
        ssthresh: &'a mut f64,
        rec: &'a Recorder,
    ) -> CcCtx<'a> {
        CcCtx {
            cwnd,
            ssthresh,
            mss: 1000.0,
            flight: 20_000.0,
            conn: 1,
            rec,
        }
    }

    #[test]
    fn algorithm_labels_round_trip() {
        for alg in CcAlgorithm::all() {
            assert_eq!(CcAlgorithm::from_label(alg.label()), Some(alg));
        }
        assert_eq!(CcAlgorithm::from_label("vegas"), None);
    }

    #[test]
    fn reno_halves_on_loss_and_collapses_on_rto() {
        let rec = Recorder::new();
        let (mut cwnd, mut ssthresh) = (40_000.0, f64::INFINITY);
        let mut cc = Reno;
        cc.on_loss(&mut ctx(&mut cwnd, &mut ssthresh, &rec), SimTime::ZERO);
        assert_eq!(cwnd, 10_000.0, "flight/2");
        assert_eq!(ssthresh, 10_000.0);
        cc.on_rto(&mut ctx(&mut cwnd, &mut ssthresh, &rec), SimTime::ZERO);
        assert_eq!(cwnd, 1000.0, "one MSS after RTO");
    }

    #[test]
    fn cubic_loss_applies_beta_and_fast_convergence() {
        let rec = Recorder::new();
        let cfg = CcConfig::for_algorithm(CcAlgorithm::Cubic);
        let mut cc = Cubic::new(&cfg);
        let (mut cwnd, mut ssthresh) = (100_000.0, 50_000.0);
        cc.on_loss(&mut ctx(&mut cwnd, &mut ssthresh, &rec), SimTime::ZERO);
        assert!((ssthresh - 70_000.0).abs() < 1e-9, "β = 0.7");
        assert_eq!(cc.w_max, 100_000.0, "first loss: W_max = cwnd");
        // Second loss below W_max triggers fast convergence.
        cwnd = 80_000.0;
        cc.on_loss(&mut ctx(&mut cwnd, &mut ssthresh, &rec), SimTime::ZERO);
        let expect = 80_000.0 * (2.0 - 0.7) / 2.0;
        assert!((cc.w_max - expect).abs() < 1e-9, "fast convergence W_max");
    }

    #[test]
    fn buggy_cubic_skips_fast_convergence() {
        let rec = Recorder::new();
        let mut cfg = CcConfig::for_algorithm(CcAlgorithm::Cubic);
        cfg.buggy_no_fast_convergence = true;
        let mut cc = Cubic::new(&cfg);
        let (mut cwnd, mut ssthresh) = (100_000.0, 50_000.0);
        cc.on_loss(&mut ctx(&mut cwnd, &mut ssthresh, &rec), SimTime::ZERO);
        cwnd = 80_000.0;
        cc.on_loss(&mut ctx(&mut cwnd, &mut ssthresh, &rec), SimTime::ZERO);
        assert_eq!(cc.w_max, 80_000.0, "bug: W_max never shrinks");
    }

    #[test]
    fn cubic_growth_tracks_the_cubic_curve() {
        let rec = Recorder::new();
        rec.enable();
        let cfg = CcConfig::for_algorithm(CcAlgorithm::Cubic);
        let mut cc = Cubic::new(&cfg);
        let (mut cwnd, mut ssthresh) = (20_000.0, 10_000.0); // CA from the start
        cc.w_max = 60_000.0;
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            now = now + std::time::Duration::from_millis(10);
            cc.on_ack(&mut ctx(&mut cwnd, &mut ssthresh, &rec), 1000, now);
        }
        // After 100 s the curve is far past W_max; the window must have
        // grown beyond it but never jumped above the curve (checked per
        // step by construction; sanity-check the end state here).
        assert!(cwnd > 60_000.0, "grew past W_max, got {cwnd}");
        let epoch_events = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CcWindow { cause: "epoch", .. }))
            .count();
        assert_eq!(epoch_events, 1, "one epoch for an uninterrupted CA run");
    }

    #[test]
    fn bbr_reaches_probe_bw_through_drain() {
        let rec = Recorder::new();
        rec.enable();
        let cfg = CcConfig::for_algorithm(CcAlgorithm::Bbr);
        let mut cc = Bbr::new(&cfg);
        let (mut cwnd, mut ssthresh) = (10_000.0, f64::INFINITY);
        let mut now = SimTime::ZERO;
        cc.on_rtt_sample(0.05, now);
        // Steady 1 MB/s delivery: bandwidth plateaus, startup must exit.
        for _ in 0..400 {
            now = now + std::time::Duration::from_millis(10);
            let mut c = ctx(&mut cwnd, &mut ssthresh, &rec);
            c.flight = 10_000.0;
            cc.on_ack(&mut c, 10_000, now);
        }
        assert!(
            matches!(cc.phase, BbrPhase::ProbeBw(_)),
            "expected probe_bw, got {:?}",
            cc.phase
        );
        let phases: Vec<&'static str> = rec
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::BbrState { phase, .. } => Some(phase),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&"drain"), "drain visited: {phases:?}");
        assert_eq!(phases.first(), Some(&"startup"));
    }

    #[test]
    fn buggy_bbr_skips_drain() {
        let rec = Recorder::new();
        rec.enable();
        let mut cfg = CcConfig::for_algorithm(CcAlgorithm::Bbr);
        cfg.buggy_skip_drain = true;
        let mut cc = Bbr::new(&cfg);
        let (mut cwnd, mut ssthresh) = (10_000.0, f64::INFINITY);
        let mut now = SimTime::ZERO;
        cc.on_rtt_sample(0.05, now);
        for _ in 0..400 {
            now = now + std::time::Duration::from_millis(10);
            let mut c = ctx(&mut cwnd, &mut ssthresh, &rec);
            c.flight = 10_000.0;
            cc.on_ack(&mut c, 10_000, now);
        }
        let phases: Vec<&'static str> = rec
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::BbrState { phase, .. } => Some(phase),
                _ => None,
            })
            .collect();
        assert!(!phases.contains(&"drain"), "bug skips drain: {phases:?}");
        assert!(phases.contains(&"probe_bw"));
    }

    #[test]
    fn bbr_paces_at_gain_times_bandwidth() {
        let rec = Recorder::new();
        let cfg = CcConfig::for_algorithm(CcAlgorithm::Bbr);
        let mut cc = Bbr::new(&cfg);
        assert_eq!(cc.pacing_rate(), None, "unpaced before estimates");
        cc.btl_bw = 1_000_000.0;
        let rate = cc.pacing_rate().expect("paced");
        assert!((rate - 2.885e6).abs() < 1.0, "startup gain × btl_bw");
        let _ = rec;
    }
}
