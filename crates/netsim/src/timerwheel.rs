//! Per-stack timer coalescing.
//!
//! The transport stacks used to schedule one engine event per flow timer:
//! every RTO re-arm, delayed-ACK deadline and pacer gate became its own
//! [`EventTarget`](crate::engine::EventTarget) entry cascading through the
//! global timing wheel — at 10⁴ flows, timer events outnumber packet
//! events. [`StackTimerWheel`] batches them: all per-flow timer tokens due
//! at the same tick are registered in one bucket, and only the *first*
//! registration for a tick schedules an engine event. When that event
//! fires, the stack drains the whole bucket and services every flow in
//! registration order — N timers, one engine dispatch.
//!
//! Cancellation is implicit: stacks never unregister a token. The per-flow
//! staleness discipline (a firing earlier than the flow's current deadline
//! is ignored, and slab generations kill tokens of dead flows) already
//! makes spurious firings no-ops, so a bucket may contain stale tokens and
//! servicing them is harmless. This mirrors how the stacks already treated
//! per-timer engine events before coalescing — the wheel changes *where*
//! tokens wait, not how they are validated.
//!
//! Bucket storage is recycled (bounded spare list) so steady-state
//! registration allocates nothing.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Most spare bucket vectors retained for reuse.
const MAX_SPARE: usize = 64;

/// A tick-keyed batch store for per-flow timer tokens (see [module
/// docs](self)).
#[derive(Default)]
pub struct StackTimerWheel {
    /// Tick → tokens registered for that tick, in registration order.
    buckets: BTreeMap<SimTime, Vec<u64>>,
    /// Recycled bucket storage.
    spare: Vec<Vec<u64>>,
}

impl StackTimerWheel {
    /// An empty wheel.
    #[must_use]
    pub fn new() -> Self {
        StackTimerWheel {
            buckets: BTreeMap::new(),
            spare: Vec::new(),
        }
    }

    /// Registers `token` to be serviced at `at`. Returns `true` when this
    /// is the first registration for the tick — the caller must then
    /// schedule exactly one engine event for `at`.
    pub fn register(&mut self, at: SimTime, token: u64) -> bool {
        match self.buckets.entry(at) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().push(token);
                false
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                let mut bucket = self.spare.pop().unwrap_or_default();
                bucket.push(token);
                v.insert(bucket);
                true
            }
        }
    }

    /// Removes and returns the batch for `at` (tokens in registration
    /// order), or `None` if the tick has no bucket (already drained).
    #[must_use]
    pub fn take(&mut self, at: SimTime) -> Option<Vec<u64>> {
        self.buckets.remove(&at)
    }

    /// Returns drained bucket storage for reuse.
    pub fn recycle(&mut self, mut bucket: Vec<u64>) {
        if self.spare.len() < MAX_SPARE {
            bucket.clear();
            self.spare.push(bucket);
        }
    }

    /// Number of ticks with a pending bucket.
    #[must_use]
    pub fn pending_ticks(&self) -> usize {
        self.buckets.len()
    }

    /// Total tokens currently registered (including stale ones).
    #[must_use]
    pub fn pending_tokens(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

impl std::fmt::Debug for StackTimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackTimerWheel")
            .field("ticks", &self.buckets.len())
            .field("tokens", &self.pending_tokens())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registration_per_tick_requests_event() {
        let mut w = StackTimerWheel::new();
        let t = SimTime::from_millis(5);
        assert!(w.register(t, 1));
        assert!(!w.register(t, 2));
        assert!(!w.register(t, 3));
        assert!(w.register(SimTime::from_millis(6), 4));
        assert_eq!(w.pending_ticks(), 2);
        assert_eq!(w.pending_tokens(), 4);
    }

    #[test]
    fn take_preserves_registration_order() {
        let mut w = StackTimerWheel::new();
        let t = SimTime::from_millis(1);
        w.register(t, 10);
        w.register(t, 7);
        w.register(t, 10);
        assert_eq!(w.take(t), Some(vec![10, 7, 10]));
        assert_eq!(w.take(t), None, "second take of a tick is empty");
        assert_eq!(w.pending_ticks(), 0);
    }

    #[test]
    fn recycled_buckets_are_reused_empty() {
        let mut w = StackTimerWheel::new();
        let t = SimTime::from_millis(1);
        w.register(t, 1);
        let b = w.take(t).unwrap();
        let cap = b.capacity();
        w.recycle(b);
        // Next fresh tick reuses the storage, starting empty.
        assert!(w.register(SimTime::from_millis(2), 9));
        let b2 = w.take(SimTime::from_millis(2)).unwrap();
        assert_eq!(b2, vec![9]);
        assert_eq!(b2.capacity(), cap);
    }

    #[test]
    fn re_registration_after_drain_requests_new_event() {
        let mut w = StackTimerWheel::new();
        let t = SimTime::from_millis(3);
        assert!(w.register(t, 1));
        let _ = w.take(t);
        // A token armed for the same tick after the batch drained needs its
        // own engine event again.
        assert!(w.register(t, 2));
    }
}
