//! Simulated UDP sockets: unreliable, unordered datagrams.
//!
//! UDP keeps none of TCP/UDT's guarantees — the middleware exposes that
//! trade-off deliberately ("adding these semantics would defeat the point of
//! having a lightweight protocol like UDP available in the first place").

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::network::{BindError, Network, PacketSink};
use crate::packet::{Endpoint, NodeId, Packet, PacketBody, WireProtocol};

/// Maximum UDP datagram payload (IPv4 limit minus headers).
pub const MAX_DATAGRAM: usize = 65_507;

/// Callbacks for a UDP socket.
pub trait UdpEvents: Send + Sync {
    /// A datagram arrived from `src`.
    fn on_datagram(&self, socket: &UdpSocket, src: Endpoint, data: Bytes);
}

struct UdpShared {
    net: Network,
    local: Endpoint,
    events: Arc<dyn UdpEvents>,
}

/// A bound UDP socket.
#[derive(Clone)]
pub struct UdpSocket {
    shared: Arc<UdpShared>,
}

impl fmt::Debug for UdpSocket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpSocket")
            .field("local", &self.shared.local)
            .finish()
    }
}

struct UdpSink {
    shared: std::sync::Weak<UdpShared>,
}

impl PacketSink for UdpSink {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        if let PacketBody::Udp(data) = pkt.body {
            let socket = UdpSocket { shared: shared.clone() };
            shared.events.on_datagram(&socket, pkt.src, data);
        }
    }
}

/// Error when sending a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpSendError {
    /// Payload exceeds [`MAX_DATAGRAM`].
    TooLarge {
        /// Offending payload size.
        size: usize,
    },
}

impl fmt::Display for UdpSendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpSendError::TooLarge { size } => {
                write!(f, "datagram of {size} bytes exceeds the {MAX_DATAGRAM} byte limit")
            }
        }
    }
}

impl std::error::Error for UdpSendError {}

impl UdpSocket {
    /// Binds a UDP socket on `node`/`port`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the port is taken.
    pub fn bind(
        net: &Network,
        node: NodeId,
        port: u16,
        events: Arc<dyn UdpEvents>,
    ) -> Result<UdpSocket, BindError> {
        let shared = Arc::new(UdpShared {
            net: net.clone(),
            local: Endpoint::new(node, port),
            events,
        });
        let sink = Arc::new(UdpSink {
            shared: Arc::downgrade(&shared),
        });
        net.bind(node, WireProtocol::Udp, port, sink)?;
        Ok(UdpSocket { shared })
    }

    /// The local endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.shared.local
    }

    /// Sends a datagram to `dst`. Fire and forget: delivery is not
    /// guaranteed and datagrams may be reordered across routes.
    ///
    /// # Errors
    ///
    /// Returns [`UdpSendError::TooLarge`] if `data` exceeds
    /// [`MAX_DATAGRAM`].
    pub fn send_to(&self, dst: Endpoint, data: Bytes) -> Result<(), UdpSendError> {
        if data.len() > MAX_DATAGRAM {
            return Err(UdpSendError::TooLarge { size: data.len() });
        }
        let pkt = Packet::new(
            self.shared.local,
            dst,
            WireProtocol::Udp,
            data.len(),
            PacketBody::Udp(data),
        );
        self.shared.net.send_packet(pkt);
        Ok(())
    }

    /// Unbinds the socket. Datagrams arriving afterwards are dropped.
    pub fn unbind(&self) {
        self.shared
            .net
            .unbind(self.shared.local.node, WireProtocol::Udp, self.shared.local.port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::link::LinkConfig;
    use crate::time::SimTime;
    use parking_lot::Mutex;
    use std::time::Duration;

    struct Collect(Mutex<Vec<(Endpoint, Bytes)>>);
    impl UdpEvents for Collect {
        fn on_datagram(&self, _s: &UdpSocket, src: Endpoint, data: Bytes) {
            self.0.lock().push((src, data));
        }
    }

    fn setup() -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(3);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, LinkConfig::new(10e6, Duration::from_millis(1)));
        (sim, net, a, b)
    }

    #[test]
    fn datagram_round_trip() {
        let (sim, net, a, b) = setup();
        let rx = Arc::new(Collect(Mutex::new(Vec::new())));
        let _sock_b = UdpSocket::bind(&net, b, 9000, rx.clone()).unwrap();
        let sock_a = UdpSocket::bind(&net, a, 9001, Arc::new(Collect(Mutex::new(Vec::new())))).unwrap();
        sock_a
            .send_to(Endpoint::new(b, 9000), Bytes::from_static(b"hello"))
            .unwrap();
        sim.run_until(SimTime::from_secs(1));
        let got = rx.0.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Endpoint::new(a, 9001));
        assert_eq!(&got[0].1[..], b"hello");
    }

    #[test]
    fn oversized_datagram_rejected() {
        let (_sim, net, a, _b) = setup();
        let sock = UdpSocket::bind(&net, a, 9000, Arc::new(Collect(Mutex::new(Vec::new())))).unwrap();
        let big = Bytes::from(vec![0u8; MAX_DATAGRAM + 1]);
        let err = sock.send_to(Endpoint::new(a, 9000), big).unwrap_err();
        assert!(matches!(err, UdpSendError::TooLarge { .. }));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn lossy_link_drops_datagrams() {
        let sim = Sim::new(5);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(
            a,
            b,
            LinkConfig::new(100e6, Duration::from_micros(10)).random_loss(0.5),
        );
        let rx = Arc::new(Collect(Mutex::new(Vec::new())));
        let _sock_b = UdpSocket::bind(&net, b, 9000, rx.clone()).unwrap();
        let sock_a = UdpSocket::bind(&net, a, 9001, Arc::new(Collect(Mutex::new(Vec::new())))).unwrap();
        for _ in 0..200 {
            sock_a
                .send_to(Endpoint::new(b, 9000), Bytes::from_static(b"x"))
                .unwrap();
        }
        sim.run_until(SimTime::from_secs(1));
        let n = rx.0.lock().len();
        assert!(n > 50 && n < 150, "delivered {n} of 200 at 50% loss");
    }

    #[test]
    fn unbind_stops_delivery() {
        let (sim, net, a, b) = setup();
        let rx = Arc::new(Collect(Mutex::new(Vec::new())));
        let sock_b = UdpSocket::bind(&net, b, 9000, rx.clone()).unwrap();
        let sock_a = UdpSocket::bind(&net, a, 9001, Arc::new(Collect(Mutex::new(Vec::new())))).unwrap();
        sock_b.unbind();
        sock_a
            .send_to(Endpoint::new(b, 9000), Bytes::from_static(b"x"))
            .unwrap();
        sim.run_until(SimTime::from_secs(1));
        assert!(rx.0.lock().is_empty());
        assert_eq!(net.stats().dropped_no_sink, 1);
    }
}
