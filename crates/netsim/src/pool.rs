//! Pooled storage for in-flight packets.
//!
//! Every packet injected into the fabric used to ride in its own
//! `Box<Packet>`: one malloc at [`send_packet`](crate::network::Network::send_packet)
//! time, one free at delivery or drop. At datacenter scale that is a heap
//! round-trip per packet — the single largest allocation term in the
//! per-event cost profile of large worlds.
//!
//! [`PacketPool`] replaces the box with a slot in a [`Slab<Packet>`]: hop
//! events and in-flight sets carry an 8-byte generation-checked
//! [`PacketHandle`] instead of an owning pointer, and the slot storage is
//! recycled across packets (LIFO, so the hot slots stay cache-warm). The
//! [`Bytes`](bytes::Bytes) payload inside the packet is refcounted
//! separately and is unaffected — pooling recycles the ~160-byte packet
//! header/body shell, which is the part that was churning the allocator.
//!
//! # Lifecycle and leak accounting
//!
//! A slot is allocated exactly once per fabric injection and freed at
//! exactly one of the packet's terminal outcomes: delivery to a sink, a
//! link-level drop, a missing route/sink, or death-by-[`sever`]
//! (mid-flight packets whose link was severed are freed at their arrival
//! check). [`PacketPool::live`] therefore counts packets currently in
//! flight; a drained simulation must report zero, which the fault-path
//! leak tests and the fuzz conservation oracle assert.
//!
//! Generation checking makes stale handles harmless: a handle freed and
//! reused resolves to `None` rather than aliasing the new occupant (the
//! classic ABA hazard of index-based pools), and a double free is rejected
//! instead of corrupting the free list.
//!
//! [`sever`]: crate::link::Link::sever

use crate::packet::Packet;
use crate::slab::{Handle, Slab};

/// Generation-checked, 8-byte, `Copy` reference to a pooled in-flight
/// packet. Carried by packet-hop events instead of a `Box<Packet>`.
pub type PacketHandle = Handle<Packet>;

/// A recycling arena for in-flight packets (see the [module docs](self)).
#[derive(Default)]
pub struct PacketPool {
    slab: Slab<Packet>,
    /// Total slots ever allocated (monotonic; for telemetry/diagnostics).
    allocated: u64,
    /// High-water mark of simultaneously live packets.
    high_water: usize,
}

impl PacketPool {
    /// An empty pool (no allocation until the first packet).
    #[must_use]
    pub fn new() -> Self {
        PacketPool {
            slab: Slab::new(),
            allocated: 0,
            high_water: 0,
        }
    }

    /// Stores a packet, returning its handle. The slot is recycled storage
    /// when one is free (LIFO), a fresh slot otherwise.
    pub fn alloc(&mut self, pkt: Packet) -> PacketHandle {
        self.allocated += 1;
        let h = self.slab.insert(pkt);
        if self.slab.len() > self.high_water {
            self.high_water = self.slab.len();
        }
        h
    }

    /// Frees the slot behind `h`, returning the packet by value. `None` if
    /// the handle is stale (already freed — double frees are rejected, not
    /// undefined).
    pub fn free(&mut self, h: PacketHandle) -> Option<Packet> {
        self.slab.remove(h)
    }

    /// Resolves a live handle.
    #[must_use]
    pub fn get(&self, h: PacketHandle) -> Option<&Packet> {
        self.slab.get(h)
    }

    /// Mutable variant of [`PacketPool::get`].
    #[must_use]
    pub fn get_mut(&mut self, h: PacketHandle) -> Option<&mut Packet> {
        self.slab.get_mut(h)
    }

    /// True if `h` refers to a live (not yet freed) packet.
    #[must_use]
    pub fn contains(&self, h: PacketHandle) -> bool {
        self.slab.contains(h)
    }

    /// Packets currently in flight. A drained world must report zero —
    /// anything else is a leaked slot.
    #[must_use]
    pub fn live(&self) -> usize {
        self.slab.len()
    }

    /// Total packets ever pooled (monotonic).
    #[must_use]
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }

    /// Most packets ever simultaneously live.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Retained slot storage in bytes (the scaling probe's RSS proxy).
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.slab.mem_bytes()
    }
}

impl std::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketPool")
            .field("live", &self.live())
            .field("high_water", &self.high_water)
            .field("allocated", &self.allocated)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Endpoint, NodeId, PacketBody, WireProtocol};
    use bytes::Bytes;

    fn pkt(tag: u16) -> Packet {
        Packet::new(
            Endpoint::new(NodeId::from_index(0), tag),
            Endpoint::new(NodeId::from_index(1), 80),
            WireProtocol::Udp,
            100,
            PacketBody::Udp(Bytes::new()),
        )
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut pool = PacketPool::new();
        let h = pool.alloc(pkt(7));
        assert_eq!(pool.live(), 1);
        assert_eq!(pool.get(h).unwrap().src.port, 7);
        let out = pool.free(h).unwrap();
        assert_eq!(out.src.port, 7);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn double_free_rejected() {
        let mut pool = PacketPool::new();
        let h = pool.alloc(pkt(1));
        assert!(pool.free(h).is_some());
        assert!(pool.free(h).is_none(), "second free must be rejected");
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn stale_handle_does_not_alias_recycled_slot() {
        let mut pool = PacketPool::new();
        let a = pool.alloc(pkt(1));
        pool.free(a);
        let b = pool.alloc(pkt(2));
        // Same slot, new generation: the old handle must not resolve.
        assert_eq!(
            a.index(),
            b.index(),
            "LIFO recycling should reuse the slot"
        );
        assert!(pool.get(a).is_none());
        assert!(!pool.contains(a));
        assert_eq!(pool.get(b).unwrap().src.port, 2);
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut pool = PacketPool::new();
        let hs: Vec<_> = (0..10).map(|i| pool.alloc(pkt(i))).collect();
        assert_eq!(pool.high_water(), 10);
        assert_eq!(pool.total_allocated(), 10);
        for h in hs {
            pool.free(h);
        }
        assert_eq!(pool.live(), 0);
        // High water and total stay monotonic.
        pool.alloc(pkt(0));
        assert_eq!(pool.high_water(), 10);
        assert_eq!(pool.total_allocated(), 11);
        assert!(pool.mem_bytes() > 0);
    }
}
