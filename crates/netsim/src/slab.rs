//! Dense, generation-checked storage for simulator state.
//!
//! At datacenter scale (10⁴ hosts, 10⁴ concurrent flows) the old
//! `Arc<Mutex<...>>`-per-connection representation is memory- and
//! cache-hostile: every flow is its own heap allocation, every timer
//! callback boxes a closure capturing a `Weak`, and every packet hop clones
//! refcounted pointers. This module provides the compact alternative:
//!
//! * [`Slab<T>`] — a dense arena with an intrusive free list. Slots are
//!   addressed by [`Handle`]s: a packed `(index, generation)` pair that fits
//!   in 8 bytes and is `Copy`, so packet hops and timer tokens can carry it
//!   by value instead of bumping refcounts.
//! * Generation checking — every slot carries a generation that is bumped on
//!   `remove`, so a stale handle (e.g. a timer that fires after its flow was
//!   torn down) resolves to `None` instead of aliasing an unrelated flow
//!   that happens to reuse the slot.
//! * [`FxHasher`] — a dependency-free port of the Firefox/rustc hash used
//!   for the hot-path maps the dense tables don't subsume (sink demux,
//!   listener connection tables). The default `SipHash` is DoS-resistant
//!   but ~4x slower for the short fixed-width keys the simulator uses, and
//!   the simulator is not an open network service.
//!
//! Memory accounting: [`Slab::mem_bytes`] reports the retained capacity in
//! bytes, which is what the scaling benchmark and the memory-regression
//! test use as an RSS proxy for bytes/flow.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::marker::PhantomData;

/// A generation-checked index into a [`Slab<T>`].
///
/// 8 bytes, `Copy`, and typed by the slot it refers to, so a flow handle
/// cannot be confused with a link handle at compile time. The generation
/// makes stale handles safe at runtime: after the slot is freed and reused,
/// old handles no longer resolve.
pub struct Handle<T> {
    idx: u32,
    gen: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// The raw slot index (for dense side tables indexed the same way).
    #[must_use]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The slot generation this handle was issued for.
    #[must_use]
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// Packs the handle into a `u64` (`index << 32 | generation`) so it can
    /// ride in an event token without any allocation.
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.idx) << 32) | u64::from(self.gen)
    }

    /// Reverses [`Handle::pack`].
    #[must_use]
    pub fn from_packed(bits: u64) -> Self {
        Handle {
            idx: (bits >> 32) as u32,
            gen: bits as u32,
            _marker: PhantomData,
        }
    }
}

// Manual impls: `derive` would bound them on `T`, but the handle is just an
// index — it is Copy/Eq/Hash regardless of what the slab stores.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx && self.gen == other.gen
    }
}
impl<T> Eq for Handle<T> {}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.pack());
    }
}
impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({}v{})", self.idx, self.gen)
    }
}

enum Slot<T> {
    /// Free slot; value is the index of the next free slot (or `u32::MAX`).
    Vacant(u32),
    Occupied(T),
}

/// A dense arena of `T` with O(1) insert/remove and generation-checked
/// handles. Slots are reused LIFO so long-running worlds with connection
/// churn stay compact.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    gens: Vec<u32>,
    free_head: u32,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab (no allocation until the first insert).
    #[must_use]
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            gens: Vec::new(),
            free_head: u32::MAX,
            live: 0,
        }
    }

    /// An empty slab with room for `cap` slots.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            gens: Vec::with_capacity(cap),
            free_head: u32::MAX,
            live: 0,
        }
    }

    /// Number of live (occupied) slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Retained capacity in bytes — the RSS proxy used by the scaling
    /// benchmark (slot storage plus generation table).
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.gens.capacity() * std::mem::size_of::<u32>()
    }

    /// Inserts a value, reusing a free slot if one exists.
    pub fn insert(&mut self, value: T) -> Handle<T> {
        self.live += 1;
        if self.free_head != u32::MAX {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Vacant(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            Handle {
                idx,
                gen: self.gens[idx as usize],
                _marker: PhantomData,
            }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab index overflow");
            // Grow in 25% steps instead of `Vec`'s doubling: at datacenter
            // scale the retained-capacity slack is a real memory term (a
            // 20k-flow world under doubling strands 12k slots), and slabs
            // grow one slot at a time so the extra realloc count is cheap.
            if self.slots.len() == self.slots.capacity() {
                let extra = (self.slots.len() / 4).max(64);
                self.slots.reserve_exact(extra);
                self.gens.reserve_exact(extra);
            }
            self.slots.push(Slot::Occupied(value));
            self.gens.push(0);
            Handle {
                idx,
                gen: 0,
                _marker: PhantomData,
            }
        }
    }

    fn check(&self, h: Handle<T>) -> bool {
        (h.idx as usize) < self.slots.len() && self.gens[h.idx as usize] == h.gen
    }

    /// True if the handle still refers to a live slot.
    #[must_use]
    pub fn contains(&self, h: Handle<T>) -> bool {
        self.check(h) && matches!(self.slots[h.idx as usize], Slot::Occupied(_))
    }

    /// Resolves a handle, or `None` if it is stale or out of range.
    #[must_use]
    pub fn get(&self, h: Handle<T>) -> Option<&T> {
        if !self.check(h) {
            return None;
        }
        match &self.slots[h.idx as usize] {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant(_) => None,
        }
    }

    /// Mutable variant of [`Slab::get`].
    #[must_use]
    pub fn get_mut(&mut self, h: Handle<T>) -> Option<&mut T> {
        if !self.check(h) {
            return None;
        }
        match &mut self.slots[h.idx as usize] {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant(_) => None,
        }
    }

    /// Reconstructs the current-generation handle for a raw slot index, or
    /// `None` if the slot is vacant or out of range. Used to resolve packed
    /// event tokens (which carry the index and the generation they were
    /// issued for) back into checked handles.
    #[must_use]
    pub fn handle_at(&self, index: u32) -> Option<Handle<T>> {
        match self.slots.get(index as usize) {
            Some(Slot::Occupied(_)) => Some(Handle {
                idx: index,
                gen: self.gens[index as usize],
                _marker: PhantomData,
            }),
            _ => None,
        }
    }

    /// Removes the value behind `h`, bumping the slot generation so every
    /// outstanding copy of the handle goes stale.
    pub fn remove(&mut self, h: Handle<T>) -> Option<T> {
        if !self.contains(h) {
            return None;
        }
        let idx = h.idx as usize;
        let old = std::mem::replace(&mut self.slots[idx], Slot::Vacant(self.free_head));
        self.free_head = h.idx;
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.live -= 1;
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant(_) => unreachable!("contains() said occupied"),
        }
    }

    /// Iterates live slots in index order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (Handle<T>, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match s {
                Slot::Occupied(v) => Some((
                    Handle {
                        idx: i as u32,
                        gen: self.gens[i],
                        _marker: PhantomData,
                    },
                    v,
                )),
                Slot::Vacant(_) => None,
            })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("live", &self.live)
            .field("capacity", &self.slots.capacity())
            .finish()
    }
}

/// The Firefox/rustc "Fx" hash: a single multiply-rotate per word. Not
/// DoS-resistant — fine for a simulator whose keys come from its own node
/// and port allocators, and measurably faster than SipHash on the 8-byte
/// keys used by the sink demux and listener tables.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Retained bytes of an `FxHashMap`/`HashMap`: a conservative capacity-based
/// estimate (hashbrown stores one control byte plus one `(K, V)` pair per
/// bucket). Used by the memory accounting in the scaling probe.
#[must_use]
pub fn map_mem_bytes<K, V, S>(map: &HashMap<K, V, S>) -> usize {
    // hashbrown allocates buckets = capacity / 7 * 8 rounded to a power of
    // two; capacity() already reflects the usable size, so this slightly
    // underestimates. Good enough for a regression *budget*.
    map.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<String> = Slab::new();
        let a = slab.insert("a".into());
        let b = slab.insert("b".into());
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).unwrap(), "a");
        assert_eq!(slab.get(b).unwrap(), "b");
        assert_eq!(slab.remove(a).unwrap(), "a");
        assert_eq!(slab.len(), 1);
        assert!(slab.get(a).is_none());
        assert_eq!(slab.get(b).unwrap(), "b");
    }

    #[test]
    fn stale_handle_rejected_after_reuse() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        // The freed slot is reused by the next insert...
        let b = slab.insert(2);
        assert_eq!(b.index(), a.index());
        // ...but the old handle must not alias the new occupant.
        assert!(slab.get(a).is_none());
        assert!(!slab.contains(a));
        assert_eq!(*slab.get(b).unwrap(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn pack_roundtrip() {
        let mut slab: Slab<u8> = Slab::new();
        let h = {
            let a = slab.insert(0);
            slab.remove(a);
            slab.insert(7) // generation 1
        };
        assert_eq!(h.generation(), 1);
        let packed = h.pack();
        let back: Handle<u8> = Handle::from_packed(packed);
        assert_eq!(back, h);
        assert_eq!(*slab.get(back).unwrap(), 7);
    }

    #[test]
    fn free_list_is_lifo_and_dense() {
        let mut slab: Slab<usize> = Slab::new();
        let hs: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        slab.remove(hs[3]);
        slab.remove(hs[7]);
        let x = slab.insert(100);
        let y = slab.insert(200);
        // LIFO reuse: most recently freed slot first.
        assert_eq!(x.index(), 7);
        assert_eq!(y.index(), 3);
        assert_eq!(slab.len(), 10);
    }

    #[test]
    fn iter_is_index_ordered() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(10);
        let _b = slab.insert(20);
        let _c = slab.insert(30);
        slab.remove(a);
        let vals: Vec<u32> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![20, 30]);
        let idxs: Vec<usize> = slab.iter().map(|(h, _)| h.index()).collect();
        assert_eq!(idxs, vec![1, 2]);
    }

    #[test]
    fn mem_bytes_tracks_capacity() {
        let mut slab: Slab<[u64; 8]> = Slab::with_capacity(16);
        let base = slab.mem_bytes();
        assert!(base >= 16 * std::mem::size_of::<[u64; 8]>());
        for _ in 0..16 {
            slab.insert([0; 8]);
        }
        // No growth within reserved capacity.
        assert_eq!(slab.mem_bytes(), base);
    }

    #[test]
    fn growth_slack_stays_under_a_third() {
        // 20k one-at-a-time inserts (a 10k-host converging-senders world)
        // must not strand doubling-sized capacity: the 25% growth policy
        // bounds retained slack.
        let mut slab: Slab<[u64; 4]> = Slab::new();
        for i in 0..20_000u64 {
            slab.insert([i; 4]);
        }
        let per_slot = std::mem::size_of::<Slot<[u64; 4]>>() + std::mem::size_of::<u32>();
        let implied_cap = slab.mem_bytes() / per_slot;
        assert!(
            implied_cap < 20_000 * 4 / 3,
            "slab capacity {implied_cap} for 20000 live slots — growth slack too large"
        );
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());

        // Sanity: nearby keys land on distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn fx_map_smoke() {
        let mut m: FxHashMap<(u32, u16), u64> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert((i, i as u16), u64::from(i) * 3);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&(42, 42)], 126);
        assert!(map_mem_bytes(&m) > 0);
    }

    #[test]
    fn handle_is_8_bytes() {
        assert_eq!(std::mem::size_of::<Handle<String>>(), 8);
        assert!(std::mem::size_of::<Option<Handle<String>>>() <= 12);
    }
}
