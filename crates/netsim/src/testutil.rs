//! Reusable test fixtures for transport-level tests.
//!
//! Public (not `cfg(test)`) so that integration tests and downstream crates
//! can drive simulated connections without re-implementing boilerplate.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::engine::Sim;
use crate::iface::{CloseReason, Connection, StreamEvents};
use crate::time::SimTime;

/// A no-op [`StreamEvents`] implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinkEvents;

impl StreamEvents for SinkEvents {}

#[derive(Default)]
struct RecorderInner {
    data: Vec<u8>,
    connected: usize,
    writable: usize,
    closed: usize,
    close_reasons: Vec<CloseReason>,
    last_data_at: Option<SimTime>,
    first_data_at: Option<SimTime>,
}

/// Records everything a connection delivers; used to assert on transfer
/// contents, ordering and timing.
pub struct Recorder {
    sim: Option<Sim>,
    inner: Mutex<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            sim: None,
            inner: Mutex::new(RecorderInner::default()),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Recorder")
            .field("data_len", &inner.data.len())
            .field("connected", &inner.connected)
            .field("closed", &inner.closed)
            .finish()
    }
}

impl Recorder {
    /// A recorder that timestamps arrivals on the given simulation clock.
    #[must_use]
    pub fn with_sim(sim: &Sim) -> Self {
        Recorder {
            sim: Some(sim.clone()),
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// All delivered bytes, concatenated in delivery order.
    #[must_use]
    pub fn data(&self) -> Vec<u8> {
        self.inner.lock().data.clone()
    }

    /// Number of delivered bytes.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.inner.lock().data.len()
    }

    /// How many times `on_connected` fired.
    #[must_use]
    pub fn connected(&self) -> usize {
        self.inner.lock().connected
    }

    /// How many times `on_writable` fired.
    #[must_use]
    pub fn writable(&self) -> usize {
        self.inner.lock().writable
    }

    /// How many times `on_closed` fired.
    #[must_use]
    pub fn closed(&self) -> usize {
        self.inner.lock().closed
    }

    /// Close reasons observed, in order.
    #[must_use]
    pub fn close_reasons(&self) -> Vec<CloseReason> {
        self.inner.lock().close_reasons.clone()
    }

    /// Whether the delivered bytes follow the [`pattern_byte`] sequence,
    /// i.e. the stream arrived complete and in order.
    #[must_use]
    pub fn in_order(&self) -> bool {
        let inner = self.inner.lock();
        inner
            .data
            .iter()
            .enumerate()
            .all(|(i, &b)| b == pattern_byte(i))
    }

    /// Time of the last data delivery (requires [`Recorder::with_sim`]).
    #[must_use]
    pub fn last_data_at(&self) -> Option<SimTime> {
        self.inner.lock().last_data_at
    }

    /// Time of the first data delivery (requires [`Recorder::with_sim`]).
    #[must_use]
    pub fn first_data_at(&self) -> Option<SimTime> {
        self.inner.lock().first_data_at
    }

    /// Average goodput from simulation start to the last delivery, B/s.
    ///
    /// # Panics
    ///
    /// Panics if nothing was delivered or the recorder has no clock.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        let inner = self.inner.lock();
        let last = inner.last_data_at.expect("no data recorded");
        inner.data.len() as f64 / last.as_secs_f64()
    }
}

impl StreamEvents for Recorder {
    fn on_connected(&self, _conn: &Connection) {
        self.inner.lock().connected += 1;
    }

    fn on_data(&self, _conn: &Connection, data: Bytes) {
        let mut inner = self.inner.lock();
        inner.data.extend_from_slice(&data);
        if let Some(sim) = &self.sim {
            let now = sim.now();
            inner.last_data_at = Some(now);
            inner.first_data_at.get_or_insert(now);
        }
    }

    fn on_writable(&self, _conn: &Connection) {
        self.inner.lock().writable += 1;
    }

    fn on_closed(&self, _conn: &Connection, reason: CloseReason) {
        let mut inner = self.inner.lock();
        inner.closed += 1;
        inner.close_reasons.push(reason);
    }
}

/// The deterministic byte at stream offset `i` used by [`PatternSender`].
#[must_use]
pub fn pattern_byte(i: usize) -> u8 {
    (i % 251) as u8
}

/// Builds the pattern slice for stream offsets `[offset, offset + len)`.
#[must_use]
pub fn pattern_bytes(offset: usize, len: usize) -> Bytes {
    Bytes::from((offset..offset + len).map(pattern_byte).collect::<Vec<u8>>())
}

struct PatternSenderInner {
    sent: usize,
    total: usize,
    done_sending_at: Option<SimTime>,
}

/// Pumps a deterministic byte pattern of `total` bytes into a connection,
/// refilling the send buffer from `on_connected` / `on_writable` callbacks.
pub struct PatternSender {
    sim: Sim,
    chunk: usize,
    close_when_done: bool,
    inner: Mutex<PatternSenderInner>,
}

impl std::fmt::Debug for PatternSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PatternSender")
            .field("sent", &inner.sent)
            .field("total", &inner.total)
            .finish()
    }
}

impl PatternSender {
    /// Creates a sender for `total` pattern bytes.
    #[must_use]
    pub fn new(sim: &Sim, total: usize) -> Arc<Self> {
        Arc::new(PatternSender {
            sim: sim.clone(),
            chunk: 64 * 1024,
            close_when_done: false,
            inner: Mutex::new(PatternSenderInner {
                sent: 0,
                total,
                done_sending_at: None,
            }),
        })
    }

    /// Like [`PatternSender::new`] but closes the connection after the last
    /// byte is buffered.
    #[must_use]
    pub fn closing(sim: &Sim, total: usize) -> Arc<Self> {
        Arc::new(PatternSender {
            sim: sim.clone(),
            chunk: 64 * 1024,
            close_when_done: true,
            inner: Mutex::new(PatternSenderInner {
                sent: 0,
                total,
                done_sending_at: None,
            }),
        })
    }

    /// Starts pumping into an already-created connection (useful when the
    /// connection was opened before the sender existed).
    pub fn start(&self, conn: &Connection) {
        self.pump(conn);
    }

    /// Bytes accepted by the connection so far.
    #[must_use]
    pub fn sent(&self) -> usize {
        self.inner.lock().sent
    }

    /// When the final byte was accepted into the send buffer.
    #[must_use]
    pub fn done_sending_at(&self) -> Option<Duration> {
        self.inner
            .lock()
            .done_sending_at
            .map(|t| Duration::from_nanos(t.as_nanos()))
    }

    fn pump(&self, conn: &Connection) {
        loop {
            let (offset, want) = {
                let inner = self.inner.lock();
                if inner.sent >= inner.total {
                    return;
                }
                (inner.sent, (inner.total - inner.sent).min(self.chunk))
            };
            let accepted = conn.send(pattern_bytes(offset, want));
            let mut inner = self.inner.lock();
            inner.sent += accepted;
            if inner.sent >= inner.total {
                inner.done_sending_at = Some(self.sim.now());
                drop(inner);
                if self.close_when_done {
                    conn.close();
                }
                return;
            }
            if accepted < want {
                return; // buffer full; resume on on_writable
            }
        }
    }
}

impl StreamEvents for PatternSender {
    fn on_connected(&self, conn: &Connection) {
        self.pump(conn);
    }

    fn on_writable(&self, conn: &Connection) {
        self.pump(conn);
    }
}

/// One event in an engine-churn workload (see [`run_churn`]).
///
/// For top-level events of a [`ChurnPhase`], `time` is the *absolute* due
/// time in nanoseconds — possibly in the past, exercising clamp-to-now. For
/// `children`, `time` is a *delay* relative to the parent's fire time
/// (zero lands in the engine's now lane), exercising re-entrant scheduling
/// from inside an executing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Absolute due time (roots) or parent-relative delay (children), ns.
    pub time: u64,
    /// Identifies the event in the resulting trace.
    pub label: u32,
    /// Events this one schedules from inside its own execution.
    pub children: Vec<ChurnEvent>,
}

/// One scheduling phase: inject `ops`, then run to `horizon` (absolute ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPhase {
    /// Horizon passed to `run_until` after scheduling this phase's ops.
    pub horizon: u64,
    /// Events scheduled (in order) before running.
    pub ops: Vec<ChurnEvent>,
}

/// Everything observable about one churn run; two engines implementing the
/// same `(time, seq)` contract must produce equal traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnTrace {
    /// `(fire time ns, label)` for every executed event, in execution order.
    pub firings: Vec<(u64, u32)>,
    /// Events executed per phase, as reported by `run_until`.
    pub executed_per_phase: Vec<u64>,
    /// Final cumulative `events_executed` counter.
    pub events_executed: u64,
    /// Events still pending after the last phase.
    pub events_pending: usize,
    /// Final clock value in ns.
    pub final_now: u64,
}

/// Minimal scheduling surface shared by the production and reference
/// engines, so differential tests and benchmarks can drive both with the
/// same workload.
pub trait ChurnEngine: Clone + Send + Sync + 'static {
    /// Schedules a boxed closure at an absolute time in nanoseconds.
    fn schedule_at_ns(&self, at: u64, f: Box<dyn FnOnce(&Self) + Send>);
    /// Runs events up to an absolute horizon in ns; returns events executed.
    fn run_until_ns(&self, horizon: u64) -> u64;
    /// Current clock in ns.
    fn now_ns(&self) -> u64;
    /// Cumulative executed-events counter.
    fn events_executed(&self) -> u64;
    /// Currently pending events.
    fn events_pending(&self) -> usize;
    /// Records a flight-recorder marker for an executed churn event, if the
    /// engine carries a telemetry recorder. Default: no-op (the reference
    /// oracle has no recorder).
    fn record_mark(&self, _label: u32) {}
}

impl ChurnEngine for Sim {
    fn schedule_at_ns(&self, at: u64, f: Box<dyn FnOnce(&Self) + Send>) {
        self.schedule_at(SimTime::from_nanos(at), f);
    }
    fn run_until_ns(&self, horizon: u64) -> u64 {
        self.run_until(SimTime::from_nanos(horizon))
    }
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
    fn events_executed(&self) -> u64 {
        Sim::events_executed(self)
    }
    fn events_pending(&self) -> usize {
        Sim::events_pending(self)
    }
    fn record_mark(&self, label: u32) {
        self.recorder().record(
            self.now().as_nanos(),
            kmsg_telemetry::EventKind::Mark {
                id: u64::from(label),
                value: Sim::events_executed(self),
            },
        );
    }
}

impl ChurnEngine for crate::reference::ReferenceSim {
    fn schedule_at_ns(&self, at: u64, f: Box<dyn FnOnce(&Self) + Send>) {
        self.schedule_at(SimTime::from_nanos(at), f);
    }
    fn run_until_ns(&self, horizon: u64) -> u64 {
        self.run_until(SimTime::from_nanos(horizon))
    }
    fn now_ns(&self) -> u64 {
        self.now().as_nanos()
    }
    fn events_executed(&self) -> u64 {
        crate::reference::ReferenceSim::events_executed(self)
    }
    fn events_pending(&self) -> usize {
        crate::reference::ReferenceSim::events_pending(self)
    }
}

fn schedule_churn<E: ChurnEngine>(
    engine: &E,
    log: Arc<Mutex<Vec<(u64, u32)>>>,
    at: u64,
    event: ChurnEvent,
) {
    engine.schedule_at_ns(
        at,
        Box::new(move |e: &E| {
            let now = e.now_ns();
            log.lock().push((now, event.label));
            e.record_mark(event.label);
            for child in event.children {
                let child_at = now.saturating_add(child.time);
                schedule_churn(e, log.clone(), child_at, child);
            }
        }),
    );
}

/// Runs a churn workload and returns its execution trace.
///
/// Used by the engine determinism tests to compare the timing-wheel engine
/// against the heap-based reference oracle on randomized schedules.
pub fn run_churn<E: ChurnEngine>(engine: &E, phases: &[ChurnPhase]) -> ChurnTrace {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut executed_per_phase = Vec::with_capacity(phases.len());
    for phase in phases {
        for op in &phase.ops {
            schedule_churn(engine, log.clone(), op.time, op.clone());
        }
        executed_per_phase.push(engine.run_until_ns(phase.horizon));
    }
    let firings = log.lock().clone();
    ChurnTrace {
        firings,
        executed_per_phase,
        events_executed: engine.events_executed(),
        events_pending: engine.events_pending(),
        final_now: engine.now_ns(),
    }
}

/// A minimal deterministic property-test runner with no dependencies
/// beyond the crate's own seeded RNG streams.
///
/// Each case draws its inputs from
/// `SeedSource::new(case).stream(<property name>)`, so a failure report
/// pins down the exact case: rebuilding that one stream replays the
/// failing inputs bit-for-bit, with no shrink corpus or state file on
/// disk. When a case's check panics, a drop guard prepends the property
/// name, case index and the `Debug` rendering of the generated input to
/// stderr before the panic unwinds into the test harness.
///
/// ```
/// use kmsg_netsim::testutil::PropRunner;
/// use rand::Rng;
///
/// PropRunner::new("doc-addition-commutes").cases(16).run(
///     |rng| (rng.gen_range(0i64..100), rng.gen_range(0i64..100)),
///     |&(a, b)| assert_eq!(a + b, b + a),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct PropRunner {
    name: &'static str,
    cases: u64,
}

/// Prints replay instructions if dropped while the thread is panicking —
/// i.e. when the case's check failed.
struct CaseReport {
    name: &'static str,
    case: u64,
    input: String,
    armed: bool,
}

impl Drop for CaseReport {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "property {:?} failed on case {} — replay with \
                 SeedSource::new({}).stream({:?}); input: {}",
                self.name, self.case, self.case, self.name, self.input
            );
        }
    }
}

impl PropRunner {
    /// A runner for the named property. The name doubles as the RNG
    /// stream label, so distinct properties see distinct inputs even for
    /// equal case indices.
    #[must_use]
    pub fn new(name: &'static str) -> PropRunner {
        PropRunner { name, cases: 32 }
    }

    /// Overrides the number of cases (default 32).
    #[must_use]
    pub fn cases(mut self, cases: u64) -> PropRunner {
        self.cases = cases;
        self
    }

    /// Generates and checks every case. `generate` draws one input from
    /// the case's seeded stream; `check` panics (asserts) on violation.
    pub fn run<T: std::fmt::Debug>(
        &self,
        mut generate: impl FnMut(&mut crate::rng::RngStream) -> T,
        mut check: impl FnMut(&T),
    ) {
        for case in 0..self.cases {
            let mut rng = crate::rng::SeedSource::new(case).stream(self.name);
            let input = generate(&mut rng);
            let mut report = CaseReport {
                name: self.name,
                case,
                input: format!("{input:?}"),
                armed: true,
            };
            check(&input);
            report.armed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_runner_replays_identical_inputs() {
        use rand::Rng;
        let sample = || {
            let mut seen = Vec::new();
            {
                let seen = &mut seen;
                PropRunner::new("testutil-replay").cases(8).run(
                    |rng| {
                        let v: u64 = rng.gen();
                        seen.push(v);
                        v
                    },
                    |_| {},
                );
            }
            seen
        };
        let a = sample();
        let b = sample();
        assert_eq!(a.len(), 8, "one input per case");
        assert_eq!(a, b, "same property and case must regenerate the same input");
    }

    #[test]
    fn pattern_bytes_are_deterministic() {
        let a = pattern_bytes(10, 100);
        let b = pattern_bytes(10, 100);
        assert_eq!(a, b);
        assert_eq!(a[0], pattern_byte(10));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn recorder_in_order_detects_corruption() {
        let rec = Recorder::default();
        {
            let mut inner = rec.inner.lock();
            inner.data.extend_from_slice(&pattern_bytes(0, 50));
        }
        assert!(rec.in_order());
        rec.inner.lock().data[10] ^= 0xff;
        assert!(!rec.in_order());
    }
}
