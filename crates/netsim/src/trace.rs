//! Packet tracing: observe every packet the fabric accepts, drops or
//! delivers — the simulator's analog of `tcpdump`.
//!
//! Install a [`PacketTracer`] with
//! [`Network::set_tracer`](crate::network::Network::set_tracer). The
//! bundled [`RingTracer`] keeps the last *N* records in memory and can
//! summarise drop reasons; custom tracers (e.g. writing a log) just
//! implement the trait.

use std::collections::VecDeque;
use std::sync::Arc;

use kmsg_telemetry::{EventKind, Recorder};
use parking_lot::Mutex;

use crate::link::DropReason;
use crate::packet::{Endpoint, WireProtocol};
use crate::time::SimTime;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEvent {
    /// Accepted into the fabric at the source.
    Sent,
    /// Dropped by a link.
    Dropped(DropReason),
    /// Dropped because no route exists.
    NoRoute,
    /// Arrived but no sink is bound at the destination.
    NoSink,
    /// Handed to the destination sink.
    Delivered,
}

impl PacketEvent {
    /// Stable snake_case outcome label for telemetry output
    /// (`"dropped:<reason>"` for drops).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            PacketEvent::Sent => "sent".to_string(),
            PacketEvent::Dropped(reason) => format!("dropped:{}", reason.label()),
            PacketEvent::NoRoute => "no_route".to_string(),
            PacketEvent::NoSink => "no_sink".to_string(),
            PacketEvent::Delivered => "delivered".to_string(),
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Wire protocol family.
    pub protocol: WireProtocol,
    /// Size on the wire.
    pub wire_size: usize,
    /// What happened.
    pub event: PacketEvent,
}

/// Observes packet events. Implementations must be cheap: the tracer runs
/// on the simulation's hot path.
pub trait PacketTracer: Send + Sync {
    /// Called for every packet event.
    fn record(&self, record: PacketRecord);
}

/// A bounded in-memory tracer keeping the most recent records.
#[derive(Debug)]
pub struct RingTracer {
    capacity: usize,
    records: Mutex<VecDeque<PacketRecord>>,
    counts: Mutex<TraceCounts>,
}

/// Aggregate counters kept by [`RingTracer`] (never evicted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Packets accepted at sources.
    pub sent: u64,
    /// Packets delivered to sinks.
    pub delivered: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Packets dropped by random loss.
    pub dropped_loss: u64,
    /// Packets dropped by the UDP policer.
    pub dropped_policer: u64,
    /// Packets dropped by downed links.
    pub dropped_down: u64,
    /// Packets killed in flight by a sever.
    pub dropped_severed: u64,
    /// Packets lost in a Gilbert–Elliott burst.
    pub dropped_burst: u64,
    /// Packets without a route or sink.
    pub unroutable: u64,
}

impl RingTracer {
    /// Creates a tracer retaining the last `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(RingTracer {
            capacity: capacity.max(1),
            records: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            counts: Mutex::new(TraceCounts::default()),
        })
    }

    /// A snapshot of the retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<PacketRecord> {
        self.records.lock().iter().copied().collect()
    }

    /// The aggregate counters.
    #[must_use]
    pub fn counts(&self) -> TraceCounts {
        *self.counts.lock()
    }
}

impl PacketTracer for RingTracer {
    fn record(&self, record: PacketRecord) {
        {
            let mut counts = self.counts.lock();
            match record.event {
                PacketEvent::Sent => counts.sent += 1,
                PacketEvent::Delivered => counts.delivered += 1,
                PacketEvent::Dropped(DropReason::QueueOverflow) => counts.dropped_queue += 1,
                PacketEvent::Dropped(DropReason::RandomLoss) => counts.dropped_loss += 1,
                PacketEvent::Dropped(DropReason::Policed) => counts.dropped_policer += 1,
                PacketEvent::Dropped(DropReason::LinkDown) => counts.dropped_down += 1,
                PacketEvent::Dropped(DropReason::Severed) => counts.dropped_severed += 1,
                PacketEvent::Dropped(DropReason::BurstLoss) => counts.dropped_burst += 1,
                PacketEvent::NoRoute | PacketEvent::NoSink => counts.unroutable += 1,
            }
        }
        let mut records = self.records.lock();
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(record);
    }
}

/// Folds packet events into a telemetry [`Recorder`] as
/// [`EventKind::Packet`] flight-recorder events, so the packet tracer
/// becomes one event source in the unified telemetry stream.
#[derive(Debug)]
pub struct RecorderTracer {
    rec: Recorder,
}

impl RecorderTracer {
    /// Creates a tracer feeding `rec` — usually a clone of
    /// [`Sim::recorder`](crate::engine::Sim::recorder).
    #[must_use]
    pub fn new(rec: Recorder) -> Arc<Self> {
        Arc::new(RecorderTracer { rec })
    }
}

impl PacketTracer for RecorderTracer {
    fn record(&self, record: PacketRecord) {
        // `record_with` defers the endpoint/outcome formatting behind the
        // recorder's enabled check, so a disabled recorder costs one load.
        self.rec
            .record_with(record.time.as_nanos(), || EventKind::Packet {
                src: record.src.to_string(),
                dst: record.dst.to_string(),
                proto: record.protocol.label(),
                wire_size: record.wire_size as u64,
                outcome: record.event.label(),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeId;

    fn rec(event: PacketEvent) -> PacketRecord {
        PacketRecord {
            time: SimTime::ZERO,
            src: Endpoint::new(NodeId::from_index(0), 1),
            dst: Endpoint::new(NodeId::from_index(1), 2),
            protocol: WireProtocol::Udp,
            wire_size: 100,
            event,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let tracer = RingTracer::new(3);
        for i in 0..5 {
            let mut r = rec(PacketEvent::Sent);
            r.wire_size = i;
            tracer.record(r);
        }
        let records = tracer.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].wire_size, 2);
        assert_eq!(tracer.counts().sent, 5, "counters never evicted");
    }

    #[test]
    fn counts_split_by_reason() {
        let tracer = RingTracer::new(10);
        tracer.record(rec(PacketEvent::Dropped(DropReason::Policed)));
        tracer.record(rec(PacketEvent::Dropped(DropReason::RandomLoss)));
        tracer.record(rec(PacketEvent::NoRoute));
        tracer.record(rec(PacketEvent::Delivered));
        let c = tracer.counts();
        assert_eq!(c.dropped_policer, 1);
        assert_eq!(c.dropped_loss, 1);
        assert_eq!(c.unroutable, 1);
        assert_eq!(c.delivered, 1);
    }

    #[test]
    fn ring_wraps_repeatedly_keeping_exactly_capacity() {
        // Push several full capacities worth of records; the ring must hold
        // exactly the last `capacity`, in order, with counters unaffected.
        let tracer = RingTracer::new(4);
        for i in 0..11 {
            let mut r = rec(PacketEvent::Sent);
            r.wire_size = i;
            tracer.record(r);
        }
        let records = tracer.records();
        assert_eq!(records.len(), 4);
        let sizes: Vec<usize> = records.iter().map(|r| r.wire_size).collect();
        assert_eq!(sizes, vec![7, 8, 9, 10]);
        assert_eq!(tracer.counts().sent, 11);
    }

    #[test]
    fn drop_reasons_summarise_after_eviction() {
        // Drop-reason counters survive even when the records that produced
        // them have been evicted from the ring.
        let tracer = RingTracer::new(2);
        for reason in [
            DropReason::QueueOverflow,
            DropReason::QueueOverflow,
            DropReason::RandomLoss,
            DropReason::Policed,
            DropReason::LinkDown,
        ] {
            tracer.record(rec(PacketEvent::Dropped(reason)));
        }
        assert_eq!(tracer.records().len(), 2);
        let c = tracer.counts();
        assert_eq!(c.dropped_queue, 2);
        assert_eq!(c.dropped_loss, 1);
        assert_eq!(c.dropped_policer, 1);
        assert_eq!(c.dropped_down, 1);
    }

    #[test]
    fn recorder_tracer_folds_packets_into_telemetry() {
        let telemetry = Recorder::new();
        let tracer = RecorderTracer::new(telemetry.clone());
        tracer.record(rec(PacketEvent::Sent));
        assert_eq!(telemetry.event_count(), 0, "disabled recorder stays empty");
        telemetry.enable();
        tracer.record(rec(PacketEvent::Dropped(DropReason::Policed)));
        let events = telemetry.events();
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::Packet {
                proto,
                wire_size,
                outcome,
                ..
            } => {
                assert_eq!(*proto, "udp");
                assert_eq!(*wire_size, 100);
                assert_eq!(outcome, "dropped:policed");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
