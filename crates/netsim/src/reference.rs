//! The original binary-heap event engine, kept as a correctness oracle and
//! benchmark baseline.
//!
//! [`ReferenceSim`] is the engine [`Sim`](crate::engine::Sim) shipped with
//! before the timing-wheel rewrite: a single mutex-guarded `BinaryHeap` of
//! boxed closures keyed by `(time, seq)`, locked once per event. It defines
//! the `(time, seq)` determinism contract the wheel engine must reproduce
//! exactly:
//!
//! * the property tests in `crates/netsim/tests/engine_determinism.rs` run
//!   randomized schedules through both engines and require identical
//!   execution traces;
//! * the `engine` criterion benchmark in `crates/bench` measures the wheel
//!   engine's speedup against this implementation.
//!
//! It intentionally has no RNG plumbing — only the scheduling surface the
//! comparison needs.
//!
//! # Examples
//!
//! ```
//! use kmsg_netsim::reference::ReferenceSim;
//! use kmsg_netsim::time::SimTime;
//! use std::time::Duration;
//!
//! let sim = ReferenceSim::new();
//! sim.schedule_in(Duration::from_millis(1), |_| {});
//! assert_eq!(sim.run_until(SimTime::from_secs(1)), 1);
//! ```

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::time::SimTime;

/// A scheduled reference-engine event.
pub type ReferenceEventFn = Box<dyn FnOnce(&ReferenceSim) + Send>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    run: ReferenceEventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Inner {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled>,
}

/// Handle to the heap-based reference engine. Cheaply cloneable; see the
/// [module documentation](self).
#[derive(Clone)]
pub struct ReferenceSim {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for ReferenceSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ReferenceSim")
            .field("now", &inner.now)
            .field("pending", &inner.queue.len())
            .field("executed", &inner.executed)
            .finish()
    }
}

impl Default for ReferenceSim {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceSim {
    /// Creates an empty reference engine at time zero.
    #[must_use]
    pub fn new() -> Self {
        ReferenceSim {
            inner: Arc::new(Mutex::new(Inner {
                now: SimTime::ZERO,
                seq: 0,
                executed: 0,
                queue: BinaryHeap::new(),
            })),
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// Schedules `f` at absolute time `at`; past times clamp to "now" but
    /// still run after already-queued events with the same timestamp.
    pub fn schedule_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&ReferenceSim) + Send + 'static,
    {
        let mut inner = self.inner.lock();
        let at = at.max(inner.now);
        let seq = inner.seq;
        inner.seq += 1;
        inner.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Schedules `f` after `delay` of virtual time.
    pub fn schedule_in<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce(&ReferenceSim) + Send + 'static,
    {
        let at = self.now() + delay;
        self.schedule_at(at, f);
    }

    /// Runs events up to `horizon` (clock advances to `horizon` on return).
    /// Returns the number of events executed.
    pub fn run_until(&self, horizon: SimTime) -> u64 {
        let mut count = 0;
        loop {
            let event = {
                let mut inner = self.inner.lock();
                match inner.queue.peek() {
                    Some(head) if head.at <= horizon => {
                        let ev = inner.queue.pop().expect("peeked event vanished");
                        inner.now = ev.at;
                        inner.executed += 1;
                        ev
                    }
                    _ => {
                        inner.now = inner.now.max(horizon);
                        break;
                    }
                }
            };
            (event.run)(self);
            count += 1;
        }
        count
    }

    /// Runs events for `span` of virtual time from the current clock value.
    pub fn run_for(&self, span: Duration) -> u64 {
        let horizon = self.now() + span;
        self.run_until(horizon)
    }

    /// Runs until the queue is fully drained.
    pub fn run_to_completion(&self) -> u64 {
        let mut count = 0;
        loop {
            let before = count;
            count += self.run_until(SimTime::MAX);
            if count == before {
                break;
            }
        }
        count
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.inner.lock().executed
    }

    /// Number of events currently pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.inner.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_time_and_insertion_order() {
        let sim = ReferenceSim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, us) in [(0u32, 30u64), (1, 10), (2, 10), (3, 20)] {
            let log = log.clone();
            sim.schedule_in(Duration::from_micros(us), move |_| log.lock().push(i));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*log.lock(), vec![1, 2, 3, 0]);
        assert_eq!(sim.events_executed(), 4);
        assert_eq!(sim.events_pending(), 0);
        assert!(format!("{sim:?}").contains("ReferenceSim"));
    }

    #[test]
    fn horizon_and_clock_match_engine_semantics() {
        let sim = ReferenceSim::new();
        sim.schedule_in(Duration::from_secs(5), |_| {});
        assert_eq!(sim.run_until(SimTime::from_secs(1)), 0);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.run_to_completion(), 1);
    }
}
