//! Thread-local allocation-scope tags for per-subsystem attribution.
//!
//! The scaling benchmark runs under a counting `GlobalAlloc` and wants to
//! report not just *how many* allocations each event costs but *which
//! subsystem* made them, so a regression names its offender. The hot-path
//! entry points (engine scheduling, fabric dispatch, the TCP/UDT stacks)
//! tag their extent with a scope id via [`enter`]; an instrumenting
//! allocator reads [`current`] — which never allocates and is safe from
//! inside `GlobalAlloc` — and attributes the allocation.
//!
//! The cost when nobody is counting is two thread-local `Cell` operations
//! per tagged entry point (an event-granularity cost, not per-allocation),
//! which is noise next to the mutex acquisitions those paths already do.

use std::cell::Cell;

/// Allocations outside any tagged extent.
pub const SCOPE_OTHER: usize = 0;
/// The simulation engine: event store growth (lane, wheel, cohorts).
pub const SCOPE_ENGINE: usize = 1;
/// The network fabric: routes, links, the packet pool.
pub const SCOPE_FABRIC: usize = 2;
/// The TCP stack: flows, segment buffers, timer buckets.
pub const SCOPE_TCP: usize = 3;
/// The UDT stack.
pub const SCOPE_UDT: usize = 4;
/// Number of distinct scopes.
pub const N_SCOPES: usize = 5;
/// Stable snake_case labels, indexed by scope id.
pub const SCOPE_LABELS: [&str; N_SCOPES] = ["other", "engine", "fabric", "tcp", "udt"];

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(SCOPE_OTHER) };
}

/// The scope tag of the calling thread's current extent.
///
/// Never allocates and never panics (falls back to [`SCOPE_OTHER`] during
/// thread teardown), so it is callable from a `GlobalAlloc` implementation.
#[inline]
#[must_use]
pub fn current() -> usize {
    CURRENT.try_with(Cell::get).unwrap_or(SCOPE_OTHER)
}

/// Tags the calling thread with `scope` until the guard drops, restoring
/// the previous tag (scopes nest; the innermost wins).
#[inline]
#[must_use]
pub fn enter(scope: usize) -> ScopeGuard {
    debug_assert!(scope < N_SCOPES);
    let prev = CURRENT.try_with(|c| c.replace(scope)).unwrap_or(SCOPE_OTHER);
    ScopeGuard { prev }
}

/// Restores the previous scope tag on drop (see [`enter`]).
#[derive(Debug)]
pub struct ScopeGuard {
    prev: usize,
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), SCOPE_OTHER);
        {
            let _a = enter(SCOPE_TCP);
            assert_eq!(current(), SCOPE_TCP);
            {
                let _b = enter(SCOPE_ENGINE);
                assert_eq!(current(), SCOPE_ENGINE);
            }
            assert_eq!(current(), SCOPE_TCP);
        }
        assert_eq!(current(), SCOPE_OTHER);
    }

    #[test]
    fn labels_cover_all_scopes() {
        assert_eq!(SCOPE_LABELS.len(), N_SCOPES);
        for l in SCOPE_LABELS {
            assert!(!l.is_empty());
        }
    }
}
