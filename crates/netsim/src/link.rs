//! Directed link model: bandwidth, propagation delay, drop-tail queue,
//! random loss, and an optional UDP token-bucket policer.
//!
//! The queue is modelled analytically: a link keeps a `busy_until` horizon;
//! a packet's transmission starts at `max(now, busy_until)` and the current
//! queue occupancy in bytes is `(busy_until - now) · bandwidth`. This yields
//! exact FIFO behaviour and correct bandwidth sharing between flows without
//! per-byte events.
//!
//! The policer models Amazon EC2's UDP rate limiting (~10 MB/s), which the
//! paper identifies as the reason UDT plateaus near 10 MB/s in all of its
//! wide-area experiments.

use std::time::Duration;

use parking_lot::Mutex;
use rand::Rng;

use crate::engine::Sim;
use crate::rng::RngStream;
use crate::time::SimTime;

/// Token-bucket configuration for UDP-family policing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicerConfig {
    /// Sustained rate in bytes per second.
    pub rate: f64,
    /// Bucket depth in bytes.
    pub burst: f64,
}

impl PolicerConfig {
    /// EC2-like policer: 10 MB/s sustained, 1 MB burst.
    #[must_use]
    pub const fn ec2_udp() -> Self {
        PolicerConfig {
            rate: 10e6,
            burst: 1e6,
        }
    }
}

/// Gilbert–Elliott two-state burst-loss model.
///
/// The link alternates between a *good* and a *bad* state; each packet first
/// advances the state machine (good→bad with `p_enter_bad`, bad→good with
/// `p_exit_bad`), then is lost with the loss probability of the resulting
/// state. Unlike the independent `random_loss`, this produces the correlated
/// loss bursts that WAN paths exhibit under transient congestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeConfig {
    /// Per-packet probability of transitioning good → bad.
    pub p_enter_bad: f64,
    /// Per-packet probability of transitioning bad → good.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state (usually ~0).
    pub loss_good: f64,
    /// Loss probability while in the bad state (usually high).
    pub loss_bad: f64,
}

impl GeConfig {
    /// A typical bursty-loss episode: rare entry into a sticky bad state
    /// that loses half its packets.
    #[must_use]
    pub const fn bursty() -> Self {
        GeConfig {
            p_enter_bad: 0.01,
            p_exit_bad: 0.25,
            loss_good: 0.0,
            loss_bad: 0.5,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("p_enter_bad", self.p_enter_bad),
            ("p_exit_bad", self.p_exit_bad),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of [0, 1]: {p}");
        }
    }
}

/// Configuration of a directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Drop-tail queue capacity in bytes.
    pub queue_capacity: usize,
    /// Independent per-packet random loss probability in `[0, 1)`.
    pub random_loss: f64,
    /// Uniform random extra propagation delay in `[0, jitter]` per packet.
    /// Non-zero jitter lets packets overtake each other (reordering), which
    /// UDP exposes to the application while TCP/UDT repair it.
    pub jitter: Duration,
    /// Optional policer applied to UDP-family packets only.
    pub udp_policer: Option<PolicerConfig>,
    /// Optional Gilbert–Elliott burst-loss model, applied in addition to
    /// (and independently of) `random_loss`.
    pub burst_loss: Option<GeConfig>,
}

impl LinkConfig {
    /// A clean link with the given bandwidth (bytes/s) and one-way delay.
    ///
    /// Queue capacity defaults to one bandwidth-delay product, but at least
    /// 256 KiB (a typical shallow router buffer).
    #[must_use]
    pub fn new(bandwidth: f64, delay: Duration) -> Self {
        let bdp = (bandwidth * delay.as_secs_f64()) as usize;
        LinkConfig {
            bandwidth,
            delay,
            queue_capacity: bdp.max(256 * 1024),
            random_loss: 0.0,
            jitter: Duration::ZERO,
            udp_policer: None,
            burst_loss: None,
        }
    }

    /// Sets the drop-tail queue capacity in bytes.
    #[must_use]
    pub fn queue_capacity(mut self, bytes: usize) -> Self {
        self.queue_capacity = bytes;
        self
    }

    /// Sets the independent per-packet random loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    #[must_use]
    pub fn random_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.random_loss = p;
        self
    }

    /// Sets the per-packet jitter bound.
    #[must_use]
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Installs a UDP-family policer.
    #[must_use]
    pub fn udp_policer(mut self, cfg: PolicerConfig) -> Self {
        self.udp_policer = Some(cfg);
        self
    }

    /// Installs a Gilbert–Elliott burst-loss model.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn burst_loss(mut self, cfg: GeConfig) -> Self {
        cfg.validate();
        self.burst_loss = Some(cfg);
        self
    }
}

/// Identifies a link within a [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index of this link — stable for telemetry labelling.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a `LinkId` from [`LinkId::index`] — for scripting fault
    /// plans against a known topology. The caller is responsible for the
    /// index referring to a link that exists in the target
    /// [`Network`](crate::network::Network).
    #[must_use]
    pub const fn from_index(index: u32) -> LinkId {
        LinkId(index)
    }
}

/// Why a link refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Drop-tail queue overflow.
    QueueOverflow,
    /// Random (corruption) loss.
    RandomLoss,
    /// UDP policer out of tokens.
    Policed,
    /// The link is administratively down (outage injection).
    LinkDown,
    /// The link was severed (carrier loss) while the packet was in flight
    /// or serialized in the queue.
    Severed,
    /// Lost in the bad state of the Gilbert–Elliott burst model.
    BurstLoss,
}

impl DropReason {
    /// Stable snake_case label for telemetry output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DropReason::QueueOverflow => "queue_overflow",
            DropReason::RandomLoss => "random_loss",
            DropReason::Policed => "policed",
            DropReason::LinkDown => "link_down",
            DropReason::Severed => "severed",
            DropReason::BurstLoss => "burst_loss",
        }
    }

    /// All reasons, in a stable order — used to export per-reason counters.
    pub const ALL: [DropReason; 6] = [
        DropReason::QueueOverflow,
        DropReason::RandomLoss,
        DropReason::Policed,
        DropReason::LinkDown,
        DropReason::Severed,
        DropReason::BurstLoss,
    ];
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The packet will arrive at the far end at this instant.
    DeliverAt(SimTime),
    /// The packet was dropped.
    Dropped(DropReason),
}

#[derive(Debug)]
struct TokenBucket {
    cfg: PolicerConfig,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    fn allow(&mut self, now: SimTime, size: f64) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.cfg.rate).min(self.cfg.burst);
        self.last = now;
        if self.tokens >= size {
            self.tokens -= size;
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
/// Cumulative counters of a link's activity.
pub struct LinkStats {
    /// Packets fully transmitted (scheduled for delivery).
    pub delivered: u64,
    /// Bytes fully transmitted.
    pub delivered_bytes: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Packets dropped by random loss.
    pub dropped_loss: u64,
    /// Packets dropped by the UDP policer.
    pub dropped_policer: u64,
    /// Packets dropped while the link was down.
    pub dropped_down: u64,
    /// Packets killed in flight (or in the queue backlog) by a sever.
    pub dropped_severed: u64,
    /// Packets lost in the Gilbert–Elliott bad state.
    pub dropped_burst: u64,
}

impl LinkStats {
    /// The counter for a given drop reason.
    #[must_use]
    pub fn dropped(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::QueueOverflow => self.dropped_queue,
            DropReason::RandomLoss => self.dropped_loss,
            DropReason::Policed => self.dropped_policer,
            DropReason::LinkDown => self.dropped_down,
            DropReason::Severed => self.dropped_severed,
            DropReason::BurstLoss => self.dropped_burst,
        }
    }
}

#[derive(Debug)]
struct LinkInner {
    cfg: LinkConfig,
    up: bool,
    busy_until: SimTime,
    policer: Option<TokenBucket>,
    rng: RngStream,
    stats: LinkStats,
    /// Gilbert–Elliott state: `true` while in the bad (bursty-loss) state.
    ge_bad: bool,
    /// Bumped on every [`Link::sever`]; packets in flight carry the epoch
    /// they were transmitted under and die on arrival if it changed.
    epoch: u64,
    /// Transient extra propagation delay (latency-spike injection).
    extra_delay: Duration,
}

/// A directed link. Construct through
/// [`Network::add_link`](crate::network::Network::add_link).
#[derive(Debug)]
pub struct Link {
    inner: Mutex<LinkInner>,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, rng: RngStream) -> Self {
        let policer = cfg.udp_policer.map(|p| TokenBucket {
            cfg: p,
            tokens: p.burst,
            last: SimTime::ZERO,
        });
        Link {
            inner: Mutex::new(LinkInner {
                cfg,
                up: true,
                busy_until: SimTime::ZERO,
                policer,
                rng,
                stats: LinkStats::default(),
                ge_bad: false,
                epoch: 0,
                extra_delay: Duration::ZERO,
            }),
        }
    }

    /// Offers a packet of `wire_size` bytes to the link at the current
    /// simulation time and returns when (and whether) it arrives at the far
    /// end.
    pub fn transmit(&self, sim: &Sim, wire_size: usize, udp_family: bool) -> Verdict {
        let now = sim.now();
        let mut inner = self.inner.lock();
        let size = wire_size as f64;

        if !inner.up {
            inner.stats.dropped_down += 1;
            return Verdict::Dropped(DropReason::LinkDown);
        }

        if udp_family {
            if let Some(bucket) = inner.policer.as_mut() {
                if !bucket.allow(now, size) {
                    inner.stats.dropped_policer += 1;
                    return Verdict::Dropped(DropReason::Policed);
                }
            }
        }

        // Analytic drop-tail queue: occupancy is the backlog still to be
        // serialized.
        let backlog_secs = inner.busy_until.duration_since(now).as_secs_f64();
        let backlog_bytes = backlog_secs * inner.cfg.bandwidth;
        if backlog_bytes + size > inner.cfg.queue_capacity as f64 {
            inner.stats.dropped_queue += 1;
            return Verdict::Dropped(DropReason::QueueOverflow);
        }

        if inner.cfg.random_loss > 0.0 {
            let roll: f64 = inner.rng.gen();
            if roll < inner.cfg.random_loss {
                // The packet still occupies the wire before being corrupted.
                let tx = Duration::from_secs_f64(size / inner.cfg.bandwidth);
                inner.busy_until = inner.busy_until.max(now) + tx;
                inner.stats.dropped_loss += 1;
                return Verdict::Dropped(DropReason::RandomLoss);
            }
        }

        if let Some(ge) = inner.cfg.burst_loss {
            // Advance the two-state machine, then roll against the loss
            // probability of the state we landed in.
            let flip: f64 = inner.rng.gen();
            if inner.ge_bad {
                if flip < ge.p_exit_bad {
                    inner.ge_bad = false;
                }
            } else if flip < ge.p_enter_bad {
                inner.ge_bad = true;
            }
            let loss = if inner.ge_bad { ge.loss_bad } else { ge.loss_good };
            if loss > 0.0 {
                let roll: f64 = inner.rng.gen();
                if roll < loss {
                    // Like random loss, a burst-lost packet occupies the wire.
                    let tx = Duration::from_secs_f64(size / inner.cfg.bandwidth);
                    inner.busy_until = inner.busy_until.max(now) + tx;
                    inner.stats.dropped_burst += 1;
                    return Verdict::Dropped(DropReason::BurstLoss);
                }
            }
        }

        let tx = Duration::from_secs_f64(size / inner.cfg.bandwidth);
        let start = inner.busy_until.max(now);
        inner.busy_until = start + tx;
        let mut arrival = inner.busy_until + inner.cfg.delay + inner.extra_delay;
        if !inner.cfg.jitter.is_zero() {
            let j: f64 = inner.rng.gen();
            arrival += Duration::from_secs_f64(j * inner.cfg.jitter.as_secs_f64());
        }
        inner.stats.delivered += 1;
        inner.stats.delivered_bytes += wire_size as u64;
        Verdict::DeliverAt(arrival)
    }

    /// Snapshot of the link's counters.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.inner.lock().stats
    }

    /// The link's configuration.
    #[must_use]
    pub fn config(&self) -> LinkConfig {
        self.inner.lock().cfg.clone()
    }

    /// The configured queue capacity in bytes, without cloning the whole
    /// [`LinkConfig`] (the per-packet telemetry path reads only this field).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.inner.lock().cfg.queue_capacity
    }

    /// Injects or clears an outage: while down, every offered packet is
    /// dropped. Packets already serialized onto the wire still arrive
    /// (the failure is at the link entry, like an unplugged uplink).
    pub fn set_up(&self, up: bool) {
        self.inner.lock().up = up;
    }

    /// Whether the link is currently up.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.inner.lock().up
    }

    /// Severs the link: carrier loss rather than an unplugged uplink.
    ///
    /// In addition to taking the link down like `set_up(false)`, the
    /// serialized backlog is cleared and packets already in flight are
    /// killed: the sever epoch is bumped, and the network drops any packet
    /// stamped with an older epoch on arrival, counting it under
    /// [`DropReason::Severed`]. Restore with `set_up(true)`.
    pub fn sever(&self) {
        let mut inner = self.inner.lock();
        inner.up = false;
        inner.busy_until = SimTime::ZERO;
        inner.epoch += 1;
    }

    /// The current sever epoch (see [`Link::sever`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Counts a packet killed in flight by a sever (called by the network
    /// on arrival when the epoch check fails).
    pub(crate) fn note_severed(&self) {
        self.inner.lock().stats.dropped_severed += 1;
    }

    /// Installs or clears a transient extra propagation delay (latency
    /// spike). Applies to packets transmitted from now on.
    pub fn set_extra_delay(&self, extra: Duration) {
        self.inner.lock().extra_delay = extra;
    }

    /// Installs or clears the Gilbert–Elliott burst-loss model at runtime.
    /// Clearing also resets the state machine to the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn set_burst_loss(&self, cfg: Option<GeConfig>) {
        if let Some(ge) = cfg {
            ge.validate();
        }
        let mut inner = self.inner.lock();
        inner.cfg.burst_loss = cfg;
        if cfg.is_none() {
            inner.ge_bad = false;
        }
    }

    /// Current queue backlog in bytes (bytes not yet serialized).
    #[must_use]
    pub fn backlog_bytes(&self, now: SimTime) -> f64 {
        let inner = self.inner.lock();
        inner.busy_until.duration_since(now).as_secs_f64() * inner.cfg.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSource;

    fn mk(cfg: LinkConfig) -> (Sim, Link) {
        let sim = Sim::new(1);
        let link = Link::new(cfg, SeedSource::new(1).stream("test-link"));
        (sim, link)
    }

    #[test]
    fn serialization_plus_propagation() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::from_millis(10)));
        // 1000 B at 1 MB/s = 1 ms serialization + 10 ms propagation.
        match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => {
                assert_eq!(t, SimTime::from_nanos(11_000_000));
            }
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(10_000));
        let t1 = match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => t,
            v => panic!("{v:?}"),
        };
        let t2 = match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => t,
            v => panic!("{v:?}"),
        };
        assert!(t2 > t1);
        assert_eq!(t2.duration_since(t1), Duration::from_millis(1));
        assert!(link.backlog_bytes(sim.now()) > 0.0);
    }

    #[test]
    fn queue_overflow_drops() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(2500));
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
        // Third packet exceeds the 2500 B queue.
        assert_eq!(
            link.transmit(&sim, 1000, false),
            Verdict::Dropped(DropReason::QueueOverflow)
        );
        assert_eq!(link.stats().dropped_queue, 1);
        assert_eq!(link.stats().delivered, 2);
    }

    #[test]
    fn queue_drains_over_time() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(1500));
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
        assert!(matches!(
            link.transmit(&sim, 1000, false),
            Verdict::Dropped(DropReason::QueueOverflow)
        ));
        sim.run_until(SimTime::from_secs(1)); // queue empties
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
    }

    #[test]
    fn random_loss_rate_approximate() {
        let (sim, link) = mk(LinkConfig::new(1e12, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .random_loss(0.1));
        let mut dropped = 0;
        for _ in 0..10_000 {
            if matches!(link.transmit(&sim, 100, false), Verdict::Dropped(_)) {
                dropped += 1;
            }
        }
        assert!((800..1200).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn policer_only_hits_udp_family() {
        let cfg = LinkConfig::new(100e6, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .udp_policer(PolicerConfig {
                rate: 1000.0,
                burst: 1000.0,
            });
        let (sim, link) = mk(cfg);
        // Two 600 B UDP packets: first drains the bucket, second is policed.
        assert!(matches!(link.transmit(&sim, 600, true), Verdict::DeliverAt(_)));
        assert_eq!(
            link.transmit(&sim, 600, true),
            Verdict::Dropped(DropReason::Policed)
        );
        // TCP is unaffected.
        assert!(matches!(link.transmit(&sim, 600, false), Verdict::DeliverAt(_)));
        assert_eq!(link.stats().dropped_policer, 1);
    }

    #[test]
    fn policer_refills_over_time() {
        let cfg = LinkConfig::new(100e6, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .udp_policer(PolicerConfig {
                rate: 1000.0,
                burst: 1000.0,
            });
        let (sim, link) = mk(cfg);
        assert!(matches!(link.transmit(&sim, 1000, true), Verdict::DeliverAt(_)));
        assert!(matches!(link.transmit(&sim, 1000, true), Verdict::Dropped(_)));
        sim.run_until(SimTime::from_secs(2));
        assert!(matches!(link.transmit(&sim, 1000, true), Verdict::DeliverAt(_)));
    }

    #[test]
    fn default_queue_is_at_least_bdp() {
        let cfg = LinkConfig::new(125e6, Duration::from_millis(100));
        assert!(cfg.queue_capacity >= 12_500_000);
        let small = LinkConfig::new(1e6, Duration::from_millis(1));
        assert_eq!(small.queue_capacity, 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_loss() {
        let _ = LinkConfig::new(1e6, Duration::ZERO).random_loss(1.5);
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let (sim, link) = mk(LinkConfig::new(1e9, Duration::from_millis(10))
            .jitter(Duration::from_millis(5)));
        let mut times = Vec::new();
        for _ in 0..50 {
            match link.transmit(&sim, 100, true) {
                Verdict::DeliverAt(t) => times.push(t),
                v => panic!("{v:?}"),
            }
        }
        // With near-zero serialization but 0-5 ms jitter, arrivals must not
        // be monotone (reordering is possible).
        let sorted = times.windows(2).all(|w| w[0] <= w[1]);
        assert!(!sorted, "jitter should reorder back-to-back packets");
        let base = SimTime::from_millis(10);
        assert!(times.iter().all(|&t| t >= base));
        assert!(times.iter().all(|&t| t <= base + Duration::from_millis(6)));
    }

    #[test]
    fn outage_drops_everything_until_restored() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO));
        assert!(link.is_up());
        link.set_up(false);
        assert!(!link.is_up());
        for _ in 0..5 {
            assert_eq!(
                link.transmit(&sim, 100, false),
                Verdict::Dropped(DropReason::LinkDown)
            );
        }
        assert_eq!(link.stats().dropped_down, 5);
        link.set_up(true);
        assert!(matches!(link.transmit(&sim, 100, false), Verdict::DeliverAt(_)));
    }

    #[test]
    fn sever_clears_backlog_and_bumps_epoch() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(10_000));
        assert!(matches!(link.transmit(&sim, 5000, false), Verdict::DeliverAt(_)));
        assert!(link.backlog_bytes(sim.now()) > 0.0);
        let before = link.epoch();
        link.sever();
        assert!(!link.is_up());
        assert_eq!(link.epoch(), before + 1);
        assert_eq!(link.backlog_bytes(sim.now()), 0.0);
        link.set_up(true);
        // Backlog was discarded: the next packet serializes immediately.
        match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => assert_eq!(t, SimTime::from_millis(1)),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn burst_loss_drops_in_bursts() {
        let (sim, link) = mk(LinkConfig::new(1e12, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .burst_loss(GeConfig {
                p_enter_bad: 0.02,
                p_exit_bad: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            }));
        let mut outcomes = Vec::new();
        for _ in 0..20_000 {
            outcomes.push(matches!(
                link.transmit(&sim, 100, false),
                Verdict::Dropped(DropReason::BurstLoss)
            ));
        }
        let dropped = outcomes.iter().filter(|&&d| d).count();
        // Steady-state bad occupancy = p_enter / (p_enter + p_exit) ≈ 9%.
        assert!((1000..3000).contains(&dropped), "dropped={dropped}");
        // Correlation: a drop is followed by another drop far more often
        // than the unconditional rate (bursts, not independent loss).
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        let uncond = dropped as f64 / outcomes.len() as f64;
        assert!(cond > 2.0 * uncond, "cond={cond:.3} uncond={uncond:.3}");
        assert_eq!(link.stats().dropped_burst as usize, dropped);
        // Clearing resets to the good state.
        link.set_burst_loss(None);
        assert!(matches!(link.transmit(&sim, 100, false), Verdict::DeliverAt(_)));
    }

    #[test]
    fn extra_delay_shifts_arrivals() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::from_millis(10)));
        link.set_extra_delay(Duration::from_millis(40));
        match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => assert_eq!(t, SimTime::from_millis(51)),
            v => panic!("{v:?}"),
        }
        link.set_extra_delay(Duration::ZERO);
        sim.run_until(SimTime::from_secs(1));
        match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => {
                assert_eq!(t, SimTime::from_secs(1) + Duration::from_millis(11));
            }
            v => panic!("{v:?}"),
        }
    }
}
