//! Directed link model: bandwidth, propagation delay, drop-tail queue,
//! random loss, and an optional UDP token-bucket policer.
//!
//! The queue is modelled analytically: a link keeps a `busy_until` horizon;
//! a packet's transmission starts at `max(now, busy_until)` and the current
//! queue occupancy in bytes is `(busy_until - now) · bandwidth`. This yields
//! exact FIFO behaviour and correct bandwidth sharing between flows without
//! per-byte events.
//!
//! The policer models Amazon EC2's UDP rate limiting (~10 MB/s), which the
//! paper identifies as the reason UDT plateaus near 10 MB/s in all of its
//! wide-area experiments.

use std::time::Duration;

use parking_lot::Mutex;
use rand::Rng;

use crate::engine::Sim;
use crate::rng::RngStream;
use crate::time::SimTime;

/// Token-bucket configuration for UDP-family policing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicerConfig {
    /// Sustained rate in bytes per second.
    pub rate: f64,
    /// Bucket depth in bytes.
    pub burst: f64,
}

impl PolicerConfig {
    /// EC2-like policer: 10 MB/s sustained, 1 MB burst.
    #[must_use]
    pub const fn ec2_udp() -> Self {
        PolicerConfig {
            rate: 10e6,
            burst: 1e6,
        }
    }
}

/// Configuration of a directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Drop-tail queue capacity in bytes.
    pub queue_capacity: usize,
    /// Independent per-packet random loss probability in `[0, 1)`.
    pub random_loss: f64,
    /// Uniform random extra propagation delay in `[0, jitter]` per packet.
    /// Non-zero jitter lets packets overtake each other (reordering), which
    /// UDP exposes to the application while TCP/UDT repair it.
    pub jitter: Duration,
    /// Optional policer applied to UDP-family packets only.
    pub udp_policer: Option<PolicerConfig>,
}

impl LinkConfig {
    /// A clean link with the given bandwidth (bytes/s) and one-way delay.
    ///
    /// Queue capacity defaults to one bandwidth-delay product, but at least
    /// 256 KiB (a typical shallow router buffer).
    #[must_use]
    pub fn new(bandwidth: f64, delay: Duration) -> Self {
        let bdp = (bandwidth * delay.as_secs_f64()) as usize;
        LinkConfig {
            bandwidth,
            delay,
            queue_capacity: bdp.max(256 * 1024),
            random_loss: 0.0,
            jitter: Duration::ZERO,
            udp_policer: None,
        }
    }

    /// Sets the drop-tail queue capacity in bytes.
    #[must_use]
    pub fn queue_capacity(mut self, bytes: usize) -> Self {
        self.queue_capacity = bytes;
        self
    }

    /// Sets the independent per-packet random loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    #[must_use]
    pub fn random_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.random_loss = p;
        self
    }

    /// Sets the per-packet jitter bound.
    #[must_use]
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Installs a UDP-family policer.
    #[must_use]
    pub fn udp_policer(mut self, cfg: PolicerConfig) -> Self {
        self.udp_policer = Some(cfg);
        self
    }
}

/// Identifies a link within a [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) u32);

/// Why a link refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Drop-tail queue overflow.
    QueueOverflow,
    /// Random (corruption) loss.
    RandomLoss,
    /// UDP policer out of tokens.
    Policed,
    /// The link is administratively down (outage injection).
    LinkDown,
}

impl DropReason {
    /// Stable snake_case label for telemetry output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DropReason::QueueOverflow => "queue_overflow",
            DropReason::RandomLoss => "random_loss",
            DropReason::Policed => "policed",
            DropReason::LinkDown => "link_down",
        }
    }
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The packet will arrive at the far end at this instant.
    DeliverAt(SimTime),
    /// The packet was dropped.
    Dropped(DropReason),
}

#[derive(Debug)]
struct TokenBucket {
    cfg: PolicerConfig,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    fn allow(&mut self, now: SimTime, size: f64) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.cfg.rate).min(self.cfg.burst);
        self.last = now;
        if self.tokens >= size {
            self.tokens -= size;
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
/// Cumulative counters of a link's activity.
pub struct LinkStats {
    /// Packets fully transmitted (scheduled for delivery).
    pub delivered: u64,
    /// Bytes fully transmitted.
    pub delivered_bytes: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Packets dropped by random loss.
    pub dropped_loss: u64,
    /// Packets dropped by the UDP policer.
    pub dropped_policer: u64,
    /// Packets dropped while the link was down.
    pub dropped_down: u64,
}

#[derive(Debug)]
struct LinkInner {
    cfg: LinkConfig,
    up: bool,
    busy_until: SimTime,
    policer: Option<TokenBucket>,
    rng: RngStream,
    stats: LinkStats,
}

/// A directed link. Construct through
/// [`Network::add_link`](crate::network::Network::add_link).
#[derive(Debug)]
pub struct Link {
    inner: Mutex<LinkInner>,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, rng: RngStream) -> Self {
        let policer = cfg.udp_policer.map(|p| TokenBucket {
            cfg: p,
            tokens: p.burst,
            last: SimTime::ZERO,
        });
        Link {
            inner: Mutex::new(LinkInner {
                cfg,
                up: true,
                busy_until: SimTime::ZERO,
                policer,
                rng,
                stats: LinkStats::default(),
            }),
        }
    }

    /// Offers a packet of `wire_size` bytes to the link at the current
    /// simulation time and returns when (and whether) it arrives at the far
    /// end.
    pub fn transmit(&self, sim: &Sim, wire_size: usize, udp_family: bool) -> Verdict {
        let now = sim.now();
        let mut inner = self.inner.lock();
        let size = wire_size as f64;

        if !inner.up {
            inner.stats.dropped_down += 1;
            return Verdict::Dropped(DropReason::LinkDown);
        }

        if udp_family {
            if let Some(bucket) = inner.policer.as_mut() {
                if !bucket.allow(now, size) {
                    inner.stats.dropped_policer += 1;
                    return Verdict::Dropped(DropReason::Policed);
                }
            }
        }

        // Analytic drop-tail queue: occupancy is the backlog still to be
        // serialized.
        let backlog_secs = inner.busy_until.duration_since(now).as_secs_f64();
        let backlog_bytes = backlog_secs * inner.cfg.bandwidth;
        if backlog_bytes + size > inner.cfg.queue_capacity as f64 {
            inner.stats.dropped_queue += 1;
            return Verdict::Dropped(DropReason::QueueOverflow);
        }

        if inner.cfg.random_loss > 0.0 {
            let roll: f64 = inner.rng.gen();
            if roll < inner.cfg.random_loss {
                // The packet still occupies the wire before being corrupted.
                let tx = Duration::from_secs_f64(size / inner.cfg.bandwidth);
                inner.busy_until = inner.busy_until.max(now) + tx;
                inner.stats.dropped_loss += 1;
                return Verdict::Dropped(DropReason::RandomLoss);
            }
        }

        let tx = Duration::from_secs_f64(size / inner.cfg.bandwidth);
        let start = inner.busy_until.max(now);
        inner.busy_until = start + tx;
        let mut arrival = inner.busy_until + inner.cfg.delay;
        if !inner.cfg.jitter.is_zero() {
            let j: f64 = inner.rng.gen();
            arrival += Duration::from_secs_f64(j * inner.cfg.jitter.as_secs_f64());
        }
        inner.stats.delivered += 1;
        inner.stats.delivered_bytes += wire_size as u64;
        Verdict::DeliverAt(arrival)
    }

    /// Snapshot of the link's counters.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.inner.lock().stats
    }

    /// The link's configuration.
    #[must_use]
    pub fn config(&self) -> LinkConfig {
        self.inner.lock().cfg.clone()
    }

    /// Injects or clears an outage: while down, every offered packet is
    /// dropped. Packets already serialized onto the wire still arrive
    /// (the failure is at the link entry, like an unplugged uplink).
    pub fn set_up(&self, up: bool) {
        self.inner.lock().up = up;
    }

    /// Whether the link is currently up.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.inner.lock().up
    }

    /// Current queue backlog in bytes (bytes not yet serialized).
    #[must_use]
    pub fn backlog_bytes(&self, now: SimTime) -> f64 {
        let inner = self.inner.lock();
        inner.busy_until.duration_since(now).as_secs_f64() * inner.cfg.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSource;

    fn mk(cfg: LinkConfig) -> (Sim, Link) {
        let sim = Sim::new(1);
        let link = Link::new(cfg, SeedSource::new(1).stream("test-link"));
        (sim, link)
    }

    #[test]
    fn serialization_plus_propagation() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::from_millis(10)));
        // 1000 B at 1 MB/s = 1 ms serialization + 10 ms propagation.
        match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => {
                assert_eq!(t, SimTime::from_nanos(11_000_000));
            }
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(10_000));
        let t1 = match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => t,
            v => panic!("{v:?}"),
        };
        let t2 = match link.transmit(&sim, 1000, false) {
            Verdict::DeliverAt(t) => t,
            v => panic!("{v:?}"),
        };
        assert!(t2 > t1);
        assert_eq!(t2.duration_since(t1), Duration::from_millis(1));
        assert!(link.backlog_bytes(sim.now()) > 0.0);
    }

    #[test]
    fn queue_overflow_drops() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(2500));
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
        // Third packet exceeds the 2500 B queue.
        assert_eq!(
            link.transmit(&sim, 1000, false),
            Verdict::Dropped(DropReason::QueueOverflow)
        );
        assert_eq!(link.stats().dropped_queue, 1);
        assert_eq!(link.stats().delivered, 2);
    }

    #[test]
    fn queue_drains_over_time() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO).queue_capacity(1500));
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
        assert!(matches!(
            link.transmit(&sim, 1000, false),
            Verdict::Dropped(DropReason::QueueOverflow)
        ));
        sim.run_until(SimTime::from_secs(1)); // queue empties
        assert!(matches!(link.transmit(&sim, 1000, false), Verdict::DeliverAt(_)));
    }

    #[test]
    fn random_loss_rate_approximate() {
        let (sim, link) = mk(LinkConfig::new(1e12, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .random_loss(0.1));
        let mut dropped = 0;
        for _ in 0..10_000 {
            if matches!(link.transmit(&sim, 100, false), Verdict::Dropped(_)) {
                dropped += 1;
            }
        }
        assert!((800..1200).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn policer_only_hits_udp_family() {
        let cfg = LinkConfig::new(100e6, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .udp_policer(PolicerConfig {
                rate: 1000.0,
                burst: 1000.0,
            });
        let (sim, link) = mk(cfg);
        // Two 600 B UDP packets: first drains the bucket, second is policed.
        assert!(matches!(link.transmit(&sim, 600, true), Verdict::DeliverAt(_)));
        assert_eq!(
            link.transmit(&sim, 600, true),
            Verdict::Dropped(DropReason::Policed)
        );
        // TCP is unaffected.
        assert!(matches!(link.transmit(&sim, 600, false), Verdict::DeliverAt(_)));
        assert_eq!(link.stats().dropped_policer, 1);
    }

    #[test]
    fn policer_refills_over_time() {
        let cfg = LinkConfig::new(100e6, Duration::ZERO)
            .queue_capacity(usize::MAX / 2)
            .udp_policer(PolicerConfig {
                rate: 1000.0,
                burst: 1000.0,
            });
        let (sim, link) = mk(cfg);
        assert!(matches!(link.transmit(&sim, 1000, true), Verdict::DeliverAt(_)));
        assert!(matches!(link.transmit(&sim, 1000, true), Verdict::Dropped(_)));
        sim.run_until(SimTime::from_secs(2));
        assert!(matches!(link.transmit(&sim, 1000, true), Verdict::DeliverAt(_)));
    }

    #[test]
    fn default_queue_is_at_least_bdp() {
        let cfg = LinkConfig::new(125e6, Duration::from_millis(100));
        assert!(cfg.queue_capacity >= 12_500_000);
        let small = LinkConfig::new(1e6, Duration::from_millis(1));
        assert_eq!(small.queue_capacity, 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_loss() {
        let _ = LinkConfig::new(1e6, Duration::ZERO).random_loss(1.5);
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let (sim, link) = mk(LinkConfig::new(1e9, Duration::from_millis(10))
            .jitter(Duration::from_millis(5)));
        let mut times = Vec::new();
        for _ in 0..50 {
            match link.transmit(&sim, 100, true) {
                Verdict::DeliverAt(t) => times.push(t),
                v => panic!("{v:?}"),
            }
        }
        // With near-zero serialization but 0-5 ms jitter, arrivals must not
        // be monotone (reordering is possible).
        let sorted = times.windows(2).all(|w| w[0] <= w[1]);
        assert!(!sorted, "jitter should reorder back-to-back packets");
        let base = SimTime::from_millis(10);
        assert!(times.iter().all(|&t| t >= base));
        assert!(times.iter().all(|&t| t <= base + Duration::from_millis(6)));
    }

    #[test]
    fn outage_drops_everything_until_restored() {
        let (sim, link) = mk(LinkConfig::new(1e6, Duration::ZERO));
        assert!(link.is_up());
        link.set_up(false);
        assert!(!link.is_up());
        for _ in 0..5 {
            assert_eq!(
                link.transmit(&sim, 100, false),
                Verdict::Dropped(DropReason::LinkDown)
            );
        }
        assert_eq!(link.stats().dropped_down, 5);
        link.set_up(true);
        assert!(matches!(link.transmit(&sim, 100, false), Verdict::DeliverAt(_)));
    }
}
