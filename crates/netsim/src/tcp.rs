//! Packet-level simulated TCP with pluggable congestion control (Reno with
//! NewReno partial-ACK recovery by default; CUBIC and BBR via
//! [`crate::cc`]).
//!
//! Implements the mechanisms responsible for TCP's behaviour in the paper's
//! experiments: slow start and AIMD congestion avoidance, fast
//! retransmit/fast recovery on triple duplicate ACKs, retransmission
//! timeouts with exponential backoff (RFC 6298-style RTT estimation via
//! timestamp echo), receiver flow control (advertised window bounded by the
//! receive buffer), and delayed ACKs. Window/rate evolution is delegated to
//! the flow's [`CongestionController`] ([`TcpConfig::cc`] selects it);
//! rate-based controllers pace data segments on a per-flow virtual-time
//! pacer timer.
//!
//! On clean low-RTT paths TCP fills the link; on high bandwidth-delay
//! product paths with random loss its average window follows the well-known
//! `MSS/(RTT·√p)` law, producing the sharp throughput drop-off of the
//! paper's Figure 9.
//!
//! # Flow storage
//!
//! All per-connection state lives in one [`Slab`] inside the per-network
//! [`TcpStack`]; applications, packet demux, and timers address flows by
//! 8-byte generation-checked [`Handle`]s instead of `Arc`s. Timer events
//! carry a packed `kind | slot | generation` token and fire on the stack
//! itself through [`EventTarget`], so neither path allocates or touches a
//! reference count. See `DESIGN.md` §12 for the rationale.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use kmsg_telemetry::{EventKind, Recorder, SpanKind};
use parking_lot::Mutex;

use crate::cc::{self, CcConfig, CcCtx, CongestionController};
use crate::engine::{EventTarget, Sim};
use crate::iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
use crate::memscope;
use crate::network::{BindError, Network, PacketSink, WeakNetwork};
use crate::packet::{Endpoint, NodeId, Packet, PacketBody, WireProtocol};
use crate::slab::{FxHashMap, Handle, Slab};
use crate::time::SimTime;
use crate::timerwheel::StackTimerWheel;

/// TCP tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment payload in bytes.
    pub mss: usize,
    /// Send buffer capacity (unsent + unacknowledged bytes).
    pub send_buf: usize,
    /// Receive buffer capacity; bounds the advertised window.
    pub recv_buf: usize,
    /// Initial congestion window, in segments.
    pub initial_cwnd: usize,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Duration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: Duration,
    /// SYN retransmission attempts before the connect fails.
    pub syn_retries: u32,
    /// Consecutive retransmission timeouts on an established connection
    /// before the stack gives up and closes with `CloseReason::Timeout`
    /// (Linux `tcp_retries2` analog). Lower values make channel death — and
    /// thus middleware supervision — observable within short outages.
    pub max_consecutive_timeouts: u32,
    /// Delayed-ACK timer.
    pub delack_timeout: Duration,
    /// Fire `on_writable` on every acknowledgement that frees send-buffer
    /// space (not just when a blocked writer can resume). Lets middleware
    /// track delivery progress for acked-based notifications.
    pub ack_progress_events: bool,
    /// Congestion-controller selection and tuning (Reno, CUBIC, or BBR);
    /// part of config interning, so flows sharing a controller variant
    /// share one table entry.
    pub cc: CcConfig,
    /// Test-only fault: skip the multiplicative decrease (and its
    /// `fast_recovery` telemetry event) when receiver-reported holes signal
    /// a fresh loss episode, while still fast-retransmitting the holes.
    /// This breaks Reno legality — fast retransmits appear without any
    /// recorded loss signal — and exists solely so `kmsg-oracle` tests can
    /// prove the TCP oracle catches it. Never enable outside tests.
    #[doc(hidden)]
    pub buggy_no_fast_recovery: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            send_buf: 4 * 1024 * 1024,
            recv_buf: 4 * 1024 * 1024,
            initial_cwnd: 10,
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
            syn_retries: 6,
            max_consecutive_timeouts: 15,
            delack_timeout: Duration::from_millis(40),
            ack_progress_events: true,
            cc: CcConfig::default(),
            buggy_no_fast_recovery: false,
        }
    }
}

/// TCP segment control flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegFlags {
    /// Synchronize: part of the connection handshake.
    pub syn: bool,
    /// The `ack` field is valid.
    pub ack: bool,
    /// Sender has no more data.
    pub fin: bool,
}

/// A TCP segment on the wire.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// First sequence number covered by this segment.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected byte).
    pub ack: u64,
    /// Control flags.
    pub flags: SegFlags,
    /// Advertised receive window in bytes.
    pub wnd: u64,
    /// Sender timestamp (for RTT estimation via echo).
    pub ts: SimTime,
    /// Echoed peer timestamp.
    pub ts_echo: Option<SimTime>,
    /// SACK-style hole report: `[from, to)` byte ranges the receiver is
    /// missing below its highest out-of-order data (capped at 16 ranges).
    pub holes: Vec<(u64, u64)>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Sequence space consumed by this segment (payload + SYN/FIN flags).
    #[must_use]
    pub fn seq_len(&self) -> u64 {
        self.payload.len() as u64
            + u64::from(self.flags.syn)
            + u64::from(self.flags.fin)
    }
}

/// Per-connection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpConnStats {
    /// Payload bytes accepted from the application.
    pub bytes_sent: u64,
    /// Payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Segments retransmitted (fast retransmit or timeout).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast-recovery episodes entered.
    pub fast_recoveries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SynSent,
    SynRcvd,
    Established,
    Closed,
}

#[derive(Debug)]
struct SentSeg {
    payload: Bytes,
    syn: bool,
    fin: bool,
    retransmitted: bool,
    last_rexmit: Option<SimTime>,
    /// Raw `seg` causal-span id covering first transmission to cumulative
    /// ack (0 for control segments or while tracing is off).
    span: u64,
}

/// `seg` span closed clean: acknowledged without any retransmission.
const SEG_ACKED: u64 = 0;
/// `seg` span closed after at least one retransmission.
const SEG_REXMIT: u64 = 1;
/// `seg` span closed because the flow died with the segment unacked.
const SEG_ABORTED: u64 = 2;

/// `seg`-span correlation key: connection id over the low 32 bits of the
/// sequence number, so `TcpRetransmit { conn, seq }` events join back to
/// the covering span.
fn seg_span_key(conn: u64, seq: u64) -> u64 {
    (conn << 32) | (seq & 0xffff_ffff)
}

/// Opens a `seg` span at a data segment's first transmission; returns the
/// raw id (0 while the recorder is disabled — one relaxed load).
fn open_seg_span(rec: &Recorder, now: SimTime, conn: u64, seq: u64) -> u64 {
    if !rec.is_enabled() {
        return 0;
    }
    rec.tracer()
        .open_root(now.as_nanos(), SpanKind::Seg, seg_span_key(conn, seq))
        .raw()
}

/// Closes a `seg` span; no-op for 0 (never opened).
fn close_seg_span(rec: &Recorder, now: SimTime, span: u64, key: u64) {
    if span != 0 {
        rec.record(now.as_nanos(), EventKind::SpanClose { span, key });
    }
}

/// Closes every outstanding `seg` span on a dying flow (timeout death,
/// peer-initiated close with data in flight, app dropping the handle).
fn close_all_seg_spans(flow: &mut Flow, rec: &Recorder, now: SimTime) {
    for seg in flow.sent.values_mut() {
        let span = seg.span;
        seg.span = 0;
        close_seg_span(rec, now, span, SEG_ABORTED);
    }
}

/// Packs an endpoint into a dense map key: node index in the high bits,
/// port in the low 16.
fn ep_key(e: Endpoint) -> u64 {
    (u64::from(e.node.index()) << 16) | u64::from(e.port)
}

/// Demux key for an established flow: (local, peer) endpoint pair.
fn pair_key(local: Endpoint, peer: Endpoint) -> u128 {
    (u128::from(ep_key(local)) << 64) | u128::from(ep_key(peer))
}

/// Releases a drained queue's retained ring storage so a long-lived idle
/// flow doesn't pin its peak-burst capacity; small rings are kept to avoid
/// realloc thrash on steady-state flows.
fn release_drained<T>(q: &mut VecDeque<T>) {
    if q.is_empty() && q.capacity() >= 32 {
        *q = VecDeque::new();
    }
}

/// Timer-token layout: `kind(3) | slot-index(29) | aux(32)`. The aux word
/// carries the slab generation so a token can never resurrect a reused slot.
///
/// Per-flow tokens (`KIND_RTO`/`KIND_DELACK`/`KIND_PACER`) no longer reach
/// the engine directly: they wait in the stack's [`StackTimerWheel`] and
/// the only engine-facing events are `KIND_WHEEL` ticks, whose low 61 bits
/// carry the tick's nanosecond timestamp instead of a slot/generation pair.
const TOKEN_KIND_SHIFT: u32 = 61;
const TOKEN_IDX_SHIFT: u32 = 32;
const TOKEN_IDX_MASK: u64 = (1 << 29) - 1;
const KIND_RTO: u64 = 0;
const KIND_DELACK: u64 = 1;
const KIND_PACER: u64 = 2;
/// A coalesced wheel tick servicing every flow timer due at that instant.
const KIND_WHEEL: u64 = 3;
/// Mask for the tick timestamp carried by a `KIND_WHEEL` token (61 bits of
/// nanoseconds ≈ 73 simulated years).
const WHEEL_TICK_MASK: u64 = (1 << TOKEN_KIND_SHIFT) - 1;

fn token(kind: u64, h: Handle<Flow>) -> u64 {
    (kind << TOKEN_KIND_SHIFT)
        | ((h.index() as u64 & TOKEN_IDX_MASK) << TOKEN_IDX_SHIFT)
        | u64::from(h.generation())
}

/// Full per-flow TCP state: one slab slot, no interior `Arc`s.
struct Flow {
    /// Index into the stack's interned [`TcpConfig`] table.
    cfg_id: u16,
    state: State,
    local: Endpoint,
    peer: Endpoint,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    send_q: VecDeque<Bytes>,
    send_q_bytes: usize,
    unacked_bytes: usize,
    sent: BTreeMap<u64, SentSeg>,
    lost: BTreeSet<u64>,
    cwnd: f64,
    ssthresh: f64,
    peer_wnd: u64,
    in_recovery: bool,
    recover: u64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: Duration,
    /// An RTO timer is outstanding. Re-arming moves `rto_deadline` forward;
    /// a firing older than the deadline is stale and ignored (every arm also
    /// schedules an event at exactly the new deadline, so the live deadline
    /// is always covered).
    rto_armed: bool,
    rto_deadline: SimTime,
    /// The flow's congestion controller (built from `cfg.cc`); owns all
    /// algorithm-private state, while `cwnd`/`ssthresh` stay here for the
    /// send path.
    cc: Box<dyn CongestionController>,
    /// A pacer timer is outstanding (same staleness discipline as the RTO:
    /// a firing earlier than `pacer_deadline` is stale and ignored).
    pacer_armed: bool,
    pacer_deadline: SimTime,
    /// Earliest instant the pacer gate allows the next data segment
    /// (rate-paced controllers only; `ZERO` sends immediately).
    pacer_next: SimTime,
    consecutive_timeouts: u32,
    syn_retries_left: u32,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: u64,
    fin_acked: bool,

    // --- receive side ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: usize,
    ts_recent: Option<SimTime>,
    delack_pending: u32,
    delack_deadline: SimTime,
    peer_fin_seq: Option<u64>,
    fin_received: bool,

    // --- notifications ---
    app_blocked: bool,
    connected_notified: bool,
    closed_notified: bool,

    stats: TcpConnStats,

    /// Raw [`ConnectionId`] used to tag flight-recorder events.
    conn_id: u64,
    /// The application's event handler (absent until `on_accept` returns).
    events: Option<Arc<dyn StreamEvents>>,
    /// Connect-created flows die in place when the application drops its
    /// last [`TcpConn`]; accepted flows are owned by their listener entry.
    app_owned: bool,
    /// Live [`TcpConn`] wrappers referring to this slot.
    app_handles: u32,
}

impl Flow {
    fn new(
        cfg_id: u16,
        cfg: &TcpConfig,
        state: State,
        local: Endpoint,
        peer: Endpoint,
        conn_id: u64,
        app_owned: bool,
    ) -> Flow {
        let cwnd = (cfg.initial_cwnd * cfg.mss) as f64;
        Flow {
            cfg_id,
            state,
            local,
            peer,
            snd_una: 0,
            snd_nxt: 0,
            send_q: VecDeque::new(),
            send_q_bytes: 0,
            unacked_bytes: 0,
            sent: BTreeMap::new(),
            lost: BTreeSet::new(),
            cwnd,
            ssthresh: f64::INFINITY,
            peer_wnd: cfg.recv_buf as u64,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: Duration::from_secs(1),
            rto_armed: false,
            rto_deadline: SimTime::ZERO,
            cc: cc::build(&cfg.cc),
            pacer_armed: false,
            pacer_deadline: SimTime::ZERO,
            pacer_next: SimTime::ZERO,
            consecutive_timeouts: 0,
            syn_retries_left: cfg.syn_retries,
            fin_queued: false,
            fin_sent: false,
            fin_seq: 0,
            fin_acked: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            ts_recent: None,
            delack_pending: 0,
            delack_deadline: SimTime::ZERO,
            peer_fin_seq: None,
            fin_received: false,
            app_blocked: false,
            connected_notified: false,
            closed_notified: false,
            stats: TcpConnStats::default(),
            conn_id,
            events: None,
            app_owned,
            app_handles: 1,
        }
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_window(&self) -> u64 {
        (self.cwnd as u64).min(self.peer_wnd)
    }
}

fn my_wnd(flow: &Flow, cfg: &TcpConfig) -> u64 {
    (cfg.recv_buf.saturating_sub(flow.ooo_bytes)) as u64
}

enum Action {
    Send(TcpSegment),
    Deliver(Bytes),
    Connected,
    Writable,
    Closed(CloseReason),
    ArmRto(Duration),
    ArmDelack(Duration),
    ArmPacer(Duration),
}

/// A port with a registered [`StreamAccept`] handler plus the flows it has
/// accepted (kept for the life of the stack, mirroring the previous
/// listener-owned connection table).
struct ListenerEntry {
    cfg_id: u16,
    handler: Arc<dyn StreamAccept>,
    /// Accepted flows keyed by peer endpoint.
    conns: FxHashMap<u64, Handle<Flow>>,
}

/// Dense state tables behind the stack mutex.
struct StackInner {
    flows: Slab<Flow>,
    /// Interned configs: flows store a `u16` id instead of a 96-byte copy.
    configs: Vec<TcpConfig>,
    /// `(local, peer)` pair → flow, for per-packet demux.
    conn_index: FxHashMap<u128, Handle<Flow>>,
    /// Listening ports keyed by [`ep_key`].
    listeners: FxHashMap<u64, ListenerEntry>,
    /// Coalesced flow timers: one engine event per distinct deadline tick,
    /// serving every RTO/delack/pacer token due at that instant.
    timers: StackTimerWheel,
}

/// Per-network TCP state: every flow on the network lives in this one slab.
///
/// The stack is the [`PacketSink`] for every TCP port and the
/// [`EventTarget`] for every TCP timer, so packets and timer events address
/// flows through 8-byte handles/tokens — no per-flow `Arc`, no per-event
/// allocation. Created lazily by [`Network::tcp_stack`]; the back-reference
/// to the fabric is weak to avoid a retain cycle through the sink table.
pub(crate) struct TcpStack {
    sim: Sim,
    rec: Recorder,
    net: WeakNetwork,
    self_weak: Weak<TcpStack>,
    inner: Mutex<StackInner>,
}

impl TcpStack {
    pub(crate) fn new(sim: Sim, net: WeakNetwork) -> Arc<TcpStack> {
        let rec = sim.recorder().clone();
        Arc::new_cyclic(|weak| TcpStack {
            sim,
            rec,
            net,
            self_weak: weak.clone(),
            inner: Mutex::new(StackInner {
                flows: Slab::new(),
                configs: Vec::new(),
                conn_index: FxHashMap::default(),
                listeners: FxHashMap::default(),
                timers: StackTimerWheel::new(),
            }),
        })
    }

    /// Registers a per-flow timer token on the stack wheel. Only the first
    /// token for a tick schedules an engine event — the wheel batches every
    /// same-tick deadline into that one dispatch.
    fn arm_timer(self: &Arc<Self>, delay: Duration, tok: u64) {
        let at = self.sim.now() + delay;
        debug_assert_eq!(at.as_nanos() >> TOKEN_KIND_SHIFT, 0, "sim time overflows wheel token");
        let fresh = self.inner.lock().timers.register(at, tok);
        if fresh {
            self.sim.schedule_target_at(
                at,
                self.clone(),
                (KIND_WHEEL << TOKEN_KIND_SHIFT) | (at.as_nanos() & WHEEL_TICK_MASK),
            );
        }
    }

    /// Interns `cfg`, returning its table id (worlds use a handful of
    /// distinct configs across thousands of flows).
    fn intern(configs: &mut Vec<TcpConfig>, cfg: TcpConfig) -> u16 {
        if let Some(i) = configs.iter().position(|c| *c == cfg) {
            return i as u16;
        }
        let id = u16::try_from(configs.len()).expect("too many distinct TcpConfigs");
        configs.push(cfg);
        id
    }

    /// Bumps the app-handle count for `h` (wrapper clone/construction).
    fn retain_handle(&self, h: Handle<Flow>) {
        let mut inner = self.inner.lock();
        if let Some(flow) = inner.flows.get_mut(h) {
            flow.app_handles += 1;
        }
    }

    /// Drops one app handle; the last handle of a connect-created flow kills
    /// it in place (the slot is never reused, so outstanding timer tokens
    /// and stray packets resolve to a dead `Closed` flow and no-op — this
    /// mirrors the silent death of dropped client connections in the old
    /// `Arc`-per-connection representation).
    fn release_handle(&self, h: Handle<Flow>) {
        // The handler Arc is dropped outside the lock: its destructor may
        // release other connection handles and re-enter this mutex.
        let _events = {
            let mut inner = self.inner.lock();
            let Some(flow) = inner.flows.get_mut(h) else {
                return;
            };
            flow.app_handles = flow.app_handles.saturating_sub(1);
            if flow.app_handles > 0 || !flow.app_owned {
                return;
            }
            flow.state = State::Closed;
            flow.rto_armed = false;
            flow.pacer_armed = false;
            flow.delack_pending = 0;
            // Fresh containers rather than clear(): a killed flow's slot
            // lingers in the slab, and VecDeque::clear keeps its ring
            // buffer allocated (the B-tree containers free on clear).
            flow.send_q = VecDeque::new();
            flow.send_q_bytes = 0;
            close_all_seg_spans(flow, &self.rec, self.sim.now());
            flow.sent.clear();
            flow.lost.clear();
            flow.ooo.clear();
            flow.ooo_bytes = 0;
            let key = pair_key(flow.local, flow.peer);
            let events = flow.events.take();
            inner.conn_index.remove(&key);
            events
        };
    }

    /// Builds an application-facing wrapper for `h`, bumping the handle
    /// count. Must not be called with the stack lock held.
    fn make_conn(self: &Arc<Self>, h: Handle<Flow>, id: u64, local: Endpoint, peer: Endpoint) -> TcpConn {
        self.retain_handle(h);
        TcpConn {
            stack: self.clone(),
            h,
            id: ConnectionId::from_raw(id),
            local,
            peer,
        }
    }

    /// Runs `f` on the flow under the stack lock, then performs the
    /// produced actions without holding it.
    fn process<F>(self: &Arc<Self>, h: Handle<Flow>, f: F)
    where
        F: FnOnce(&mut Flow, &TcpConfig, &Recorder, SimTime, &mut Vec<Action>),
    {
        let _scope = memscope::enter(memscope::SCOPE_TCP);
        let now = self.sim.now();
        let mut actions = Vec::new();
        let (local, peer, id, events) = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(flow) = inner.flows.get_mut(h) else {
                return;
            };
            let cfg = &inner.configs[flow.cfg_id as usize];
            f(flow, cfg, &self.rec, now, &mut actions);
            // Only clone the handler out when an action will actually
            // notify the application.
            let needs_events = actions.iter().any(|a| {
                matches!(
                    a,
                    Action::Deliver(_) | Action::Connected | Action::Writable | Action::Closed(_)
                )
            });
            (
                flow.local,
                flow.peer,
                flow.conn_id,
                if needs_events { flow.events.clone() } else { None },
            )
        };
        if actions.is_empty() {
            return;
        }
        // The wrapper exists only for callback scope; it is built and
        // dropped outside the lock (its Drop re-enters the stack).
        let conn = events
            .as_ref()
            .map(|_| Connection::Tcp(self.make_conn(h, id, local, peer)));
        let mut net = None;
        for action in actions {
            match action {
                Action::Send(seg) => {
                    if net.is_none() {
                        net = self.net.upgrade();
                    }
                    if let Some(net) = &net {
                        let payload_len = seg.payload.len();
                        let pkt = Packet::new(
                            local,
                            peer,
                            WireProtocol::Tcp,
                            payload_len,
                            PacketBody::Tcp(seg),
                        );
                        net.send_packet(pkt);
                    }
                }
                Action::Deliver(data) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_data(conn, data);
                    }
                }
                Action::Connected => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_connected(conn);
                    }
                }
                Action::Writable => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_writable(conn);
                    }
                }
                Action::Closed(reason) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_closed(conn, reason);
                    }
                }
                Action::ArmRto(delay) => self.arm_timer(delay, token(KIND_RTO, h)),
                Action::ArmDelack(delay) => self.arm_timer(delay, token(KIND_DELACK, h)),
                Action::ArmPacer(delay) => self.arm_timer(delay, token(KIND_PACER, h)),
            }
        }
    }

    fn on_rto_fired(self: &Arc<Self>, h: Handle<Flow>) {
        self.process(h, |flow, cfg, rec, now, out| {
            // Deadline check replaces the old generation counter: every
            // re-arm moves the deadline forward and schedules an event at
            // exactly the new deadline, so an early firing is always stale.
            if !flow.rto_armed || now < flow.rto_deadline || flow.state == State::Closed {
                return;
            }
            flow.rto_armed = false;
            if flow.flight() == 0 {
                return;
            }
            flow.stats.timeouts += 1;
            flow.consecutive_timeouts += 1;
            if flow.state == State::SynSent || flow.state == State::SynRcvd {
                if flow.syn_retries_left == 0 {
                    flow.state = State::Closed;
                    close_all_seg_spans(flow, rec, now);
                    if !flow.closed_notified {
                        flow.closed_notified = true;
                        out.push(Action::Closed(CloseReason::Timeout));
                    }
                    return;
                }
                flow.syn_retries_left -= 1;
            } else if flow.consecutive_timeouts > cfg.max_consecutive_timeouts {
                // The peer is unreachable; give up like a real stack would.
                flow.state = State::Closed;
                close_all_seg_spans(flow, rec, now);
                if !flow.closed_notified {
                    flow.closed_notified = true;
                    out.push(Action::Closed(CloseReason::Timeout));
                }
                return;
            }
            // Timeout response is the controller's call (Reno: RFC 5681
            // collapse to one MSS); episode bookkeeping stays here.
            flow.in_recovery = true;
            flow.recover = flow.snd_nxt;
            flow.rto = (flow.rto * 2).min(cfg.max_rto);
            rec.record(
                now.as_nanos(),
                EventKind::TcpRto {
                    conn: flow.conn_id,
                    rto_us: flow.rto.as_micros() as u64,
                    consecutive: u64::from(flow.consecutive_timeouts),
                },
            );
            with_cc(flow, cfg, rec, |cc, ctx| cc.on_rto(ctx, now));
            if flow.state == State::Established {
                // Go-back-N style: everything unacknowledged is presumed
                // lost; retransmission is paced by returning ACKs.
                let unacked: Vec<u64> = flow.sent.keys().copied().collect();
                flow.lost.extend(unacked);
                resend_lost(flow, cfg, rec, now, out);
            } else {
                retransmit_first(flow, cfg, rec, now, out);
            }
            arm_rto(flow, now, out);
        });
    }

    fn on_pacer_fired(self: &Arc<Self>, h: Handle<Flow>) {
        self.process(h, |flow, cfg, rec, now, out| {
            if !flow.pacer_armed || now < flow.pacer_deadline || flow.state == State::Closed {
                return;
            }
            flow.pacer_armed = false;
            try_send(flow, cfg, rec, now, out);
        });
    }

    fn on_delack_fired(self: &Arc<Self>, h: Handle<Flow>) {
        self.process(h, |flow, cfg, _rec, now, out| {
            if flow.delack_pending == 0
                || now < flow.delack_deadline
                || flow.state == State::Closed
            {
                return;
            }
            flow.delack_pending = 0;
            out.push(Action::Send(pure_ack(flow, cfg, now)));
        });
    }

    fn handle_segment(self: &Arc<Self>, h: Handle<Flow>, seg: TcpSegment) {
        self.process(h, move |flow, cfg, rec, now, out| match flow.state {
            State::Closed => {
                // Re-acknowledge a retransmitted FIN so the peer can finish.
                if seg.flags.fin {
                    out.push(Action::Send(pure_ack(flow, cfg, now)));
                }
            }
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack >= 1 {
                    complete_handshake_active(flow, cfg, rec, &seg, now, out);
                }
            }
            State::SynRcvd => {
                if seg.flags.ack && seg.ack >= 1 {
                    flow.state = State::Established;
                    flow.snd_una = seg.ack.max(flow.snd_una);
                    flow.sent.retain(|seq, _| *seq >= flow.snd_una);
                    flow.peer_wnd = seg.wnd;
                    // A completed handshake breaks any SYN timeout streak;
                    // without this reset the first post-handshake RTO would
                    // report `consecutive > 1` against a freshly measured
                    // RTO, which violates the doubling invariant the
                    // oracle checks.
                    flow.consecutive_timeouts = 0;
                    disarm_rto(flow);
                    if !flow.connected_notified {
                        flow.connected_notified = true;
                        out.push(Action::Connected);
                    }
                    // The final handshake ACK may carry data.
                    if !seg.payload.is_empty() || seg.flags.fin {
                        receive_data(flow, cfg, seg, now, out);
                    }
                    try_send(flow, cfg, rec, now, out);
                } else if seg.flags.syn && !seg.flags.ack {
                    // Duplicate SYN: retransmit SYN-ACK.
                    retransmit_first(flow, cfg, rec, now, out);
                }
            }
            State::Established => {
                if seg.flags.ack {
                    process_ack(flow, cfg, rec, &seg, now, out);
                    resend_lost(flow, cfg, rec, now, out);
                }
                if !seg.payload.is_empty() || seg.flags.fin {
                    receive_data(flow, cfg, seg, now, out);
                }
                try_send(flow, cfg, rec, now, out);
                maybe_close(flow, rec, now, out);
            }
        });
    }

    /// Demuxes an incoming segment: established flows by endpoint pair,
    /// otherwise a listener performs a passive open.
    fn dispatch(self: &Arc<Self>, src: Endpoint, dst: Endpoint, seg: TcpSegment) {
        let _scope = memscope::enter(memscope::SCOPE_TCP);
        let known = self.inner.lock().conn_index.get(&pair_key(dst, src)).copied();
        if let Some(h) = known {
            self.handle_segment(h, seg);
            return;
        }
        if !seg.flags.syn || seg.flags.ack {
            return; // stray non-SYN for an unknown connection
        }
        // Passive open. The flow is fully registered (slab + demux index +
        // listener table) before `on_accept` runs, but no packet or timer
        // can observe it until the SYN-ACK below is processed.
        let accepted = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(entry) = inner.listeners.get(&ep_key(dst)) else {
                return;
            };
            let handler = entry.handler.clone();
            let cfg_id = entry.cfg_id;
            let id = ConnectionId::fresh(&self.sim);
            let cfg = &inner.configs[cfg_id as usize];
            let flow = Flow::new(cfg_id, cfg, State::SynRcvd, dst, src, id.raw(), false);
            let h = inner.flows.insert(flow);
            inner.conn_index.insert(pair_key(dst, src), h);
            inner
                .listeners
                .get_mut(&ep_key(dst))
                .expect("listener entry just looked up")
                .conns
                .insert(ep_key(src), h);
            (handler, h, id)
        };
        let (handler, h, id) = accepted;
        let conn = Connection::Tcp(self.make_conn(h, id.raw(), dst, src));
        let events = handler.on_accept(&conn);
        {
            let mut inner = self.inner.lock();
            if let Some(flow) = inner.flows.get_mut(h) {
                flow.events = Some(events);
            }
        }
        self.process(h, move |flow, cfg, _rec, now, out| {
            flow.rcv_nxt = seg.seq + 1;
            flow.ts_recent = Some(seg.ts);
            flow.peer_wnd = seg.wnd;
            let synack = TcpSegment {
                seq: 0,
                ack: flow.rcv_nxt,
                flags: SegFlags {
                    syn: true,
                    ack: true,
                    fin: false,
                },
                wnd: my_wnd(flow, cfg),
                ts: now,
                ts_echo: flow.ts_recent,
                holes: Vec::new(),
                payload: Bytes::new(),
            };
            flow.sent.insert(
                0,
                SentSeg {
                    payload: Bytes::new(),
                    syn: true,
                    fin: false,
                    retransmitted: false,
                    last_rexmit: None,
                    span: 0,
                },
            );
            flow.snd_nxt = 1;
            out.push(Action::Send(synack));
            arm_rto(flow, now, out);
        });
    }
}

impl PacketSink for TcpStack {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        let Some(stack) = self.self_weak.upgrade() else {
            return;
        };
        let PacketBody::Tcp(seg) = pkt.body else {
            return;
        };
        stack.dispatch(pkt.src, pkt.dst, seg);
    }
}

impl EventTarget for TcpStack {
    fn fire(self: Arc<Self>, _sim: &Sim, token: u64) {
        let _scope = memscope::enter(memscope::SCOPE_TCP);
        if token >> TOKEN_KIND_SHIFT == KIND_WHEEL {
            // A coalesced tick: drain the whole bucket and service every
            // registered flow timer in arming order. Stale tokens (re-armed
            // or dead flows) no-op in `service_timer`.
            let tick = SimTime::from_nanos(token & WHEEL_TICK_MASK);
            let Some(batch) = self.inner.lock().timers.take(tick) else {
                return;
            };
            for &tok in &batch {
                self.service_timer(tok);
            }
            self.inner.lock().timers.recycle(batch);
        } else {
            self.service_timer(token);
        }
    }
}

impl TcpStack {
    /// Services one per-flow timer token (see the token layout above).
    fn service_timer(self: &Arc<Self>, token: u64) {
        let kind = token >> TOKEN_KIND_SHIFT;
        let idx = ((token >> TOKEN_IDX_SHIFT) & TOKEN_IDX_MASK) as u32;
        let gen = token as u32;
        let h = self.inner.lock().flows.handle_at(idx);
        let Some(h) = h else { return };
        if h.generation() != gen {
            return;
        }
        match kind {
            KIND_RTO => self.on_rto_fired(h),
            KIND_DELACK => self.on_delack_fired(h),
            KIND_PACER => self.on_pacer_fired(h),
            _ => {}
        }
    }
}

fn complete_handshake_active(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    seg: &TcpSegment,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    flow.state = State::Established;
    flow.snd_una = seg.ack;
    flow.sent.clear();
    flow.rcv_nxt = seg.seq + 1;
    flow.peer_wnd = seg.wnd;
    // SYN timeout streaks do not carry into the established connection
    // (same reasoning as the SynRcvd transition).
    flow.consecutive_timeouts = 0;
    flow.ts_recent = Some(seg.ts);
    if let Some(echo) = seg.ts_echo {
        update_rtt(flow, cfg, now, echo);
    }
    disarm_rto(flow);
    flow.connected_notified = true;
    out.push(Action::Connected);
    // Pure ACK completes the handshake; data may follow immediately.
    out.push(Action::Send(pure_ack(flow, cfg, now)));
    try_send(flow, cfg, rec, now, out);
}

/// Runs a congestion-controller hook with the window state borrowed
/// piecewise out of the flow (cwnd/ssthresh mutably, the rest by value).
fn with_cc(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    f: impl FnOnce(&mut dyn CongestionController, &mut CcCtx<'_>),
) {
    let flight = flow.flight() as f64;
    let conn = flow.conn_id;
    let Flow { cwnd, ssthresh, cc, .. } = flow;
    let mut ctx = CcCtx {
        cwnd,
        ssthresh,
        mss: cfg.mss as f64,
        flight,
        conn,
        rec,
    };
    f(cc.as_mut(), &mut ctx);
}

fn update_rtt(flow: &mut Flow, cfg: &TcpConfig, now: SimTime, echo: SimTime) {
    let sample = now.duration_since(echo).as_secs_f64();
    match flow.srtt {
        None => {
            flow.srtt = Some(sample);
            flow.rttvar = sample / 2.0;
        }
        Some(srtt) => {
            let err = (sample - srtt).abs();
            flow.rttvar = 0.75 * flow.rttvar + 0.25 * err;
            flow.srtt = Some(0.875 * srtt + 0.125 * sample);
        }
    }
    let rto = flow.srtt.unwrap_or(1.0) + 4.0 * flow.rttvar;
    flow.rto = Duration::from_secs_f64(rto)
        .max(cfg.min_rto)
        .min(cfg.max_rto);
    flow.cc.on_rtt_sample(sample, now);
}

fn pure_ack(flow: &Flow, cfg: &TcpConfig, now: SimTime) -> TcpSegment {
    TcpSegment {
        seq: flow.snd_nxt,
        ack: flow.rcv_nxt,
        flags: SegFlags {
            syn: false,
            ack: true,
            fin: false,
        },
        wnd: my_wnd(flow, cfg),
        ts: now,
        ts_echo: flow.ts_recent,
        holes: compute_holes(flow),
        payload: Bytes::new(),
    }
}

/// The receiver's missing `[from, to)` byte ranges below its highest
/// buffered out-of-order segment (capped at 16).
fn compute_holes(flow: &Flow) -> Vec<(u64, u64)> {
    let mut holes = Vec::new();
    let mut expect = flow.rcv_nxt;
    for (&seq, data) in &flow.ooo {
        if seq > expect {
            holes.push((expect, seq));
            if holes.len() == 16 {
                break;
            }
        }
        expect = expect.max(seq + data.len() as u64);
    }
    holes
}

fn arm_rto(flow: &mut Flow, now: SimTime, out: &mut Vec<Action>) {
    flow.rto_armed = true;
    flow.rto_deadline = now + flow.rto;
    out.push(Action::ArmRto(flow.rto));
}

/// Schedules a pacer wake-up at the flow's next pacing gate (rate-based
/// controllers only). Idempotent per gate: re-arming moves the deadline and
/// earlier firings go stale.
fn arm_pacer(flow: &mut Flow, now: SimTime, out: &mut Vec<Action>) {
    if flow.pacer_armed && flow.pacer_deadline == flow.pacer_next {
        return;
    }
    flow.pacer_armed = true;
    flow.pacer_deadline = flow.pacer_next;
    out.push(Action::ArmPacer(flow.pacer_next.duration_since(now)));
}

fn disarm_rto(flow: &mut Flow) {
    flow.rto_armed = false;
}

fn retransmit_first(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    let wnd = my_wnd(flow, cfg);
    let rcv_nxt = flow.rcv_nxt;
    let ts_echo = flow.ts_recent;
    let is_syn_sent = flow.state == State::SynSent;
    let conn_id = flow.conn_id;
    let Some((&seq, seg)) = flow.sent.iter_mut().next() else {
        return;
    };
    seg.retransmitted = true;
    let segment = TcpSegment {
        seq,
        ack: rcv_nxt,
        flags: SegFlags {
            syn: seg.syn,
            ack: !is_syn_sent,
            fin: seg.fin,
        },
        wnd,
        ts: now,
        ts_echo,
        holes: Vec::new(),
        payload: seg.payload.clone(),
    };
    flow.stats.retransmits += 1;
    rec.record(
        now.as_nanos(),
        EventKind::TcpRetransmit {
            conn: conn_id,
            seq,
            fast: false,
        },
    );
    out.push(Action::Send(segment));
}

fn process_ack(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    seg: &TcpSegment,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    flow.peer_wnd = seg.wnd;
    note_holes(flow, cfg, rec, &seg.holes, now);
    if seg.ack > flow.snd_una {
        let newly = seg.ack - flow.snd_una;
        flow.snd_una = seg.ack;
        flow.consecutive_timeouts = 0;
        // Remove fully acknowledged segments, closing their `seg` spans
        // (close key records whether the segment needed retransmission).
        let still_unacked = flow.sent.split_off(&seg.ack);
        let mut acked: u64 = 0;
        for s in flow.sent.values() {
            acked += s.payload.len() as u64;
            let key = if s.retransmitted { SEG_REXMIT } else { SEG_ACKED };
            close_seg_span(rec, now, s.span, key);
        }
        flow.sent = still_unacked;
        flow.unacked_bytes = flow.unacked_bytes.saturating_sub(acked as usize);
        flow.stats.bytes_acked += acked;
        if let Some(echo) = seg.ts_echo {
            update_rtt(flow, cfg, now, echo);
        }
        if flow.fin_sent && seg.ack > flow.fin_seq {
            flow.fin_acked = true;
        }
        // Drop stale loss markers.
        let cleared: Vec<u64> = flow.lost.range(..seg.ack).copied().collect();
        for s in cleared {
            flow.lost.remove(&s);
        }
        if flow.in_recovery && flow.snd_una >= flow.recover {
            flow.in_recovery = false;
            with_cc(flow, cfg, rec, |cc, ctx| cc.on_recovery_exit(ctx, now));
        }
        with_cc(flow, cfg, rec, |cc, ctx| cc.on_ack(ctx, newly, now));
        if flow.flight() > 0 {
            arm_rto(flow, now, out);
        } else {
            disarm_rto(flow);
        }
        if cfg.ack_progress_events && acked > 0 {
            flow.app_blocked = false;
            out.push(Action::Writable);
        } else {
            maybe_writable(flow, cfg, out);
        }
    }
}

/// Registers receiver-reported holes as lost segments (once per ~RTT per
/// segment) and reacts with one multiplicative decrease per loss episode.
fn note_holes(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    holes: &[(u64, u64)],
    now: SimTime,
) {
    if holes.is_empty() {
        return;
    }
    let srtt = flow.srtt.unwrap_or(0.1);
    let reinsert_after = Duration::from_secs_f64((srtt * 1.2).max(0.005));
    let mut fresh_loss = false;
    for &(from, to) in holes {
        let seqs: Vec<u64> = flow.sent.range(from..to).map(|(s, _)| *s).collect();
        for seq in seqs {
            if seq < flow.snd_una || flow.lost.contains(&seq) {
                continue;
            }
            let seg = flow.sent.get(&seq).expect("seq from range");
            let eligible = seg
                .last_rexmit
                .is_none_or(|t| now.duration_since(t) >= reinsert_after);
            if eligible {
                flow.lost.insert(seq);
                if seg.last_rexmit.is_none() {
                    fresh_loss = true;
                }
            }
        }
    }
    if fresh_loss && !flow.in_recovery && !cfg.buggy_no_fast_recovery {
        flow.in_recovery = true;
        flow.recover = flow.snd_nxt;
        flow.stats.fast_recoveries += 1;
        with_cc(flow, cfg, rec, |cc, ctx| cc.on_loss(ctx, now));
    }
}

/// Retransmits queued-lost segments, paced by the congestion window: each
/// invocation (i.e. each returning ACK) may resend up to `cwnd/4` worth of
/// segments, so recovery self-clocks and ramps with slow start after an RTO.
fn resend_lost(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    let budget = ((flow.cwnd / cfg.mss as f64 / 4.0) as usize).max(1);
    let mut sent = 0;
    while sent < budget {
        let Some(&seq) = flow.lost.iter().next() else {
            break;
        };
        flow.lost.remove(&seq);
        if seq < flow.snd_una {
            continue;
        }
        let wnd = my_wnd(flow, cfg);
        let rcv_nxt = flow.rcv_nxt;
        let ts_echo = flow.ts_recent;
        let conn_id = flow.conn_id;
        let Some(seg) = flow.sent.get_mut(&seq) else {
            continue;
        };
        seg.retransmitted = true;
        seg.last_rexmit = Some(now);
        let segment = TcpSegment {
            seq,
            ack: rcv_nxt,
            flags: SegFlags {
                syn: seg.syn,
                ack: true,
                fin: seg.fin,
            },
            wnd,
            ts: now,
            ts_echo,
            holes: Vec::new(),
            payload: seg.payload.clone(),
        };
        flow.stats.retransmits += 1;
        rec.record(
            now.as_nanos(),
            EventKind::TcpRetransmit {
                conn: conn_id,
                seq,
                fast: true,
            },
        );
        out.push(Action::Send(segment));
        sent += 1;
    }
}

fn receive_data(
    flow: &mut Flow,
    cfg: &TcpConfig,
    seg: TcpSegment,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    let plen = seg.payload.len();
    if seg.flags.fin {
        flow.peer_fin_seq = Some(seg.seq + plen as u64);
    }
    let seq = seg.seq;
    if plen > 0 {
        if seq == flow.rcv_nxt {
            flow.ts_recent = Some(seg.ts);
            flow.rcv_nxt += plen as u64;
            flow.stats.bytes_delivered += plen as u64;
            // The segment is consumed here, so its payload handle moves
            // straight into the delivery without a refcount round-trip.
            out.push(Action::Deliver(seg.payload));
            // Drain any now-contiguous out-of-order data.
            while let Some(entry) = flow.ooo.first_entry() {
                if *entry.key() != flow.rcv_nxt {
                    break;
                }
                let data = entry.remove();
                flow.ooo_bytes -= data.len();
                flow.rcv_nxt += data.len() as u64;
                flow.stats.bytes_delivered += data.len() as u64;
                out.push(Action::Deliver(data));
            }
            schedule_ack(flow, cfg, now, out, false);
        } else if seq > flow.rcv_nxt {
            // Out of order: buffer if the receive buffer allows, dup-ACK
            // immediately either way.
            if !flow.ooo.contains_key(&seq) && flow.ooo_bytes + plen <= cfg.recv_buf {
                flow.ooo_bytes += plen;
                flow.ooo.insert(seq, seg.payload);
            }
            schedule_ack(flow, cfg, now, out, true);
        } else {
            // Duplicate of already-delivered data.
            schedule_ack(flow, cfg, now, out, true);
        }
    }
    if let Some(fin_seq) = flow.peer_fin_seq {
        if flow.rcv_nxt == fin_seq && !flow.fin_received {
            flow.fin_received = true;
            flow.rcv_nxt += 1;
            schedule_ack(flow, cfg, now, out, true);
        }
    }
}

fn schedule_ack(
    flow: &mut Flow,
    cfg: &TcpConfig,
    now: SimTime,
    out: &mut Vec<Action>,
    immediate: bool,
) {
    if immediate || flow.delack_pending >= 1 {
        // Clearing the pending count cancels any outstanding delack timer:
        // it fires, sees `delack_pending == 0`, and no-ops.
        flow.delack_pending = 0;
        out.push(Action::Send(pure_ack(flow, cfg, now)));
    } else {
        flow.delack_pending += 1;
        flow.delack_deadline = now + cfg.delack_timeout;
        out.push(Action::ArmDelack(cfg.delack_timeout));
    }
}

fn try_send(
    flow: &mut Flow,
    cfg: &TcpConfig,
    rec: &Recorder,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    if flow.state != State::Established {
        return;
    }
    loop {
        let wnd = flow.send_window();
        if flow.flight() >= wnd {
            break;
        }
        if flow.send_q.is_empty() {
            if flow.fin_queued && !flow.fin_sent {
                let seg = TcpSegment {
                    seq: flow.snd_nxt,
                    ack: flow.rcv_nxt,
                    flags: SegFlags {
                        syn: false,
                        ack: true,
                        fin: true,
                    },
                    wnd: my_wnd(flow, cfg),
                    ts: now,
                    ts_echo: flow.ts_recent,
                    holes: Vec::new(),
                    payload: Bytes::new(),
                };
                flow.fin_seq = flow.snd_nxt;
                flow.fin_sent = true;
                flow.sent.insert(
                    flow.snd_nxt,
                    SentSeg {
                        payload: Bytes::new(),
                        syn: false,
                        fin: true,
                        retransmitted: false,
                        last_rexmit: None,
                        span: 0,
                    },
                );
                flow.snd_nxt += 1;
                out.push(Action::Send(seg));
            }
            break;
        }
        // Rate pacing: a controller with a pacing rate gates each data
        // segment on the virtual-time pacer instead of bursting the whole
        // window (ACK clocking alone).
        if flow.cc.pacing_rate().is_some() && now < flow.pacer_next {
            arm_pacer(flow, now, out);
            break;
        }
        let head = flow.send_q.front_mut().expect("non-empty send queue");
        let take = head.len().min(cfg.mss);
        let payload = head.split_to(take);
        if head.is_empty() {
            flow.send_q.pop_front();
            release_drained(&mut flow.send_q);
        }
        flow.send_q_bytes -= take;
        let seg = TcpSegment {
            seq: flow.snd_nxt,
            ack: flow.rcv_nxt,
            flags: SegFlags {
                syn: false,
                ack: true,
                fin: false,
            },
            wnd: my_wnd(flow, cfg),
            ts: now,
            ts_echo: flow.ts_recent,
            holes: Vec::new(),
            payload: payload.clone(),
        };
        flow.sent.insert(
            flow.snd_nxt,
            SentSeg {
                payload,
                syn: false,
                fin: false,
                retransmitted: false,
                last_rexmit: None,
                span: open_seg_span(rec, now, flow.conn_id, flow.snd_nxt),
            },
        );
        flow.snd_nxt += take as u64;
        out.push(Action::Send(seg));
        // Advance the pacing gate by this segment's serialization time at
        // the controller's rate.
        if let Some(rate) = flow.cc.pacing_rate() {
            if rate > 0.0 {
                let gap = Duration::from_secs_f64(take as f64 / rate);
                flow.pacer_next = flow.pacer_next.max(now) + gap;
            }
        }
    }
    if flow.flight() > 0 && !flow.rto_armed {
        arm_rto(flow, now, out);
    }
}

fn maybe_writable(flow: &mut Flow, cfg: &TcpConfig, out: &mut Vec<Action>) {
    // `unacked_bytes` counts everything accepted but not yet acknowledged
    // (queued + in flight), i.e. the occupied send buffer.
    if flow.app_blocked && cfg.send_buf.saturating_sub(flow.unacked_bytes) >= cfg.mss {
        flow.app_blocked = false;
        out.push(Action::Writable);
    }
}

fn maybe_close(flow: &mut Flow, rec: &Recorder, now: SimTime, out: &mut Vec<Action>) {
    if flow.closed_notified || flow.state == State::Closed {
        return;
    }
    let local_done = !flow.fin_queued || flow.fin_acked;
    if flow.fin_received && local_done {
        flow.state = State::Closed;
        flow.closed_notified = true;
        close_all_seg_spans(flow, rec, now);
        disarm_rto(flow);
        out.push(Action::Closed(CloseReason::Normal));
    } else if flow.fin_queued && flow.fin_acked && !flow.fin_received {
        // We initiated and the peer acknowledged; linger until the peer's
        // FIN or just report closure (simplified half-close).
        flow.state = State::Closed;
        flow.closed_notified = true;
        close_all_seg_spans(flow, rec, now);
        disarm_rto(flow);
        out.push(Action::Closed(CloseReason::Normal));
    }
}

/// A simulated TCP connection handle.
///
/// Internally an 8-byte slab handle plus cached immutable endpoints; clones
/// refer to the same flow. The last application handle of a connect-created
/// flow kills the flow in place when dropped.
pub struct TcpConn {
    stack: Arc<TcpStack>,
    h: Handle<Flow>,
    id: ConnectionId,
    local: Endpoint,
    peer: Endpoint,
}

impl Clone for TcpConn {
    fn clone(&self) -> Self {
        self.stack.retain_handle(self.h);
        TcpConn {
            stack: self.stack.clone(),
            h: self.h,
            id: self.id,
            local: self.local,
            peer: self.peer,
        }
    }
}

impl Drop for TcpConn {
    fn drop(&mut self) {
        self.stack.release_handle(self.h);
    }
}

impl fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.stack.inner.lock().flows.get(self.h).map(|fl| fl.state);
        f.debug_struct("TcpConn")
            .field("id", &self.id)
            .field("local", &self.local)
            .field("peer", &self.peer)
            .field("state", &state)
            .finish()
    }
}

impl TcpConn {
    /// Opens a connection from an ephemeral port on `node` to `dst`.
    ///
    /// The SYN is sent immediately; [`StreamEvents::on_connected`] fires
    /// when the handshake completes.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if no local port could be bound (exhausted
    /// ephemeral range).
    pub fn connect(
        net: &Network,
        node: NodeId,
        dst: Endpoint,
        cfg: TcpConfig,
        events: Arc<dyn StreamEvents>,
    ) -> Result<TcpConn, BindError> {
        let stack = net.tcp_stack();
        let Some(port) = net.alloc_ephemeral_port(node, WireProtocol::Tcp) else {
            return Err(BindError {
                endpoint: Endpoint::new(node, 0),
                protocol: WireProtocol::Tcp,
            });
        };
        let local = Endpoint::new(node, port);
        let id = ConnectionId::fresh(net.sim());
        net.bind(node, WireProtocol::Tcp, port, stack.clone())?;
        let h = {
            let mut guard = stack.inner.lock();
            let inner = &mut *guard;
            let cfg_id = TcpStack::intern(&mut inner.configs, cfg);
            let cfg = &inner.configs[cfg_id as usize];
            let mut flow = Flow::new(cfg_id, cfg, State::SynSent, local, dst, id.raw(), true);
            flow.events = Some(events);
            let h = inner.flows.insert(flow);
            inner.conn_index.insert(pair_key(local, dst), h);
            h
        };
        // Send SYN.
        stack.process(h, |flow, cfg, _rec, now, out| {
            let seg = TcpSegment {
                seq: 0,
                ack: 0,
                flags: SegFlags {
                    syn: true,
                    ack: false,
                    fin: false,
                },
                wnd: my_wnd(flow, cfg),
                ts: now,
                ts_echo: None,
                holes: Vec::new(),
                payload: Bytes::new(),
            };
            flow.sent.insert(
                0,
                SentSeg {
                    payload: Bytes::new(),
                    syn: true,
                    fin: false,
                    retransmitted: false,
                    last_rexmit: None,
                    span: 0,
                },
            );
            flow.snd_nxt = 1;
            out.push(Action::Send(seg));
            arm_rto(flow, now, out);
        });
        Ok(TcpConn {
            stack,
            h,
            id,
            local,
            peer: dst,
        })
    }

    /// The connection id.
    #[must_use]
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// Local endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Remote endpoint.
    #[must_use]
    pub fn peer(&self) -> Endpoint {
        self.peer
    }

    /// Whether the handshake completed and the connection is open.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .is_some_and(|f| f.state == State::Established)
    }

    /// Appends bytes to the send buffer; returns how many were accepted.
    pub fn send(&self, data: Bytes) -> usize {
        let mut accepted = 0;
        self.stack.process(self.h, |flow, cfg, rec, now, out| {
            if flow.state == State::Closed || flow.fin_queued {
                return;
            }
            let space = cfg.send_buf.saturating_sub(flow.unacked_bytes);
            let take = space.min(data.len());
            if take < data.len() {
                flow.app_blocked = true;
            }
            if take > 0 {
                let chunk = data.slice(0..take);
                flow.send_q_bytes += take;
                flow.unacked_bytes += take;
                flow.stats.bytes_sent += take as u64;
                flow.send_q.push_back(chunk);
                try_send(flow, cfg, rec, now, out);
            }
            accepted = take;
        });
        accepted
    }

    /// Free space in the send buffer.
    #[must_use]
    pub fn free_send_buffer(&self) -> usize {
        let mut guard = self.stack.inner.lock();
        let inner = &mut *guard;
        match inner.flows.get(self.h) {
            Some(flow) => {
                let cfg = &inner.configs[flow.cfg_id as usize];
                cfg.send_buf.saturating_sub(flow.unacked_bytes)
            }
            None => 0,
        }
    }

    /// Bytes accepted but not yet acknowledged by the peer (queued + in
    /// flight).
    #[must_use]
    pub fn unacked_bytes(&self) -> usize {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or(0, |f| f.unacked_bytes)
    }

    /// Cumulative payload bytes acknowledged by the peer.
    #[must_use]
    pub fn acked_bytes(&self) -> u64 {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or(0, |f| f.stats.bytes_acked)
    }

    /// Smoothed RTT estimate, if any ACK carried a timestamp echo yet.
    #[must_use]
    pub fn rtt_estimate(&self) -> Option<Duration> {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .and_then(|f| f.srtt)
            .map(Duration::from_secs_f64)
    }

    /// Orderly close: a FIN is sent after all buffered data.
    pub fn close(&self) {
        self.stack.process(self.h, |flow, cfg, rec, now, out| {
            if flow.fin_queued || flow.state == State::Closed {
                return;
            }
            flow.fin_queued = true;
            try_send(flow, cfg, rec, now, out);
        });
    }

    /// Per-connection counters.
    #[must_use]
    pub fn stats(&self) -> TcpConnStats {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or_else(TcpConnStats::default, |f| f.stats)
    }

    /// Current congestion window in bytes (diagnostics).
    #[must_use]
    pub fn cwnd(&self) -> f64 {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or(0.0, |f| f.cwnd)
    }
}

/// A TCP listening socket that accepts incoming connections.
#[derive(Clone)]
pub struct TcpListener {
    stack: Arc<TcpStack>,
    local: Endpoint,
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpListener")
            .field("local", &self.local)
            .finish()
    }
}

impl TcpListener {
    /// Binds a listener on `node`/`port`; `handler.on_accept` is invoked for
    /// every new peer.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the port is taken.
    pub fn bind(
        net: &Network,
        node: NodeId,
        port: u16,
        cfg: TcpConfig,
        handler: Arc<dyn StreamAccept>,
    ) -> Result<TcpListener, BindError> {
        let stack = net.tcp_stack();
        net.bind(node, WireProtocol::Tcp, port, stack.clone())?;
        let local = Endpoint::new(node, port);
        {
            let mut guard = stack.inner.lock();
            let inner = &mut *guard;
            let cfg_id = TcpStack::intern(&mut inner.configs, cfg);
            inner.listeners.insert(
                ep_key(local),
                ListenerEntry {
                    cfg_id,
                    handler,
                    conns: FxHashMap::default(),
                },
            );
        }
        Ok(TcpListener { stack, local })
    }

    /// The listening endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Number of connections this listener has accepted (and not forgotten).
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.stack
            .inner
            .lock()
            .listeners
            .get(&ep_key(self.local))
            .map_or(0, |e| e.conns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::link::LinkConfig;
    use crate::testutil::{PatternSender, Recorder, SinkEvents};

    fn setup(link: LinkConfig) -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(11);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, link);
        (sim, net, a, b)
    }

    struct AcceptRecorder {
        rec: Arc<Recorder>,
    }
    impl StreamAccept for AcceptRecorder {
        fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
            self.rec.clone()
        }
    }

    #[test]
    fn handshake_completes() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _listener = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client.clone(),
        )
        .unwrap();
        assert!(!conn.is_established());
        sim.run_for(Duration::from_secs(1));
        assert!(conn.is_established());
        assert_eq!(client.connected(), 1);
        assert_eq!(server.connected(), 1);
    }

    #[test]
    fn small_transfer_delivers_in_order() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client,
        )
        .unwrap();
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let accepted = conn.send(Bytes::from(msg.clone()));
        assert_eq!(accepted, msg.len());
        sim.run_for(Duration::from_secs(2));
        assert_eq!(server.data(), msg);
        assert_eq!(conn.stats().retransmits, 0);
    }

    #[test]
    fn bulk_transfer_reaches_link_rate_on_clean_path() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let total = 20_000_000usize; // 20 MB over a 10 MB/s link: ~2 s
        let pump = PatternSender::new(&sim, total);
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump)
            .unwrap();
        let _ = conn;
        sim.run_for(Duration::from_secs(10));
        assert_eq!(server.data_len(), total, "all bytes must arrive");
        let rate = server.goodput();
        assert!(
            rate > 8e6 && rate <= 10.2e6,
            "clean-path TCP should run near line rate, got {rate:.0} B/s"
        );
    }

    #[test]
    fn recovers_from_random_loss() {
        let (sim, net, a, b) = setup(
            LinkConfig::new(10e6, Duration::from_millis(10)).random_loss(0.01),
        );
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let total = 2_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn =
            TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump).unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total, "reliable despite 1% loss");
        assert!(conn.stats().retransmits > 0, "loss must trigger retransmits");
        assert!(server.in_order(), "delivery must stay in order");
    }

    #[test]
    fn receiver_window_caps_throughput_at_high_rtt() {
        // 125 MB/s link, 100 ms RTT, 256 KiB receive buffer:
        // max ~2.56 MB/s, far below the link rate.
        let cfg = TcpConfig {
            recv_buf: 256 * 1024,
            ..TcpConfig::default()
        };
        let (sim, net, a, b) = setup(LinkConfig::new(125e6, Duration::from_millis(50)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            cfg.clone(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let total = 10_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, pump).unwrap();
        let _ = conn;
        sim.run_for(Duration::from_secs(30));
        assert_eq!(server.data_len(), total);
        let rate = server.goodput();
        assert!(
            rate < 3.5e6,
            "window-capped flow must stay near wnd/RTT (~2.6 MB/s), got {rate:.0}"
        );
    }

    #[test]
    fn send_buffer_backpressure_and_writable() {
        let cfg = TcpConfig {
            send_buf: 64 * 1024,
            ..TcpConfig::default()
        };
        let (sim, net, a, b) = setup(LinkConfig::new(1e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, client.clone()).unwrap();
        sim.run_for(Duration::from_millis(100));
        let big = Bytes::from(vec![7u8; 200 * 1024]);
        let accepted = conn.send(big);
        assert!(accepted < 200 * 1024, "send buffer must refuse the excess");
        assert!(accepted >= 63 * 1024);
        sim.run_for(Duration::from_secs(5));
        assert!(client.writable() > 0, "writable notification expected");
    }

    #[test]
    fn close_notifies_both_sides() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(2)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client.clone(),
        )
        .unwrap();
        conn.send(Bytes::from_static(b"bye"));
        conn.close();
        sim.run_for(Duration::from_secs(5));
        assert_eq!(server.data(), b"bye");
        assert!(server.closed() >= 1, "server should observe the close");
        assert!(client.closed() >= 1, "client should observe FIN-ACK close");
    }

    #[test]
    fn connect_to_black_hole_times_out() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(2)));
        let client = Arc::new(Recorder::default());
        let cfg = TcpConfig {
            syn_retries: 2,
            ..TcpConfig::default()
        };
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 81), cfg, client.clone()).unwrap();
        sim.run_for(Duration::from_secs(120));
        assert!(!conn.is_established());
        assert_eq!(client.closed(), 1, "connect failure reported as close");
    }

    #[test]
    fn rtt_estimate_tracks_path() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(25)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client,
        )
        .unwrap();
        conn.send(Bytes::from(vec![1u8; 100_000]));
        sim.run_for(Duration::from_secs(3));
        let rtt = conn.rtt_estimate().expect("rtt sampled").as_secs_f64();
        assert!(
            (0.04..0.2).contains(&rtt),
            "srtt should be near 50 ms (+delack), got {rtt}"
        );
    }

    #[test]
    fn sinkevents_trait_object_compiles() {
        // Connection enum works through the shared StreamEvents trait.
        let ev: Arc<dyn StreamEvents> = Arc::new(SinkEvents);
        let _ = ev;
    }

    #[test]
    fn dropping_last_client_handle_kills_flow_in_place() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client.clone(),
        )
        .unwrap();
        sim.run_for(Duration::from_secs(1));
        assert!(conn.is_established());
        let stack = conn.stack.clone();
        let h = conn.h;
        drop(conn);
        // The slot still exists (never reused), but the flow is dead and its
        // buffers are gone.
        let inner = stack.inner.lock();
        let flow = inner.flows.get(h).expect("slot is never removed");
        assert_eq!(flow.state, State::Closed);
        assert_eq!(flow.app_handles, 0);
        assert!(flow.events.is_none());
        assert!(inner.conn_index.is_empty() || !inner
            .conn_index
            .contains_key(&pair_key(flow.local, flow.peer)));
    }
}
