//! Packet-level simulated TCP (Reno with NewReno partial-ACK recovery).
//!
//! Implements the mechanisms responsible for TCP's behaviour in the paper's
//! experiments: slow start and AIMD congestion avoidance, fast
//! retransmit/fast recovery on triple duplicate ACKs, retransmission
//! timeouts with exponential backoff (RFC 6298-style RTT estimation via
//! timestamp echo), receiver flow control (advertised window bounded by the
//! receive buffer), and delayed ACKs.
//!
//! On clean low-RTT paths TCP fills the link; on high bandwidth-delay
//! product paths with random loss its average window follows the well-known
//! `MSS/(RTT·√p)` law, producing the sharp throughput drop-off of the
//! paper's Figure 9.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use kmsg_telemetry::{EventKind, Recorder};
use parking_lot::Mutex;

use crate::iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
use crate::network::{BindError, Network, PacketSink};
use crate::packet::{Endpoint, NodeId, Packet, PacketBody, WireProtocol};
use crate::time::SimTime;

/// TCP tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment payload in bytes.
    pub mss: usize,
    /// Send buffer capacity (unsent + unacknowledged bytes).
    pub send_buf: usize,
    /// Receive buffer capacity; bounds the advertised window.
    pub recv_buf: usize,
    /// Initial congestion window, in segments.
    pub initial_cwnd: usize,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Duration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: Duration,
    /// SYN retransmission attempts before the connect fails.
    pub syn_retries: u32,
    /// Consecutive retransmission timeouts on an established connection
    /// before the stack gives up and closes with `CloseReason::Timeout`
    /// (Linux `tcp_retries2` analog). Lower values make channel death — and
    /// thus middleware supervision — observable within short outages.
    pub max_consecutive_timeouts: u32,
    /// Delayed-ACK timer.
    pub delack_timeout: Duration,
    /// Fire `on_writable` on every acknowledgement that frees send-buffer
    /// space (not just when a blocked writer can resume). Lets middleware
    /// track delivery progress for acked-based notifications.
    pub ack_progress_events: bool,
    /// Test-only fault: skip the multiplicative decrease (and its
    /// `fast_recovery` telemetry event) when receiver-reported holes signal
    /// a fresh loss episode, while still fast-retransmitting the holes.
    /// This breaks Reno legality — fast retransmits appear without any
    /// recorded loss signal — and exists solely so `kmsg-oracle` tests can
    /// prove the TCP oracle catches it. Never enable outside tests.
    #[doc(hidden)]
    pub buggy_no_fast_recovery: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            send_buf: 4 * 1024 * 1024,
            recv_buf: 4 * 1024 * 1024,
            initial_cwnd: 10,
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
            syn_retries: 6,
            max_consecutive_timeouts: 15,
            delack_timeout: Duration::from_millis(40),
            ack_progress_events: true,
            buggy_no_fast_recovery: false,
        }
    }
}

/// TCP segment control flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegFlags {
    /// Synchronize: part of the connection handshake.
    pub syn: bool,
    /// The `ack` field is valid.
    pub ack: bool,
    /// Sender has no more data.
    pub fin: bool,
}

/// A TCP segment on the wire.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// First sequence number covered by this segment.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected byte).
    pub ack: u64,
    /// Control flags.
    pub flags: SegFlags,
    /// Advertised receive window in bytes.
    pub wnd: u64,
    /// Sender timestamp (for RTT estimation via echo).
    pub ts: SimTime,
    /// Echoed peer timestamp.
    pub ts_echo: Option<SimTime>,
    /// SACK-style hole report: `[from, to)` byte ranges the receiver is
    /// missing below its highest out-of-order data (capped at 16 ranges).
    pub holes: Vec<(u64, u64)>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Sequence space consumed by this segment (payload + SYN/FIN flags).
    #[must_use]
    pub fn seq_len(&self) -> u64 {
        self.payload.len() as u64
            + u64::from(self.flags.syn)
            + u64::from(self.flags.fin)
    }
}

/// Per-connection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpConnStats {
    /// Payload bytes accepted from the application.
    pub bytes_sent: u64,
    /// Payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Segments retransmitted (fast retransmit or timeout).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast-recovery episodes entered.
    pub fast_recoveries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SynSent,
    SynRcvd,
    Established,
    Closed,
}

#[derive(Debug)]
struct SentSeg {
    payload: Bytes,
    syn: bool,
    fin: bool,
    retransmitted: bool,
    last_rexmit: Option<SimTime>,
}

struct TcpInner {
    cfg: TcpConfig,
    state: State,
    local: Endpoint,
    peer: Endpoint,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    send_q: VecDeque<Bytes>,
    send_q_bytes: usize,
    unacked_bytes: usize,
    sent: BTreeMap<u64, SentSeg>,
    lost: BTreeSet<u64>,
    cwnd: f64,
    ssthresh: f64,
    peer_wnd: u64,
    in_recovery: bool,
    recover: u64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: Duration,
    rto_gen: u64,
    rto_armed: bool,
    consecutive_timeouts: u32,
    syn_retries_left: u32,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: u64,
    fin_acked: bool,

    // --- receive side ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: usize,
    ts_recent: Option<SimTime>,
    delack_pending: u32,
    delack_gen: u64,
    peer_fin_seq: Option<u64>,
    fin_received: bool,

    // --- notifications ---
    app_blocked: bool,
    connected_notified: bool,
    closed_notified: bool,

    stats: TcpConnStats,

    // --- telemetry ---
    /// Raw [`ConnectionId`] used to tag flight-recorder events.
    conn_id: u64,
    /// Recorder shared with the owning [`Sim`](crate::engine::Sim).
    rec: Recorder,
}

impl TcpInner {
    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn my_wnd(&self) -> u64 {
        (self.cfg.recv_buf.saturating_sub(self.ooo_bytes)) as u64
    }

    fn send_window(&self) -> u64 {
        (self.cwnd as u64).min(self.peer_wnd)
    }
}

enum Action {
    Send(TcpSegment),
    Deliver(Bytes),
    Connected,
    Writable,
    Closed(CloseReason),
    ArmRto(Duration, u64),
    ArmDelack(Duration, u64),
}

pub(crate) struct TcpShared {
    id: ConnectionId,
    net: Network,
    inner: Mutex<TcpInner>,
    events: Mutex<Option<Arc<dyn StreamEvents>>>,
}

/// A simulated TCP connection handle. Cloning refers to the same connection.
#[derive(Clone)]
pub struct TcpConn {
    shared: Arc<TcpShared>,
}

impl fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.shared.inner.lock();
        f.debug_struct("TcpConn")
            .field("id", &self.shared.id)
            .field("local", &inner.local)
            .field("peer", &inner.peer)
            .field("state", &inner.state)
            .finish()
    }
}

impl TcpShared {
    fn new_inner(
        cfg: TcpConfig,
        state: State,
        local: Endpoint,
        peer: Endpoint,
        conn_id: ConnectionId,
        rec: Recorder,
    ) -> TcpInner {
        let cwnd = (cfg.initial_cwnd * cfg.mss) as f64;
        TcpInner {
            state,
            local,
            peer,
            snd_una: 0,
            snd_nxt: 0,
            send_q: VecDeque::new(),
            send_q_bytes: 0,
            unacked_bytes: 0,
            sent: BTreeMap::new(),
            lost: BTreeSet::new(),
            cwnd,
            ssthresh: f64::INFINITY,
            peer_wnd: cfg.recv_buf as u64,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: Duration::from_secs(1),
            rto_gen: 0,
            rto_armed: false,
            consecutive_timeouts: 0,
            syn_retries_left: cfg.syn_retries,
            fin_queued: false,
            fin_sent: false,
            fin_seq: 0,
            fin_acked: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            ts_recent: None,
            delack_pending: 0,
            delack_gen: 0,
            peer_fin_seq: None,
            fin_received: false,
            app_blocked: false,
            connected_notified: false,
            closed_notified: false,
            stats: TcpConnStats::default(),
            conn_id: conn_id.raw(),
            rec,
            cfg,
        }
    }

    /// Runs `f` under the connection lock, then performs the produced
    /// actions without holding it.
    fn process<F>(self: &Arc<Self>, f: F)
    where
        F: FnOnce(&mut TcpInner, SimTime, &mut Vec<Action>),
    {
        let now = self.net.sim().now();
        let mut actions = Vec::new();
        {
            let mut inner = self.inner.lock();
            f(&mut inner, now, &mut actions);
        }
        self.perform(actions);
    }

    fn perform(self: &Arc<Self>, actions: Vec<Action>) {
        // Most batches are pure wire/timer work (segments out, RTO re-arm);
        // only touch the handler registration — and build the `Connection`
        // wrapper — when an action actually notifies the application.
        let needs_events = actions.iter().any(|a| {
            matches!(
                a,
                Action::Deliver(_) | Action::Connected | Action::Writable | Action::Closed(_)
            )
        });
        let (events, conn) = if needs_events {
            (
                self.events.lock().clone(),
                Some(Connection::Tcp(TcpConn {
                    shared: self.clone(),
                })),
            )
        } else {
            (None, None)
        };
        for action in actions {
            match action {
                Action::Send(seg) => {
                    let (src, dst) = {
                        let inner = self.inner.lock();
                        (inner.local, inner.peer)
                    };
                    let payload_len = seg.payload.len();
                    let pkt =
                        Packet::new(src, dst, WireProtocol::Tcp, payload_len, PacketBody::Tcp(seg));
                    self.net.send_packet(pkt);
                }
                Action::Deliver(data) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_data(conn, data);
                    }
                }
                Action::Connected => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_connected(conn);
                    }
                }
                Action::Writable => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_writable(conn);
                    }
                }
                Action::Closed(reason) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_closed(conn, reason);
                    }
                }
                Action::ArmRto(delay, gen) => {
                    let weak = Arc::downgrade(self);
                    self.net.sim().schedule_in(delay, move |_| {
                        if let Some(shared) = weak.upgrade() {
                            shared.on_rto_fired(gen);
                        }
                    });
                }
                Action::ArmDelack(delay, gen) => {
                    let weak = Arc::downgrade(self);
                    self.net.sim().schedule_in(delay, move |_| {
                        if let Some(shared) = weak.upgrade() {
                            shared.on_delack_fired(gen);
                        }
                    });
                }
            }
        }
    }

    fn on_rto_fired(self: &Arc<Self>, gen: u64) {
        self.process(|inner, now, out| {
            if gen != inner.rto_gen || !inner.rto_armed || inner.state == State::Closed {
                return;
            }
            inner.rto_armed = false;
            if inner.flight() == 0 {
                return;
            }
            inner.stats.timeouts += 1;
            inner.consecutive_timeouts += 1;
            if inner.state == State::SynSent || inner.state == State::SynRcvd {
                if inner.syn_retries_left == 0 {
                    inner.state = State::Closed;
                    if !inner.closed_notified {
                        inner.closed_notified = true;
                        out.push(Action::Closed(CloseReason::Timeout));
                    }
                    return;
                }
                inner.syn_retries_left -= 1;
            } else if inner.consecutive_timeouts > inner.cfg.max_consecutive_timeouts {
                // The peer is unreachable; give up like a real stack would.
                inner.state = State::Closed;
                if !inner.closed_notified {
                    inner.closed_notified = true;
                    out.push(Action::Closed(CloseReason::Timeout));
                }
                return;
            }
            // RFC 5681 timeout response.
            let flight = inner.flight() as f64;
            inner.ssthresh = (flight / 2.0).max((2 * inner.cfg.mss) as f64);
            inner.cwnd = inner.cfg.mss as f64;
            inner.in_recovery = true;
            inner.recover = inner.snd_nxt;
            inner.rto = (inner.rto * 2).min(inner.cfg.max_rto);
            inner.rec.record(
                now.as_nanos(),
                EventKind::TcpRto {
                    conn: inner.conn_id,
                    rto_us: inner.rto.as_micros() as u64,
                    consecutive: u64::from(inner.consecutive_timeouts),
                },
            );
            inner.rec.record(
                now.as_nanos(),
                EventKind::TcpCwnd {
                    conn: inner.conn_id,
                    cwnd: inner.cwnd,
                    ssthresh: inner.ssthresh,
                    cause: "rto",
                },
            );
            if inner.state == State::Established {
                // Go-back-N style: everything unacknowledged is presumed
                // lost; retransmission is paced by returning ACKs.
                let unacked: Vec<u64> = inner.sent.keys().copied().collect();
                inner.lost.extend(unacked);
                resend_lost(inner, now, out);
            } else {
                retransmit_first(inner, now, out);
            }
            arm_rto(inner, out);
        });
    }

    fn on_delack_fired(self: &Arc<Self>, gen: u64) {
        self.process(|inner, now, out| {
            if gen != inner.delack_gen || inner.delack_pending == 0 || inner.state == State::Closed
            {
                return;
            }
            inner.delack_pending = 0;
            inner.delack_gen += 1;
            out.push(Action::Send(pure_ack(inner, now)));
        });
    }

    fn handle_segment(self: &Arc<Self>, seg: TcpSegment) {
        self.process(|inner, now, out| match inner.state {
            State::Closed => {
                // Re-acknowledge a retransmitted FIN so the peer can finish.
                if seg.flags.fin {
                    out.push(Action::Send(pure_ack(inner, now)));
                }
            }
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack >= 1 {
                    complete_handshake_active(inner, &seg, now, out);
                }
            }
            State::SynRcvd => {
                if seg.flags.ack && seg.ack >= 1 {
                    inner.state = State::Established;
                    inner.snd_una = seg.ack.max(inner.snd_una);
                    inner.sent.retain(|seq, _| *seq >= inner.snd_una);
                    inner.peer_wnd = seg.wnd;
                    // A completed handshake breaks any SYN timeout streak;
                    // without this reset the first post-handshake RTO would
                    // report `consecutive > 1` against a freshly measured
                    // RTO, which violates the doubling invariant the
                    // oracle checks.
                    inner.consecutive_timeouts = 0;
                    disarm_rto(inner);
                    if !inner.connected_notified {
                        inner.connected_notified = true;
                        out.push(Action::Connected);
                    }
                    // The final handshake ACK may carry data.
                    if !seg.payload.is_empty() || seg.flags.fin {
                        receive_data(inner, seg, now, out);
                    }
                    try_send(inner, now, out);
                } else if seg.flags.syn && !seg.flags.ack {
                    // Duplicate SYN: retransmit SYN-ACK.
                    retransmit_first(inner, now, out);
                }
            }
            State::Established => {
                if seg.flags.ack {
                    process_ack(inner, &seg, now, out);
                    resend_lost(inner, now, out);
                }
                if !seg.payload.is_empty() || seg.flags.fin {
                    receive_data(inner, seg, now, out);
                }
                try_send(inner, now, out);
                maybe_close(inner, out);
            }
        });
    }
}

fn complete_handshake_active(
    inner: &mut TcpInner,
    seg: &TcpSegment,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    inner.state = State::Established;
    inner.snd_una = seg.ack;
    inner.sent.clear();
    inner.rcv_nxt = seg.seq + 1;
    inner.peer_wnd = seg.wnd;
    // SYN timeout streaks do not carry into the established connection
    // (same reasoning as the SynRcvd transition).
    inner.consecutive_timeouts = 0;
    inner.ts_recent = Some(seg.ts);
    if let Some(echo) = seg.ts_echo {
        update_rtt(inner, now, echo);
    }
    disarm_rto(inner);
    inner.connected_notified = true;
    out.push(Action::Connected);
    // Pure ACK completes the handshake; data may follow immediately.
    out.push(Action::Send(pure_ack(inner, now)));
    try_send(inner, now, out);
}

fn update_rtt(inner: &mut TcpInner, now: SimTime, echo: SimTime) {
    let sample = now.duration_since(echo).as_secs_f64();
    match inner.srtt {
        None => {
            inner.srtt = Some(sample);
            inner.rttvar = sample / 2.0;
        }
        Some(srtt) => {
            let err = (sample - srtt).abs();
            inner.rttvar = 0.75 * inner.rttvar + 0.25 * err;
            inner.srtt = Some(0.875 * srtt + 0.125 * sample);
        }
    }
    let rto = inner.srtt.unwrap_or(1.0) + 4.0 * inner.rttvar;
    inner.rto = Duration::from_secs_f64(rto)
        .max(inner.cfg.min_rto)
        .min(inner.cfg.max_rto);
}

fn pure_ack(inner: &TcpInner, now: SimTime) -> TcpSegment {
    TcpSegment {
        seq: inner.snd_nxt,
        ack: inner.rcv_nxt,
        flags: SegFlags {
            syn: false,
            ack: true,
            fin: false,
        },
        wnd: inner.my_wnd(),
        ts: now,
        ts_echo: inner.ts_recent,
        holes: compute_holes(inner),
        payload: Bytes::new(),
    }
}

/// The receiver's missing `[from, to)` byte ranges below its highest
/// buffered out-of-order segment (capped at 16).
fn compute_holes(inner: &TcpInner) -> Vec<(u64, u64)> {
    let mut holes = Vec::new();
    let mut expect = inner.rcv_nxt;
    for (&seq, data) in &inner.ooo {
        if seq > expect {
            holes.push((expect, seq));
            if holes.len() == 16 {
                break;
            }
        }
        expect = expect.max(seq + data.len() as u64);
    }
    holes
}

fn arm_rto(inner: &mut TcpInner, out: &mut Vec<Action>) {
    inner.rto_gen += 1;
    inner.rto_armed = true;
    out.push(Action::ArmRto(inner.rto, inner.rto_gen));
}

fn disarm_rto(inner: &mut TcpInner) {
    inner.rto_gen += 1;
    inner.rto_armed = false;
}

fn retransmit_first(inner: &mut TcpInner, now: SimTime, out: &mut Vec<Action>) {
    let wnd = inner.my_wnd();
    let rcv_nxt = inner.rcv_nxt;
    let ts_echo = inner.ts_recent;
    let is_syn_sent = inner.state == State::SynSent;
    let Some((&seq, seg)) = inner.sent.iter_mut().next() else {
        return;
    };
    seg.retransmitted = true;
    let segment = TcpSegment {
        seq,
        ack: rcv_nxt,
        flags: SegFlags {
            syn: seg.syn,
            ack: !is_syn_sent,
            fin: seg.fin,
        },
        wnd,
        ts: now,
        ts_echo,
        holes: Vec::new(),
        payload: seg.payload.clone(),
    };
    inner.stats.retransmits += 1;
    inner.rec.record(
        now.as_nanos(),
        EventKind::TcpRetransmit {
            conn: inner.conn_id,
            seq,
            fast: false,
        },
    );
    out.push(Action::Send(segment));
}

fn process_ack(inner: &mut TcpInner, seg: &TcpSegment, now: SimTime, out: &mut Vec<Action>) {
    inner.peer_wnd = seg.wnd;
    note_holes(inner, &seg.holes, now);
    if seg.ack > inner.snd_una {
        let newly = seg.ack - inner.snd_una;
        inner.snd_una = seg.ack;
        inner.consecutive_timeouts = 0;
        // Remove fully acknowledged segments.
        let still_unacked = inner.sent.split_off(&seg.ack);
        let acked: u64 = inner
            .sent
            .values()
            .map(|s| s.payload.len() as u64)
            .sum();
        inner.sent = still_unacked;
        inner.unacked_bytes = inner.unacked_bytes.saturating_sub(acked as usize);
        inner.stats.bytes_acked += acked;
        if let Some(echo) = seg.ts_echo {
            update_rtt(inner, now, echo);
        }
        if inner.fin_sent && seg.ack > inner.fin_seq {
            inner.fin_acked = true;
        }
        // Drop stale loss markers.
        let cleared: Vec<u64> = inner.lost.range(..seg.ack).copied().collect();
        for s in cleared {
            inner.lost.remove(&s);
        }
        if inner.in_recovery && inner.snd_una >= inner.recover {
            inner.in_recovery = false;
            inner.cwnd = inner.cwnd.min(inner.ssthresh.max((2 * inner.cfg.mss) as f64));
            inner.rec.record(
                now.as_nanos(),
                EventKind::TcpCwnd {
                    conn: inner.conn_id,
                    cwnd: inner.cwnd,
                    ssthresh: inner.ssthresh,
                    cause: "recovery_exit",
                },
            );
        }
        let mss = inner.cfg.mss as f64;
        if inner.cwnd < inner.ssthresh {
            // Slow start with appropriate byte counting.
            inner.cwnd += (newly as f64).min(mss);
        } else {
            inner.cwnd += mss * mss / inner.cwnd;
        }
        if inner.flight() > 0 {
            arm_rto(inner, out);
        } else {
            disarm_rto(inner);
        }
        if inner.cfg.ack_progress_events && acked > 0 {
            inner.app_blocked = false;
            out.push(Action::Writable);
        } else {
            maybe_writable(inner, out);
        }
    }
}

/// Registers receiver-reported holes as lost segments (once per ~RTT per
/// segment) and reacts with one multiplicative decrease per loss episode.
fn note_holes(inner: &mut TcpInner, holes: &[(u64, u64)], now: SimTime) {
    if holes.is_empty() {
        return;
    }
    let srtt = inner.srtt.unwrap_or(0.1);
    let reinsert_after = Duration::from_secs_f64((srtt * 1.2).max(0.005));
    let mut fresh_loss = false;
    for &(from, to) in holes {
        let seqs: Vec<u64> = inner.sent.range(from..to).map(|(s, _)| *s).collect();
        for seq in seqs {
            if seq < inner.snd_una || inner.lost.contains(&seq) {
                continue;
            }
            let seg = inner.sent.get(&seq).expect("seq from range");
            let eligible = seg
                .last_rexmit
                .is_none_or(|t| now.duration_since(t) >= reinsert_after);
            if eligible {
                inner.lost.insert(seq);
                if seg.last_rexmit.is_none() {
                    fresh_loss = true;
                }
            }
        }
    }
    if fresh_loss && !inner.in_recovery && !inner.cfg.buggy_no_fast_recovery {
        inner.in_recovery = true;
        inner.recover = inner.snd_nxt;
        let flight = inner.flight() as f64;
        inner.ssthresh = (flight / 2.0).max((2 * inner.cfg.mss) as f64);
        inner.cwnd = inner.ssthresh;
        inner.stats.fast_recoveries += 1;
        inner.rec.record(
            now.as_nanos(),
            EventKind::TcpCwnd {
                conn: inner.conn_id,
                cwnd: inner.cwnd,
                ssthresh: inner.ssthresh,
                cause: "fast_recovery",
            },
        );
    }
}

/// Retransmits queued-lost segments, paced by the congestion window: each
/// invocation (i.e. each returning ACK) may resend up to `cwnd/4` worth of
/// segments, so recovery self-clocks and ramps with slow start after an RTO.
fn resend_lost(inner: &mut TcpInner, now: SimTime, out: &mut Vec<Action>) {
    let budget = ((inner.cwnd / inner.cfg.mss as f64 / 4.0) as usize).max(1);
    let mut sent = 0;
    while sent < budget {
        let Some(&seq) = inner.lost.iter().next() else {
            break;
        };
        inner.lost.remove(&seq);
        if seq < inner.snd_una {
            continue;
        }
        let wnd = inner.my_wnd();
        let rcv_nxt = inner.rcv_nxt;
        let ts_echo = inner.ts_recent;
        let Some(seg) = inner.sent.get_mut(&seq) else {
            continue;
        };
        seg.retransmitted = true;
        seg.last_rexmit = Some(now);
        let segment = TcpSegment {
            seq,
            ack: rcv_nxt,
            flags: SegFlags {
                syn: seg.syn,
                ack: true,
                fin: seg.fin,
            },
            wnd,
            ts: now,
            ts_echo,
            holes: Vec::new(),
            payload: seg.payload.clone(),
        };
        inner.stats.retransmits += 1;
        inner.rec.record(
            now.as_nanos(),
            EventKind::TcpRetransmit {
                conn: inner.conn_id,
                seq,
                fast: true,
            },
        );
        out.push(Action::Send(segment));
        sent += 1;
    }
}

fn receive_data(inner: &mut TcpInner, seg: TcpSegment, now: SimTime, out: &mut Vec<Action>) {
    let plen = seg.payload.len();
    if seg.flags.fin {
        inner.peer_fin_seq = Some(seg.seq + plen as u64);
    }
    let seq = seg.seq;
    if plen > 0 {
        if seq == inner.rcv_nxt {
            inner.ts_recent = Some(seg.ts);
            inner.rcv_nxt += plen as u64;
            inner.stats.bytes_delivered += plen as u64;
            // The segment is consumed here, so its payload handle moves
            // straight into the delivery without a refcount round-trip.
            out.push(Action::Deliver(seg.payload));
            // Drain any now-contiguous out-of-order data.
            while let Some(entry) = inner.ooo.first_entry() {
                if *entry.key() != inner.rcv_nxt {
                    break;
                }
                let data = entry.remove();
                inner.ooo_bytes -= data.len();
                inner.rcv_nxt += data.len() as u64;
                inner.stats.bytes_delivered += data.len() as u64;
                out.push(Action::Deliver(data));
            }
            schedule_ack(inner, now, out, false);
        } else if seq > inner.rcv_nxt {
            // Out of order: buffer if the receive buffer allows, dup-ACK
            // immediately either way.
            if !inner.ooo.contains_key(&seq) && inner.ooo_bytes + plen <= inner.cfg.recv_buf {
                inner.ooo_bytes += plen;
                inner.ooo.insert(seq, seg.payload);
            }
            schedule_ack(inner, now, out, true);
        } else {
            // Duplicate of already-delivered data.
            schedule_ack(inner, now, out, true);
        }
    }
    if let Some(fin_seq) = inner.peer_fin_seq {
        if inner.rcv_nxt == fin_seq && !inner.fin_received {
            inner.fin_received = true;
            inner.rcv_nxt += 1;
            schedule_ack(inner, now, out, true);
        }
    }
}

fn schedule_ack(inner: &mut TcpInner, now: SimTime, out: &mut Vec<Action>, immediate: bool) {
    if immediate || inner.delack_pending >= 1 {
        inner.delack_pending = 0;
        inner.delack_gen += 1;
        out.push(Action::Send(pure_ack(inner, now)));
    } else {
        inner.delack_pending += 1;
        inner.delack_gen += 1;
        out.push(Action::ArmDelack(inner.cfg.delack_timeout, inner.delack_gen));
    }
}

fn try_send(inner: &mut TcpInner, now: SimTime, out: &mut Vec<Action>) {
    if inner.state != State::Established {
        return;
    }
    loop {
        let wnd = inner.send_window();
        if inner.flight() >= wnd {
            break;
        }
        if inner.send_q.is_empty() {
            if inner.fin_queued && !inner.fin_sent {
                let seg = TcpSegment {
                    seq: inner.snd_nxt,
                    ack: inner.rcv_nxt,
                    flags: SegFlags {
                        syn: false,
                        ack: true,
                        fin: true,
                    },
                    wnd: inner.my_wnd(),
                    ts: now,
                    ts_echo: inner.ts_recent,
                    holes: Vec::new(),
                    payload: Bytes::new(),
                };
                inner.fin_seq = inner.snd_nxt;
                inner.fin_sent = true;
                inner.sent.insert(
                    inner.snd_nxt,
                    SentSeg {
                        payload: Bytes::new(),
                        syn: false,
                        fin: true,
                        retransmitted: false,
                        last_rexmit: None,
                    },
                );
                inner.snd_nxt += 1;
                out.push(Action::Send(seg));
            }
            break;
        }
        let head = inner.send_q.front_mut().expect("non-empty send queue");
        let take = head.len().min(inner.cfg.mss);
        let payload = head.split_to(take);
        if head.is_empty() {
            inner.send_q.pop_front();
        }
        inner.send_q_bytes -= take;
        let seg = TcpSegment {
            seq: inner.snd_nxt,
            ack: inner.rcv_nxt,
            flags: SegFlags {
                syn: false,
                ack: true,
                fin: false,
            },
            wnd: inner.my_wnd(),
            ts: now,
            ts_echo: inner.ts_recent,
            holes: Vec::new(),
            payload: payload.clone(),
        };
        inner.sent.insert(
            inner.snd_nxt,
            SentSeg {
                payload,
                syn: false,
                fin: false,
                retransmitted: false,
                last_rexmit: None,
            },
        );
        inner.snd_nxt += take as u64;
        out.push(Action::Send(seg));
    }
    if inner.flight() > 0 && !inner.rto_armed {
        arm_rto(inner, out);
    }
}

fn maybe_writable(inner: &mut TcpInner, out: &mut Vec<Action>) {
    // `unacked_bytes` counts everything accepted but not yet acknowledged
    // (queued + in flight), i.e. the occupied send buffer.
    if inner.app_blocked
        && inner.cfg.send_buf.saturating_sub(inner.unacked_bytes) >= inner.cfg.mss
    {
        inner.app_blocked = false;
        out.push(Action::Writable);
    }
}

fn maybe_close(inner: &mut TcpInner, out: &mut Vec<Action>) {
    if inner.closed_notified || inner.state == State::Closed {
        return;
    }
    let local_done = !inner.fin_queued || inner.fin_acked;
    if inner.fin_received && local_done {
        inner.state = State::Closed;
        inner.closed_notified = true;
        disarm_rto(inner);
        out.push(Action::Closed(CloseReason::Normal));
    } else if inner.fin_queued && inner.fin_acked && !inner.fin_received {
        // We initiated and the peer acknowledged; linger until the peer's
        // FIN or just report closure (simplified half-close).
        inner.state = State::Closed;
        inner.closed_notified = true;
        disarm_rto(inner);
        out.push(Action::Closed(CloseReason::Normal));
    }
}

struct ConnSink {
    shared: Weak<TcpShared>,
}

impl PacketSink for ConnSink {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        if let Some(shared) = self.shared.upgrade() {
            if let PacketBody::Tcp(seg) = pkt.body {
                shared.handle_segment(seg);
            }
        }
    }
}

impl TcpConn {
    /// Opens a connection from an ephemeral port on `node` to `dst`.
    ///
    /// The SYN is sent immediately; [`StreamEvents::on_connected`] fires
    /// when the handshake completes.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if no local port could be bound (exhausted
    /// ephemeral range).
    pub fn connect(
        net: &Network,
        node: NodeId,
        dst: Endpoint,
        cfg: TcpConfig,
        events: Arc<dyn StreamEvents>,
    ) -> Result<TcpConn, BindError> {
        let port = net.alloc_ephemeral_port(node);
        let local = Endpoint::new(node, port);
        let id = ConnectionId::fresh(net.sim());
        let shared = Arc::new(TcpShared {
            id,
            net: net.clone(),
            inner: Mutex::new(TcpShared::new_inner(
                cfg,
                State::SynSent,
                local,
                dst,
                id,
                net.sim().recorder().clone(),
            )),
            events: Mutex::new(Some(events)),
        });
        let sink = Arc::new(ConnSink {
            shared: Arc::downgrade(&shared),
        });
        net.bind(node, WireProtocol::Tcp, port, sink)?;
        // Send SYN.
        shared.process(|inner, now, out| {
            let seg = TcpSegment {
                seq: 0,
                ack: 0,
                flags: SegFlags {
                    syn: true,
                    ack: false,
                    fin: false,
                },
                wnd: inner.my_wnd(),
                ts: now,
                ts_echo: None,
                holes: Vec::new(),
                payload: Bytes::new(),
            };
            inner.sent.insert(
                0,
                SentSeg {
                    payload: Bytes::new(),
                    syn: true,
                    fin: false,
                    retransmitted: false,
                    last_rexmit: None,
                },
            );
            inner.snd_nxt = 1;
            out.push(Action::Send(seg));
            arm_rto(inner, out);
        });
        Ok(TcpConn { shared })
    }

    /// The connection id.
    #[must_use]
    pub fn id(&self) -> ConnectionId {
        self.shared.id
    }

    /// Local endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.shared.inner.lock().local
    }

    /// Remote endpoint.
    #[must_use]
    pub fn peer(&self) -> Endpoint {
        self.shared.inner.lock().peer
    }

    /// Whether the handshake completed and the connection is open.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.shared.inner.lock().state == State::Established
    }

    /// Appends bytes to the send buffer; returns how many were accepted.
    pub fn send(&self, data: Bytes) -> usize {
        let mut accepted = 0;
        self.shared.process(|inner, now, out| {
            if inner.state == State::Closed || inner.fin_queued {
                return;
            }
            let space = inner.cfg.send_buf.saturating_sub(inner.unacked_bytes);
            let take = space.min(data.len());
            if take < data.len() {
                inner.app_blocked = true;
            }
            if take > 0 {
                let chunk = data.slice(0..take);
                inner.send_q_bytes += take;
                inner.unacked_bytes += take;
                inner.stats.bytes_sent += take as u64;
                inner.send_q.push_back(chunk);
                try_send(inner, now, out);
            }
            accepted = take;
        });
        accepted
    }

    /// Free space in the send buffer.
    #[must_use]
    pub fn free_send_buffer(&self) -> usize {
        let inner = self.shared.inner.lock();
        inner.cfg.send_buf.saturating_sub(inner.unacked_bytes)
    }

    /// Bytes accepted but not yet acknowledged by the peer (queued + in
    /// flight).
    #[must_use]
    pub fn unacked_bytes(&self) -> usize {
        self.shared.inner.lock().unacked_bytes
    }

    /// Cumulative payload bytes acknowledged by the peer.
    #[must_use]
    pub fn acked_bytes(&self) -> u64 {
        self.shared.inner.lock().stats.bytes_acked
    }

    /// Smoothed RTT estimate, if any ACK carried a timestamp echo yet.
    #[must_use]
    pub fn rtt_estimate(&self) -> Option<Duration> {
        self.shared.inner.lock().srtt.map(Duration::from_secs_f64)
    }

    /// Orderly close: a FIN is sent after all buffered data.
    pub fn close(&self) {
        self.shared.process(|inner, now, out| {
            if inner.fin_queued || inner.state == State::Closed {
                return;
            }
            inner.fin_queued = true;
            try_send(inner, now, out);
        });
    }

    /// Per-connection counters.
    #[must_use]
    pub fn stats(&self) -> TcpConnStats {
        self.shared.inner.lock().stats
    }

    /// Current congestion window in bytes (diagnostics).
    #[must_use]
    pub fn cwnd(&self) -> f64 {
        self.shared.inner.lock().cwnd
    }
}

struct ListenerShared {
    net: Network,
    local: Endpoint,
    cfg: TcpConfig,
    handler: Arc<dyn StreamAccept>,
    conns: Mutex<std::collections::HashMap<Endpoint, Arc<TcpShared>>>,
}

/// A TCP listening socket that accepts incoming connections.
#[derive(Clone)]
pub struct TcpListener {
    shared: Arc<ListenerShared>,
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpListener")
            .field("local", &self.shared.local)
            .finish()
    }
}

struct ListenerSink {
    shared: Weak<ListenerShared>,
}

impl PacketSink for ListenerSink {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        let Some(listener) = self.shared.upgrade() else {
            return;
        };
        let PacketBody::Tcp(seg) = pkt.body else {
            return;
        };
        let existing = listener.conns.lock().get(&pkt.src).cloned();
        if let Some(conn) = existing {
            conn.handle_segment(seg);
            return;
        }
        if !seg.flags.syn || seg.flags.ack {
            return; // stray non-SYN for an unknown connection
        }
        // Passive open.
        let id = ConnectionId::fresh(listener.net.sim());
        let shared = Arc::new(TcpShared {
            id,
            net: listener.net.clone(),
            inner: Mutex::new(TcpShared::new_inner(
                listener.cfg.clone(),
                State::SynRcvd,
                listener.local,
                pkt.src,
                id,
                listener.net.sim().recorder().clone(),
            )),
            events: Mutex::new(None),
        });
        let conn = Connection::Tcp(TcpConn {
            shared: shared.clone(),
        });
        let events = listener.handler.on_accept(&conn);
        *shared.events.lock() = Some(events);
        listener.conns.lock().insert(pkt.src, shared.clone());
        shared.process(|inner, now, out| {
            inner.rcv_nxt = seg.seq + 1;
            inner.ts_recent = Some(seg.ts);
            inner.peer_wnd = seg.wnd;
            let synack = TcpSegment {
                seq: 0,
                ack: inner.rcv_nxt,
                flags: SegFlags {
                    syn: true,
                    ack: true,
                    fin: false,
                },
                wnd: inner.my_wnd(),
                ts: now,
                ts_echo: inner.ts_recent,
                holes: Vec::new(),
                payload: Bytes::new(),
            };
            inner.sent.insert(
                0,
                SentSeg {
                    payload: Bytes::new(),
                    syn: true,
                    fin: false,
                    retransmitted: false,
                    last_rexmit: None,
                },
            );
            inner.snd_nxt = 1;
            out.push(Action::Send(synack));
            arm_rto(inner, out);
        });
    }
}

impl TcpListener {
    /// Binds a listener on `node`/`port`; `handler.on_accept` is invoked for
    /// every new peer.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the port is taken.
    pub fn bind(
        net: &Network,
        node: NodeId,
        port: u16,
        cfg: TcpConfig,
        handler: Arc<dyn StreamAccept>,
    ) -> Result<TcpListener, BindError> {
        let shared = Arc::new(ListenerShared {
            net: net.clone(),
            local: Endpoint::new(node, port),
            cfg,
            handler,
            conns: Mutex::new(std::collections::HashMap::new()),
        });
        let sink = Arc::new(ListenerSink {
            shared: Arc::downgrade(&shared),
        });
        net.bind(node, WireProtocol::Tcp, port, sink)?;
        Ok(TcpListener { shared })
    }

    /// The listening endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.shared.local
    }

    /// Number of connections this listener has accepted (and not forgotten).
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::link::LinkConfig;
    use crate::testutil::{PatternSender, Recorder, SinkEvents};

    fn setup(link: LinkConfig) -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(11);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, link);
        (sim, net, a, b)
    }

    struct AcceptRecorder {
        rec: Arc<Recorder>,
    }
    impl StreamAccept for AcceptRecorder {
        fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
            self.rec.clone()
        }
    }

    #[test]
    fn handshake_completes() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _listener = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client.clone(),
        )
        .unwrap();
        assert!(!conn.is_established());
        sim.run_for(Duration::from_secs(1));
        assert!(conn.is_established());
        assert_eq!(client.connected(), 1);
        assert_eq!(server.connected(), 1);
    }

    #[test]
    fn small_transfer_delivers_in_order() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client,
        )
        .unwrap();
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let accepted = conn.send(Bytes::from(msg.clone()));
        assert_eq!(accepted, msg.len());
        sim.run_for(Duration::from_secs(2));
        assert_eq!(server.data(), msg);
        assert_eq!(conn.stats().retransmits, 0);
    }

    #[test]
    fn bulk_transfer_reaches_link_rate_on_clean_path() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let total = 20_000_000usize; // 20 MB over a 10 MB/s link: ~2 s
        let pump = PatternSender::new(&sim, total);
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump)
            .unwrap();
        let _ = conn;
        sim.run_for(Duration::from_secs(10));
        assert_eq!(server.data_len(), total, "all bytes must arrive");
        let rate = server.goodput();
        assert!(
            rate > 8e6 && rate <= 10.2e6,
            "clean-path TCP should run near line rate, got {rate:.0} B/s"
        );
    }

    #[test]
    fn recovers_from_random_loss() {
        let (sim, net, a, b) = setup(
            LinkConfig::new(10e6, Duration::from_millis(10)).random_loss(0.01),
        );
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let total = 2_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn =
            TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump).unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total, "reliable despite 1% loss");
        assert!(conn.stats().retransmits > 0, "loss must trigger retransmits");
        assert!(server.in_order(), "delivery must stay in order");
    }

    #[test]
    fn receiver_window_caps_throughput_at_high_rtt() {
        // 125 MB/s link, 100 ms RTT, 256 KiB receive buffer:
        // max ~2.56 MB/s, far below the link rate.
        let cfg = TcpConfig {
            recv_buf: 256 * 1024,
            ..TcpConfig::default()
        };
        let (sim, net, a, b) = setup(LinkConfig::new(125e6, Duration::from_millis(50)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            cfg.clone(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let total = 10_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, pump).unwrap();
        let _ = conn;
        sim.run_for(Duration::from_secs(30));
        assert_eq!(server.data_len(), total);
        let rate = server.goodput();
        assert!(
            rate < 3.5e6,
            "window-capped flow must stay near wnd/RTT (~2.6 MB/s), got {rate:.0}"
        );
    }

    #[test]
    fn send_buffer_backpressure_and_writable() {
        let cfg = TcpConfig {
            send_buf: 64 * 1024,
            ..TcpConfig::default()
        };
        let (sim, net, a, b) = setup(LinkConfig::new(1e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, client.clone()).unwrap();
        sim.run_for(Duration::from_millis(100));
        let big = Bytes::from(vec![7u8; 200 * 1024]);
        let accepted = conn.send(big);
        assert!(accepted < 200 * 1024, "send buffer must refuse the excess");
        assert!(accepted >= 63 * 1024);
        sim.run_for(Duration::from_secs(5));
        assert!(client.writable() > 0, "writable notification expected");
    }

    #[test]
    fn close_notifies_both_sides() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(2)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server.clone() }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client.clone(),
        )
        .unwrap();
        conn.send(Bytes::from_static(b"bye"));
        conn.close();
        sim.run_for(Duration::from_secs(5));
        assert_eq!(server.data(), b"bye");
        assert!(server.closed() >= 1, "server should observe the close");
        assert!(client.closed() >= 1, "client should observe FIN-ACK close");
    }

    #[test]
    fn connect_to_black_hole_times_out() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(2)));
        let client = Arc::new(Recorder::default());
        let cfg = TcpConfig {
            syn_retries: 2,
            ..TcpConfig::default()
        };
        let conn = TcpConn::connect(&net, a, Endpoint::new(b, 81), cfg, client.clone()).unwrap();
        sim.run_for(Duration::from_secs(120));
        assert!(!conn.is_established());
        assert_eq!(client.closed(), 1, "connect failure reported as close");
    }

    #[test]
    fn rtt_estimate_tracks_path() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(25)));
        let server = Arc::new(Recorder::default());
        let _l = TcpListener::bind(
            &net,
            b,
            80,
            TcpConfig::default(),
            Arc::new(AcceptRecorder { rec: server }),
        )
        .unwrap();
        let client = Arc::new(Recorder::default());
        let conn = TcpConn::connect(
            &net,
            a,
            Endpoint::new(b, 80),
            TcpConfig::default(),
            client,
        )
        .unwrap();
        conn.send(Bytes::from(vec![1u8; 100_000]));
        sim.run_for(Duration::from_secs(3));
        let rtt = conn.rtt_estimate().expect("rtt sampled").as_secs_f64();
        assert!(
            (0.04..0.2).contains(&rtt),
            "srtt should be near 50 ms (+delack), got {rtt}"
        );
    }

    #[test]
    fn sinkevents_trait_object_compiles() {
        // Connection enum works through the shared StreamEvents trait.
        let ev: Arc<dyn StreamEvents> = Arc::new(SinkEvents);
        let _ = ev;
    }
}
