//! Virtual time for the discrete-event simulation.
//!
//! [`SimTime`] is an instant on the simulation clock, measured in nanoseconds
//! since the start of the simulation. Durations are expressed with the
//! standard [`std::time::Duration`] so that simulation code reads like
//! ordinary time-based code.
//!
//! # Examples
//!
//! ```
//! use kmsg_netsim::time::SimTime;
//! use std::time::Duration;
//!
//! let t0 = SimTime::ZERO;
//! let t1 = t0 + Duration::from_millis(5);
//! assert_eq!(t1.duration_since(t0), Duration::from_millis(5));
//! assert!(t1 > t0);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation clock (nanoseconds since simulation start).
///
/// `SimTime` is a monotonically non-decreasing virtual clock value. It is
/// `Copy` and cheap to pass around. Arithmetic with [`Duration`] is provided
/// via the standard operator traits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a `SimTime` from whole seconds since simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a `SimTime` from whole milliseconds since simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a `SimTime` from whole microseconds since simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a `SimTime` from fractional seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid simulation time");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed from `earlier` to `self`.
    ///
    /// Saturates to zero if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(duration_to_nanos(rhs))
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
    }

    #[test]
    fn add_assign_duration() {
        let mut t = SimTime::ZERO;
        t += Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 3_000);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.duration_since(a), Duration::from_secs(1));
        assert_eq!(a.duration_since(b), Duration::ZERO);
        assert_eq!(a - b, Duration::ZERO);
    }

    #[test]
    fn from_millis_and_micros() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_millis(1_000), SimTime::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(SimTime::MAX.saturating_add(Duration::from_secs(1)), SimTime::MAX);
    }
}
