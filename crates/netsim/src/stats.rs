//! Statistics utilities shared by the simulator and the experiment harness.
//!
//! Provides Welford online mean/variance ([`OnlineStats`]), five-number
//! summaries with percentiles ([`Summary`]), 95% confidence intervals for the
//! sample mean (as used for the paper's Figure 9 error bars), and a windowed
//! [`ThroughputMeter`] / [`TimeSeries`] recorder for the time-resolved plots
//! (Figures 2 and 4–6).

use std::time::Duration;

use crate::time::SimTime;

/// Online mean / variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use kmsg_netsim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.stddev() - 2.138).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Relative standard error (stderr / |mean|); infinite for a zero mean.
    ///
    /// The paper repeats runs "until the relative standard error dropped
    /// below 10% of the sample mean".
    #[must_use]
    pub fn relative_stderr(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.stderr() / m.abs()
        }
    }

    /// Half-width of the 95% confidence interval for the mean, using
    /// Student's t critical value for the sample size.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_critical_95((self.n - 1) as usize) * self.stderr()
    }

    /// Smallest sample seen (NaN-free; +inf if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (-inf if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        n if n <= 30 => TABLE[n - 1],
        n if n <= 60 => 2.02,
        n if n <= 120 => 1.98,
        _ => 1.96,
    }
}

/// Five-number summary (min / p25 / median / p75 / max) plus mean, over a
/// batch of samples. Used for the paper's Figure 1 box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes the summary of `samples`, or `None` when `samples` is
    /// empty (there is no meaningful five-number summary of nothing).
    ///
    /// # Panics
    ///
    /// Panics if `samples` contains NaN.
    #[must_use]
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.5),
            p75: percentile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean,
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice, `q` in
/// `[0, 1]`. Returns 0.0 for an empty slice (documented sentinel, so
/// report-generation code never panics on a dataset that produced no
/// samples).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile rank out of range");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Measures throughput by accumulating byte counts and reporting windowed
/// rates at sampling instants.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    window_start: SimTime,
    bytes_in_window: u64,
    total_bytes: u64,
    start: SimTime,
}

impl ThroughputMeter {
    /// Creates a meter whose first window starts at `now`.
    #[must_use]
    pub fn new(now: SimTime) -> Self {
        ThroughputMeter {
            window_start: now,
            bytes_in_window: 0,
            total_bytes: 0,
            start: now,
        }
    }

    /// Records `bytes` delivered.
    pub fn record(&mut self, bytes: u64) {
        self.bytes_in_window += bytes;
        self.total_bytes += bytes;
    }

    /// Closes the current window at `now`, returning its throughput in
    /// bytes/second, and starts a new window.
    pub fn sample_window(&mut self, now: SimTime) -> f64 {
        let dt = now.duration_since(self.window_start).as_secs_f64();
        let rate = if dt > 0.0 {
            self.bytes_in_window as f64 / dt
        } else {
            0.0
        };
        self.window_start = now;
        self.bytes_in_window = 0;
        rate
    }

    /// Total bytes recorded since creation.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Average throughput since creation, in bytes/second.
    #[must_use]
    pub fn average(&self, now: SimTime) -> f64 {
        let dt = now.duration_since(self.start).as_secs_f64();
        if dt > 0.0 {
            self.total_bytes as f64 / dt
        } else {
            0.0
        }
    }
}

/// A recorded time series of (time, value) points, e.g. throughput per
/// second for the Figure 2/4/5/6 plots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Times should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The recorded points in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values in the half-open time interval `[from, to)`.
    /// Returns `None` if no points fall in the interval.
    #[must_use]
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut stats = OnlineStats::new();
        for &(t, v) in &self.points {
            if t >= from && t < to {
                stats.push(v);
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }
}

/// Formats a rate in bytes/second as a human-readable MB/s string.
#[must_use]
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    format!("{:8.3} MB/s", bytes_per_sec / 1e6)
}

/// Formats a duration as milliseconds with three decimals.
#[must_use]
pub fn fmt_millis(d: Duration) -> String {
    format!("{:9.3} ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci95_small_sample() {
        let mut s = OnlineStats::new();
        for x in [10.0, 12.0, 11.0, 13.0, 9.0] {
            s.push(x);
        }
        // df = 4 -> t = 2.776
        let expected = 2.776 * s.stderr();
        assert!((s.ci95_half_width() - expected).abs() < 1e-12);
    }

    #[test]
    fn ci95_large_sample_uses_normal() {
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(i as f64);
        }
        assert!((s.ci95_half_width() - 1.96 * s.stderr()).abs() < 1e-9);
    }

    #[test]
    fn relative_stderr_shrinks() {
        let mut s = OnlineStats::new();
        s.push(100.0);
        s.push(110.0);
        let r2 = s.relative_stderr();
        for _ in 0..20 {
            s.push(105.0);
        }
        assert!(s.relative_stderr() < r2);
    }

    #[test]
    fn summary_quartiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("non-empty");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.5), 5.0);
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 1.0), 10.0);
        assert_eq!(percentile_sorted(&[7.0], 0.3), 7.0);
        assert_eq!(percentile_sorted(&[], 0.9), 0.0, "empty-slice sentinel");
    }

    #[test]
    fn throughput_meter_windows() {
        let t0 = SimTime::ZERO;
        let mut m = ThroughputMeter::new(t0);
        m.record(1_000_000);
        let t1 = SimTime::from_secs(1);
        assert!((m.sample_window(t1) - 1e6).abs() < 1.0);
        // New window starts empty.
        let t2 = SimTime::from_secs(2);
        assert_eq!(m.sample_window(t2), 0.0);
        assert_eq!(m.total_bytes(), 1_000_000);
        assert!((m.average(t2) - 5e5).abs() < 1.0);
    }

    #[test]
    fn throughput_meter_window_edge_accounting() {
        // Bytes recorded at exactly the sampling instant belong to the
        // window being closed; bytes recorded immediately after belong to
        // the next one. Nothing is double-counted or lost at the edge.
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        let mut m = ThroughputMeter::new(t0);
        m.record(600);
        // Landing exactly on the t1 edge, before the sample closes it:
        m.record(400);
        assert!((m.sample_window(t1) - 1000.0).abs() < 1e-9);
        // After the close, the same instant feeds the next window.
        m.record(250);
        assert!((m.sample_window(t2) - 250.0).abs() < 1e-9);
        assert_eq!(m.total_bytes(), 1250);

        // A zero-width window (two samples at the same instant) reports a
        // 0.0 rate but must not lose its bytes from the running total.
        let mut z = ThroughputMeter::new(t0);
        z.record(77);
        assert_eq!(z.sample_window(t0), 0.0);
        assert_eq!(z.total_bytes(), 77);
    }

    #[test]
    fn time_series_mean_in() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 20.0);
        ts.push(SimTime::from_secs(3), 30.0);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(
            ts.mean_in(SimTime::from_secs(1), SimTime::from_secs(3)),
            Some(15.0)
        );
        assert_eq!(ts.mean_in(SimTime::from_secs(10), SimTime::from_secs(20)), None);
    }

    #[test]
    fn formatting_helpers() {
        assert!(fmt_rate(10e6).contains("10.000 MB/s"));
        assert!(fmt_millis(Duration::from_millis(3)).contains("3.000 ms"));
    }
}
