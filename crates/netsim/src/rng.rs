//! Deterministic random number streams for reproducible experiments.
//!
//! All stochastic behaviour in the simulator (packet loss, jitter, workload
//! generation, ε-greedy exploration) draws from named [`RngStream`]s derived
//! from a single experiment seed. Two runs with the same seed and the same
//! stream names produce byte-identical results, while distinct subsystems
//! never perturb each other's streams.
//!
//! # Examples
//!
//! ```
//! use kmsg_netsim::rng::SeedSource;
//! use rand::Rng;
//!
//! let seeds = SeedSource::new(42);
//! let mut loss = seeds.stream("link-loss");
//! let mut workload = seeds.stream("workload");
//! let a: f64 = loss.gen();
//! let b: f64 = workload.gen();
//! // Streams are independent and reproducible.
//! let mut loss2 = SeedSource::new(42).stream("link-loss");
//! assert_eq!(a, loss2.gen::<f64>());
//! assert_ne!(a, b);
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A deterministic random stream (a seeded ChaCha12 generator).
pub type RngStream = ChaCha12Rng;

/// Derives independent, named random streams from one experiment seed.
///
/// The derivation hashes the stream name into the 32-byte ChaCha seed
/// together with the root seed (an FNV-1a style mix), so renaming or adding
/// streams never shifts unrelated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSource {
    root: u64,
}

impl SeedSource {
    /// Creates a seed source from a root experiment seed.
    #[must_use]
    pub const fn new(root: u64) -> Self {
        SeedSource { root }
    }

    /// The root seed this source was created with.
    #[must_use]
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives the named random stream.
    #[must_use]
    pub fn stream(&self, name: &str) -> RngStream {
        let mut seed = [0u8; 32];
        let h1 = fnv1a(self.root, name.as_bytes());
        let h2 = fnv1a(h1, b"kmsg-netsim-stream");
        let h3 = fnv1a(h2, name.as_bytes());
        let h4 = fnv1a(h3, &self.root.to_le_bytes());
        seed[0..8].copy_from_slice(&h1.to_le_bytes());
        seed[8..16].copy_from_slice(&h2.to_le_bytes());
        seed[16..24].copy_from_slice(&h3.to_le_bytes());
        seed[24..32].copy_from_slice(&h4.to_le_bytes());
        ChaCha12Rng::from_seed(seed)
    }

    /// Derives a numbered sub-source, e.g. one per experiment repetition.
    #[must_use]
    pub fn sub_source(&self, index: u64) -> SeedSource {
        SeedSource {
            root: fnv1a(self.root, &index.to_le_bytes()),
        }
    }
}

/// FNV-1a hash seeded with `init`, folded over `data`.
fn fnv1a(init: u64, data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = init ^ 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = SeedSource::new(7).stream("x").sample_iter(rand::distributions::Standard).take(16).collect();
        let b: Vec<u32> = SeedSource::new(7).stream("x").sample_iter(rand::distributions::Standard).take(16).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let a: u64 = SeedSource::new(7).stream("x").gen();
        let b: u64 = SeedSource::new(7).stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_roots_differ() {
        let a: u64 = SeedSource::new(7).stream("x").gen();
        let b: u64 = SeedSource::new(8).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn sub_sources_are_independent() {
        let s = SeedSource::new(1);
        let a: u64 = s.sub_source(0).stream("x").gen();
        let b: u64 = s.sub_source(1).stream("x").gen();
        assert_ne!(a, b);
        assert_eq!(s.sub_source(0), s.sub_source(0));
    }

    #[test]
    fn root_accessor() {
        assert_eq!(SeedSource::new(99).root(), 99);
    }
}
