//! Scripted fault injection: chaos plans driven off the timing wheel.
//!
//! A [`FaultPlan`] is a seed-independent, fully scripted schedule of link
//! faults — flaps, bidirectional partitions between node sets, Gilbert–
//! Elliott loss-burst episodes and latency spikes. Installing a plan with
//! [`FaultController::install`] schedules one timing-wheel event per entry;
//! each application is recorded into the per-Sim flight recorder
//! ([`EventKind::Fault`]), so a chaos run is replayable byte-for-byte from
//! the simulation seed.
//!
//! Partitions use [`Link::sever`](crate::link::Link::sever) rather than
//! `set_up(false)`: a partition is carrier loss, and packets already in
//! flight across the cut must die rather than arrive after it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kmsg_telemetry::EventKind;

use crate::link::{GeConfig, LinkId};
use crate::network::Network;
use crate::packet::NodeId;
use crate::time::SimTime;

/// One scripted fault action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Take a link down, keeping the serialized backlog (unplugged uplink).
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Sever a link: down + backlog cleared + in-flight packets killed.
    Sever(LinkId),
    /// Sever every link on the routes between the two node sets, in both
    /// directions. Routes are resolved when the action fires.
    Partition {
        /// One side of the cut.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
    },
    /// Restore every link on the routes between the two node sets.
    Heal {
        /// One side of the healed cut.
        a: Vec<NodeId>,
        /// The other side.
        b: Vec<NodeId>,
    },
    /// Start a Gilbert–Elliott burst-loss episode on a link.
    BurstLossOn(LinkId, GeConfig),
    /// End the burst-loss episode (resets to the good state).
    BurstLossOff(LinkId),
    /// Add a transient extra propagation delay to a link.
    LatencySpike(LinkId, Duration),
    /// Clear the extra propagation delay.
    LatencyClear(LinkId),
}

/// A timed entry of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A scripted, deterministic schedule of fault injections.
///
/// Build with the fluent helpers and install with
/// [`FaultController::install`]. The plan itself contains no randomness;
/// combined with the simulation seed, a chaos run is exactly replayable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a raw action at an absolute simulation time.
    #[must_use]
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Severs `link` at `from` and restores it at `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`.
    #[must_use]
    pub fn down_between(self, link: LinkId, from: SimTime, to: SimTime) -> Self {
        assert!(to > from, "down_between window is empty");
        self.at(from, FaultAction::Sever(link))
            .at(to, FaultAction::LinkUp(link))
    }

    /// Flaps `link` over `[from, to)`: each `period` starts with the link
    /// severed for `duty · period`, then restored for the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is not in `(0, 1)` or `period` is zero.
    #[must_use]
    pub fn flap(
        mut self,
        link: LinkId,
        from: SimTime,
        to: SimTime,
        period: Duration,
        duty: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&duty) && duty > 0.0, "duty out of (0, 1)");
        assert!(!period.is_zero(), "flap period is zero");
        let down = Duration::from_secs_f64(period.as_secs_f64() * duty);
        let mut start = from;
        while start < to {
            let up_at = (start + down).min(to);
            self = self.down_between(link, start, up_at);
            start += period;
        }
        self
    }

    /// Severs all routes between the node sets at `from` (both directions)
    /// and heals them at `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`.
    #[must_use]
    pub fn partition_between(
        self,
        from: SimTime,
        to: SimTime,
        a: &[NodeId],
        b: &[NodeId],
    ) -> Self {
        assert!(to > from, "partition window is empty");
        self.at(
            from,
            FaultAction::Partition {
                a: a.to_vec(),
                b: b.to_vec(),
            },
        )
        .at(
            to,
            FaultAction::Heal {
                a: a.to_vec(),
                b: b.to_vec(),
            },
        )
    }

    /// Runs a Gilbert–Elliott loss-burst episode on `link` over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`.
    #[must_use]
    pub fn loss_burst(self, link: LinkId, from: SimTime, to: SimTime, ge: GeConfig) -> Self {
        assert!(to > from, "loss_burst window is empty");
        self.at(from, FaultAction::BurstLossOn(link, ge))
            .at(to, FaultAction::BurstLossOff(link))
    }

    /// Adds `extra` propagation delay on `link` over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`.
    #[must_use]
    pub fn latency_spike(
        self,
        link: LinkId,
        from: SimTime,
        to: SimTime,
        extra: Duration,
    ) -> Self {
        assert!(to > from, "latency_spike window is empty");
        self.at(from, FaultAction::LatencySpike(link, extra))
            .at(to, FaultAction::LatencyClear(link))
    }

    /// The scheduled entries, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Applies a [`FaultPlan`] to a [`Network`], one timing-wheel event per
/// entry. Cheap to clone; [`FaultController::applied`] counts link-level
/// actions that have fired so far.
#[derive(Debug, Clone)]
pub struct FaultController {
    applied: Arc<AtomicU64>,
}

impl FaultController {
    /// Schedules every entry of `plan` on the network's simulation and
    /// returns a handle for observing progress.
    pub fn install(net: &Network, plan: FaultPlan) -> Self {
        let controller = FaultController {
            applied: Arc::new(AtomicU64::new(0)),
        };
        for FaultEvent { at, action } in plan.events {
            let net = net.clone();
            let applied = controller.applied.clone();
            net.sim().clone().schedule_at(at, move |_sim| {
                apply(&net, &action, &applied);
            });
        }
        controller
    }

    /// Number of link-level actions applied so far (a partition counts one
    /// per severed link).
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }
}

/// Resolves the directed link sets of all routes between two node sets, in
/// deterministic (pair-iteration) order, deduplicated.
fn partition_links(net: &Network, a: &[NodeId], b: &[NodeId]) -> Vec<LinkId> {
    let mut out: Vec<LinkId> = Vec::new();
    for &x in a {
        for &y in b {
            for (src, dst) in [(x, y), (y, x)] {
                if let Some(route) = net.route(src, dst) {
                    for id in route {
                        if !out.contains(&id) {
                            out.push(id);
                        }
                    }
                }
            }
        }
    }
    out
}

fn record_fault(net: &Network, action: &'static str, link: LinkId, applied: &AtomicU64) {
    applied.fetch_add(1, Ordering::SeqCst);
    let sim = net.sim();
    sim.recorder().record(
        sim.now().as_nanos(),
        EventKind::Fault {
            action,
            link: u64::from(link.index()),
        },
    );
}

fn apply(net: &Network, action: &FaultAction, applied: &AtomicU64) {
    match action {
        FaultAction::LinkDown(id) => {
            net.link(*id).set_up(false);
            record_fault(net, "link_down", *id, applied);
        }
        FaultAction::LinkUp(id) => {
            net.link(*id).set_up(true);
            record_fault(net, "link_up", *id, applied);
        }
        FaultAction::Sever(id) => {
            net.link(*id).sever();
            record_fault(net, "sever", *id, applied);
        }
        FaultAction::Partition { a, b } => {
            for id in partition_links(net, a, b) {
                net.link(id).sever();
                record_fault(net, "sever", id, applied);
            }
        }
        FaultAction::Heal { a, b } => {
            for id in partition_links(net, a, b) {
                net.link(id).set_up(true);
                record_fault(net, "link_up", id, applied);
            }
        }
        FaultAction::BurstLossOn(id, ge) => {
            net.link(*id).set_burst_loss(Some(*ge));
            record_fault(net, "burst_on", *id, applied);
        }
        FaultAction::BurstLossOff(id) => {
            net.link(*id).set_burst_loss(None);
            record_fault(net, "burst_off", *id, applied);
        }
        FaultAction::LatencySpike(id, extra) => {
            net.link(*id).set_extra_delay(*extra);
            record_fault(net, "latency_spike", *id, applied);
        }
        FaultAction::LatencyClear(id) => {
            net.link(*id).set_extra_delay(Duration::ZERO);
            record_fault(net, "latency_clear", *id, applied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::link::LinkConfig;

    fn world() -> (Sim, Network, NodeId, NodeId, LinkId, LinkId) {
        let sim = Sim::new(9);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let (ab, ba) = net.connect_duplex(a, b, LinkConfig::new(1e6, Duration::from_millis(5)));
        (sim, net, a, b, ab, ba)
    }

    #[test]
    fn down_between_schedules_sever_and_restore() {
        let (sim, net, _a, _b, ab, _ba) = world();
        let plan = FaultPlan::new().down_between(ab, SimTime::from_secs(1), SimTime::from_secs(2));
        let ctl = FaultController::install(&net, plan);
        assert!(net.link(ab).is_up());
        sim.run_until(SimTime::from_millis(1500));
        assert!(!net.link(ab).is_up());
        assert_eq!(net.link(ab).epoch(), 1, "partition-style cut severs");
        sim.run_until(SimTime::from_millis(2500));
        assert!(net.link(ab).is_up());
        assert_eq!(ctl.applied(), 2);
    }

    #[test]
    fn flap_generates_expected_windows() {
        let plan = FaultPlan::new().flap(
            LinkId(0),
            SimTime::from_secs(0),
            SimTime::from_secs(1),
            Duration::from_millis(250),
            0.4,
        );
        // 4 periods × (sever + restore).
        assert_eq!(plan.events().len(), 8);
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: SimTime::ZERO,
                action: FaultAction::Sever(LinkId(0)),
            }
        );
        assert_eq!(plan.events()[1].at, SimTime::from_millis(100));
        assert_eq!(plan.events()[2].at, SimTime::from_millis(250));
    }

    #[test]
    fn partition_severs_both_directions_and_heals() {
        let (sim, net, a, b, ab, ba) = world();
        let plan = FaultPlan::new().partition_between(
            SimTime::from_secs(1),
            SimTime::from_secs(3),
            &[a],
            &[b],
        );
        FaultController::install(&net, plan);
        sim.run_until(SimTime::from_secs(2));
        assert!(!net.link(ab).is_up());
        assert!(!net.link(ba).is_up());
        sim.run_until(SimTime::from_secs(4));
        assert!(net.link(ab).is_up());
        assert!(net.link(ba).is_up());
    }

    #[test]
    fn injections_are_recorded_for_replay() {
        let (sim, net, a, b, _ab, _ba) = world();
        sim.recorder().enable();
        let plan = FaultPlan::new()
            .partition_between(SimTime::from_secs(1), SimTime::from_secs(2), &[a], &[b])
            .latency_spike(
                LinkId(0),
                SimTime::from_secs(3),
                SimTime::from_secs(4),
                Duration::from_millis(50),
            );
        FaultController::install(&net, plan);
        sim.run_until(SimTime::from_secs(5));
        let faults: Vec<_> = sim
            .recorder()
            .events()
            .into_iter()
            .filter(|e| e.kind.label() == "fault")
            .collect();
        // 2 severs + 2 restores + spike + clear.
        assert_eq!(faults.len(), 6);
    }
}
