//! The network fabric: nodes, links, static routes, and packet dispatch.
//!
//! A [`Network`] connects simulated hosts through directed [`Link`]s. Routes
//! are static per ordered node pair and may traverse multiple links (used
//! both for multi-hop topologies and to chain per-endpoint processing links,
//! e.g. the UDT receive-processing bottleneck).
//!
//! Transport endpooints register [`PacketSink`]s under a
//! `(node, protocol, port)` binding; arriving packets are dispatched to the
//! matching sink.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kmsg_telemetry::EventKind;
use parking_lot::Mutex;

use crate::engine::Sim;
use crate::link::{DropReason, Link, LinkConfig, LinkId, Verdict};
use crate::packet::{Endpoint, NodeId, Packet, WireProtocol};
use crate::time::SimTime;
use crate::trace::{PacketEvent, PacketRecord, PacketTracer};

/// Receives packets addressed to a bound `(node, protocol, port)`.
pub trait PacketSink: Send + Sync {
    /// Called when a packet arrives. Runs inside a simulation event; the
    /// implementation may send packets and schedule further events.
    fn on_packet(&self, net: &Network, pkt: Packet);
}

/// Cumulative network-wide packet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets accepted into the fabric.
    pub sent: u64,
    /// Packets delivered to a sink.
    pub delivered: u64,
    /// Packets dropped by links (any reason).
    pub dropped_link: u64,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: u64,
    /// Packets that arrived at a port with no bound sink.
    pub dropped_no_sink: u64,
}

struct NetInner {
    node_names: Vec<String>,
    links: Vec<Arc<Link>>,
    /// Routes are shared via `Arc` so per-hop events carry a pointer clone
    /// instead of a fresh `Vec` (or a boxed closure capturing one).
    routes: HashMap<(NodeId, NodeId), Arc<Vec<LinkId>>>,
    /// Cached empty route for loopback hop events.
    empty_route: Arc<Vec<LinkId>>,
    sinks: HashMap<(NodeId, WireProtocol, u16), Arc<dyn PacketSink>>,
    next_ephemeral: HashMap<NodeId, u16>,
    stats: NetworkStats,
    tracer: Option<Arc<dyn PacketTracer>>,
    /// Delay applied to node-local (same-node) deliveries with no route.
    local_delay: std::time::Duration,
}

/// Handle to the simulated network fabric. Cheaply cloneable.
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    inner: Arc<Mutex<NetInner>>,
    /// Mirrors `inner.tracer.is_some()` so the per-packet trace path can
    /// skip the fabric lock entirely when no tracer is installed (the
    /// common case outside debugging runs).
    has_tracer: Arc<AtomicBool>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("nodes", &inner.node_names.len())
            .field("links", &inner.links.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// Error returned when a port binding conflicts with an existing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// The conflicting binding.
    pub endpoint: Endpoint,
    /// The protocol of the attempted binding.
    pub protocol: WireProtocol,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "port {} already bound for {:?} on {}",
            self.endpoint.port, self.protocol, self.endpoint.node
        )
    }
}

impl std::error::Error for BindError {}

impl Network {
    /// Creates an empty network on the given simulation.
    #[must_use]
    pub fn new(sim: &Sim) -> Self {
        Network {
            sim: sim.clone(),
            inner: Arc::new(Mutex::new(NetInner {
                node_names: Vec::new(),
                links: Vec::new(),
                routes: HashMap::new(),
                empty_route: Arc::new(Vec::new()),
                sinks: HashMap::new(),
                next_ephemeral: HashMap::new(),
                stats: NetworkStats::default(),
                tracer: None,
                local_delay: std::time::Duration::from_micros(5),
            })),
            has_tracer: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The simulation this network runs on.
    #[must_use]
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Adds a named host.
    pub fn add_node(&self, name: impl Into<String>) -> NodeId {
        let mut inner = self.inner.lock();
        let id = NodeId(u32::try_from(inner.node_names.len()).expect("too many nodes"));
        inner.node_names.push(name.into());
        id
    }

    /// The name a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> String {
        self.inner.lock().node_names[node.0 as usize].clone()
    }

    /// Adds a directed link and returns its id.
    pub fn add_link(&self, cfg: LinkConfig) -> LinkId {
        let mut inner = self.inner.lock();
        let id = LinkId(u32::try_from(inner.links.len()).expect("too many links"));
        let rng = self.sim.seeds().stream(&format!("link-{}", id.0));
        inner.links.push(Arc::new(Link::new(cfg, rng)));
        id
    }

    /// Accesses a link by id.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    #[must_use]
    pub fn link(&self, id: LinkId) -> Arc<Link> {
        self.inner.lock().links[id.0 as usize].clone()
    }

    /// Installs the route for packets from `src` to `dst` as an ordered
    /// sequence of links. Replaces any existing route.
    pub fn set_route(&self, src: NodeId, dst: NodeId, links: Vec<LinkId>) {
        self.inner.lock().routes.insert((src, dst), Arc::new(links));
    }

    /// Returns the currently installed route, if any.
    #[must_use]
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        self.inner
            .lock()
            .routes
            .get(&(src, dst))
            .map(|links| links.as_ref().clone())
    }

    /// Convenience: connects two nodes with a symmetric pair of directed
    /// links built from `cfg`, installing both routes. Returns
    /// `(a_to_b, b_to_a)`.
    pub fn connect_duplex(&self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add_link(cfg.clone());
        let ba = self.add_link(cfg);
        self.set_route(a, b, vec![ab]);
        self.set_route(b, a, vec![ba]);
        (ab, ba)
    }

    /// Binds a packet sink to `(node, protocol, port)`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the binding is already taken.
    pub fn bind(
        &self,
        node: NodeId,
        protocol: WireProtocol,
        port: u16,
        sink: Arc<dyn PacketSink>,
    ) -> Result<(), BindError> {
        let mut inner = self.inner.lock();
        let key = (node, protocol, port);
        if inner.sinks.contains_key(&key) {
            return Err(BindError {
                endpoint: Endpoint::new(node, port),
                protocol,
            });
        }
        inner.sinks.insert(key, sink);
        Ok(())
    }

    /// Removes a binding if present.
    pub fn unbind(&self, node: NodeId, protocol: WireProtocol, port: u16) {
        self.inner.lock().sinks.remove(&(node, protocol, port));
    }

    /// Allocates a fresh ephemeral port on `node` (49152 upward).
    pub fn alloc_ephemeral_port(&self, node: NodeId) -> u16 {
        let mut inner = self.inner.lock();
        let next = inner.next_ephemeral.entry(node).or_insert(49152);
        let port = *next;
        *next = next.checked_add(1).expect("ephemeral port space exhausted");
        port
    }

    /// Installs a packet tracer observing every send, drop and delivery.
    pub fn set_tracer(&self, tracer: Arc<dyn PacketTracer>) {
        self.inner.lock().tracer = Some(tracer);
        self.has_tracer.store(true, Ordering::Release);
    }

    fn trace(&self, pkt: &Packet, event: PacketEvent) {
        // Fast path: no tracer installed — one relaxed-ish atomic load,
        // no fabric lock, no Arc refcount traffic.
        if !self.has_tracer.load(Ordering::Acquire) {
            return;
        }
        let tracer = self.inner.lock().tracer.clone();
        if let Some(tracer) = tracer {
            tracer.record(PacketRecord {
                time: self.sim.now(),
                src: pkt.src,
                dst: pkt.dst,
                protocol: pkt.protocol,
                wire_size: pkt.wire_size,
                event,
            });
        }
    }

    /// Injects a packet into the fabric at the current simulation time.
    ///
    /// The packet follows the installed route hop by hop; a missing route is
    /// tolerated only for same-node traffic, which is delivered after a
    /// small loopback delay.
    pub fn send_packet(&self, pkt: Packet) {
        // One lock for the stats bump and the route lookup (the trace call
        // between them is lock-free when no tracer is installed).
        let route = {
            let mut inner = self.inner.lock();
            inner.stats.sent += 1;
            inner.routes.get(&(pkt.src.node, pkt.dst.node)).cloned()
        };
        self.trace(&pkt, PacketEvent::Sent);
        match route {
            Some(links) if !links.is_empty() => self.forward(pkt, &links, 0),
            Some(_) | None if pkt.src.node == pkt.dst.node => {
                let (delay, empty) = {
                    let inner = self.inner.lock();
                    (inner.local_delay, inner.empty_route.clone())
                };
                // A hop event past the (empty) route's end is a delivery.
                let at = self.sim.now() + delay;
                self.sim.schedule_packet_hop(at, self.clone(), pkt, empty, 0);
            }
            Some(_) => {
                // Empty route between distinct nodes: treat as unrouted.
                self.inner.lock().stats.dropped_no_route += 1;
                self.trace(&pkt, PacketEvent::NoRoute);
            }
            None => {
                self.inner.lock().stats.dropped_no_route += 1;
                self.trace(&pkt, PacketEvent::NoRoute);
            }
        }
    }

    /// Transmits `pkt` over hop `idx` of its route, scheduling the next hop
    /// event at the link's computed arrival time.
    fn forward(&self, mut pkt: Packet, links: &Arc<Vec<LinkId>>, idx: usize) {
        let link_id = links[idx];
        let link = self.inner.lock().links[link_id.0 as usize].clone();
        match link.transmit(&self.sim, pkt.wire_size, pkt.protocol.is_udp_family()) {
            Verdict::DeliverAt(at) => {
                // Stamp the sever epoch: if the link is severed before the
                // arrival event fires, the packet dies at the far end.
                pkt.sever_epoch = link.epoch();
                let rec = self.sim.recorder();
                if rec.is_enabled() {
                    let now = self.sim.now();
                    rec.record_with(now.as_nanos(), || EventKind::LinkQueue {
                        link: u64::from(link_id.0),
                        backlog_bytes: link.backlog_bytes(now) as u64,
                        capacity_bytes: link.queue_capacity() as u64,
                    });
                }
                self.sim
                    .schedule_packet_hop(at, self.clone(), pkt, links.clone(), idx + 1);
            }
            Verdict::Dropped(reason) => {
                self.inner.lock().stats.dropped_link += 1;
                self.sim
                    .recorder()
                    .record_with(self.sim.now().as_nanos(), || EventKind::LinkDrop {
                        link: u64::from(link_id.0),
                        reason: reason.label(),
                        wire_size: pkt.wire_size as u64,
                    });
                self.trace(&pkt, PacketEvent::Dropped(reason));
            }
        }
    }

    /// Entry point for scheduled packet-hop events: continue along the route
    /// at `idx`, or deliver once past its end.
    pub(crate) fn packet_hop(&self, pkt: Packet, links: &Arc<Vec<LinkId>>, idx: usize) {
        // Arrival check for the hop just crossed: a sever while the packet
        // was in flight kills it here (carrier loss, not an unplugged
        // uplink — see `Link::sever`).
        if idx >= 1 {
            if let Some(&link_id) = links.get(idx - 1) {
                let link = self.inner.lock().links[link_id.0 as usize].clone();
                if link.epoch() != pkt.sever_epoch {
                    link.note_severed();
                    self.inner.lock().stats.dropped_link += 1;
                    self.sim
                        .recorder()
                        .record_with(self.sim.now().as_nanos(), || EventKind::LinkDrop {
                            link: u64::from(link_id.0),
                            reason: DropReason::Severed.label(),
                            wire_size: pkt.wire_size as u64,
                        });
                    self.trace(&pkt, PacketEvent::Dropped(DropReason::Severed));
                    return;
                }
            }
        }
        if idx < links.len() {
            self.forward(pkt, links, idx);
        } else {
            self.deliver(pkt);
        }
    }

    fn deliver(&self, pkt: Packet) {
        let sink = {
            let mut inner = self.inner.lock();
            let key = (pkt.dst.node, pkt.protocol, pkt.dst.port);
            let found = inner.sinks.get(&key).cloned();
            match &found {
                Some(_) => inner.stats.delivered += 1,
                None => inner.stats.dropped_no_sink += 1,
            }
            found
        };
        match sink {
            Some(sink) => {
                self.trace(&pkt, PacketEvent::Delivered);
                sink.on_packet(self, pkt);
            }
            None => self.trace(&pkt, PacketEvent::NoSink),
        }
    }

    /// Snapshot of fabric-wide counters.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.inner.lock().stats
    }

    /// Current simulation time (convenience).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBody;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    struct Counter(AtomicUsize);
    impl PacketSink for Counter {
        fn on_packet(&self, _net: &Network, _pkt: Packet) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn udp_packet(src: Endpoint, dst: Endpoint) -> Packet {
        Packet::new(src, dst, WireProtocol::Udp, 100, PacketBody::Udp(Bytes::from_static(b"x")))
    }

    fn two_nodes() -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(7);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, LinkConfig::new(1e6, Duration::from_millis(5)));
        (sim, net, a, b)
    }

    #[test]
    fn delivers_over_route() {
        let (sim, net, a, b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(b, 80)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn unbound_port_counts_no_sink() {
        let (sim, net, a, b) = two_nodes();
        net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(b, 81)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(net.stats().dropped_no_sink, 1);
    }

    #[test]
    fn missing_route_drops_cross_node() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.send_packet(udp_packet(Endpoint::new(a, 1), Endpoint::new(b, 2)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(net.stats().dropped_no_route, 1);
    }

    #[test]
    fn same_node_loopback_without_route() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(a, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(a, 80)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multi_hop_route_accumulates_delay() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let m = net.add_node("m");
        let b = net.add_node("b");
        let l1 = net.add_link(LinkConfig::new(1e9, Duration::from_millis(10)));
        let l2 = net.add_link(LinkConfig::new(1e9, Duration::from_millis(20)));
        net.set_route(a, b, vec![l1, l2]);
        let _ = m;
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1), Endpoint::new(b, 80)));
        // After 29 ms: not yet there.
        sim.run_until(SimTime::from_nanos(29_000_000));
        assert_eq!(sink.0.load(Ordering::SeqCst), 0);
        sim.run_until(SimTime::from_nanos(31_000_000));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn double_bind_rejected() {
        let (_sim, net, _a, b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        let err = net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap_err();
        assert_eq!(err.endpoint.port, 80);
        assert!(err.to_string().contains("already bound"));
        // Different protocol on the same port is fine.
        net.bind(b, WireProtocol::Tcp, 80, sink).unwrap();
    }

    #[test]
    fn unbind_then_rebind() {
        let (_sim, net, _a, b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.unbind(b, WireProtocol::Udp, 80);
        net.bind(b, WireProtocol::Udp, 80, sink).unwrap();
    }

    #[test]
    fn ephemeral_ports_unique_per_node() {
        let (_sim, net, a, b) = two_nodes();
        let p1 = net.alloc_ephemeral_port(a);
        let p2 = net.alloc_ephemeral_port(a);
        let p3 = net.alloc_ephemeral_port(b);
        assert_ne!(p1, p2);
        assert_eq!(p1, 49152);
        assert_eq!(p3, 49152);
    }

    #[test]
    fn set_up_false_still_delivers_in_flight_but_sever_kills_them() {
        // Contrast of the two outage flavours: `set_up(false)` is an
        // unplugged uplink (in-flight packets arrive), `sever()` is carrier
        // loss (they die with DropReason::Severed).
        for (severed, expect_delivered) in [(false, 1), (true, 0)] {
            let (sim, net, a, b) = two_nodes();
            let sink = Arc::new(Counter(AtomicUsize::new(0)));
            net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
            net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(b, 80)));
            // Cut the a→b link while the packet is mid-flight (5 ms delay).
            sim.schedule_in(Duration::from_millis(2), {
                let net = net.clone();
                move |_sim| {
                    let link = net.route(NodeId(0), NodeId(1)).unwrap()[0];
                    if severed {
                        net.link(link).sever();
                    } else {
                        net.link(link).set_up(false);
                    }
                }
            });
            sim.run_until(SimTime::from_secs(1));
            assert_eq!(sink.0.load(Ordering::SeqCst), expect_delivered, "severed={severed}");
            if severed {
                let link = net.route(NodeId(0), NodeId(1)).unwrap()[0];
                assert_eq!(net.link(link).stats().dropped_severed, 1);
                assert_eq!(net.stats().dropped_link, 1);
            }
        }
    }

    #[test]
    fn node_names_round_trip() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("alpha");
        assert_eq!(net.node_name(a), "alpha");
        assert_eq!(a.index(), 0);
    }
}
