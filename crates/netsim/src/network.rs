//! The network fabric: nodes, links, static routes, and packet dispatch.
//!
//! A [`Network`] connects simulated hosts through directed [`Link`]s. Routes
//! are static per ordered node pair and may traverse multiple links (used
//! both for multi-hop topologies and to chain per-endpoint processing links,
//! e.g. the UDT receive-processing bottleneck).
//!
//! Transport endpoints register [`PacketSink`]s under a
//! `(node, protocol, port)` binding; arriving packets are dispatched to the
//! matching sink.
//!
//! # Dense fabric state
//!
//! Sized for datacenter-scale worlds (10⁴ hosts, 10⁴ flows): routes live
//! flattened in one append-only link arena and per-hop events carry an
//! 8-byte [`RouteRef`] span handle instead of a refcounted `Arc<Vec<_>>`;
//! the hot-path lookups (route table, sink demux) use packed `u64` keys in
//! [`FxHashMap`]s rather than tuple keys under SipHash. No `Arc` is cloned
//! on the per-hop path — links are borrowed in place from the dense link
//! table while the fabric lock is held.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use kmsg_telemetry::{EventKind, SpanId, SpanKind};
use parking_lot::Mutex;

use crate::engine::Sim;
use crate::link::{DropReason, Link, LinkConfig, LinkId, Verdict};
use crate::memscope;
use crate::packet::{Endpoint, NodeId, Packet, WireProtocol};
use crate::pool::{PacketHandle, PacketPool};
use crate::slab::FxHashMap;
use crate::time::SimTime;
use crate::trace::{PacketEvent, PacketRecord, PacketTracer};

/// A handle to an installed route: a `(offset, len)` span into the
/// network's flattened link arena. 8 bytes and `Copy`, so packet-hop events
/// carry it by value. The arena is append-only, which keeps spans held by
/// in-flight hop events valid even after the route is replaced (matching
/// the old `Arc<Vec<LinkId>>` semantics: packets already under way finish
/// on the path they started on).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct RouteRef {
    off: u32,
    len: u32,
}

impl RouteRef {
    /// The empty route: used for node-local loopback deliveries.
    pub(crate) const EMPTY: RouteRef = RouteRef { off: 0, len: 0 };
}

/// Packs a `(node, protocol, port)` binding into one 8-byte map key.
#[inline]
fn sink_key(node: NodeId, protocol: WireProtocol, port: u16) -> u64 {
    (u64::from(node.index() as u32) << 32) | ((protocol as u64) << 16) | u64::from(port)
}

/// Packs an ordered `(src, dst)` node pair into one 8-byte map key.
#[inline]
fn route_key(src: NodeId, dst: NodeId) -> u64 {
    (u64::from(src.index() as u32) << 32) | u64::from(dst.index() as u32)
}

/// `flight` span close keys: how the packet's journey through the fabric
/// ended (`key` of the span's [`EventKind::SpanClose`]).
pub const FLIGHT_DELIVERED: u64 = 0;
/// Dropped at a link (queue overflow, random loss, policing, link down).
pub const FLIGHT_DROPPED: u64 = 1;
/// Reached the destination node but no sink was bound to the port.
pub const FLIGHT_NO_SINK: u64 = 2;
/// No route installed between the endpoints.
pub const FLIGHT_NO_ROUTE: u64 = 3;
/// Died mid-flight because the link it was crossing was severed.
pub const FLIGHT_SEVERED: u64 = 4;
/// `hop` span close key when the packet died to a sever on that hop.
pub const HOP_SEVERED: u64 = 1;

/// Packs a `(src, dst)` endpoint pair into a `flight`-span correlation key
/// (16 bits each of src node, src port, dst node, dst port — node indices
/// above 2^16 alias, which only blurs correlation, never semantics).
#[inline]
fn flight_key(src: Endpoint, dst: Endpoint) -> u64 {
    (u64::from(src.node.index() as u16) << 48)
        | (u64::from(src.port) << 32)
        | (u64::from(dst.node.index() as u16) << 16)
        | u64::from(dst.port)
}

/// First ephemeral port (IANA dynamic range).
const EPHEMERAL_LO: u16 = 49152;
/// Number of ports in the ephemeral range (49152..=65535).
const EPHEMERAL_SPAN: u32 = (u16::MAX - EPHEMERAL_LO) as u32 + 1;

/// Receives packets addressed to a bound `(node, protocol, port)`.
pub trait PacketSink: Send + Sync {
    /// Called when a packet arrives. Runs inside a simulation event; the
    /// implementation may send packets and schedule further events.
    fn on_packet(&self, net: &Network, pkt: Packet);
}

/// Cumulative network-wide packet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets accepted into the fabric.
    pub sent: u64,
    /// Packets delivered to a sink.
    pub delivered: u64,
    /// Packets dropped by links (any reason).
    pub dropped_link: u64,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: u64,
    /// Packets that arrived at a port with no bound sink.
    pub dropped_no_sink: u64,
}

struct NetInner {
    node_names: Vec<String>,
    /// Dense link table. Append-only: a `LinkId` is a plain index with an
    /// implicit generation of zero. The `Arc` exists only for the
    /// control-plane accessor ([`Network::link`]); the per-hop path borrows
    /// the link in place and never touches the refcount.
    links: Vec<Arc<Link>>,
    /// Route index: packed `(src, dst)` pair → span into `route_arena`.
    routes: FxHashMap<u64, RouteRef>,
    /// Flattened, append-only storage for every installed route's links.
    route_arena: Vec<LinkId>,
    /// Sink demux: packed `(node, protocol, port)` → sink.
    sinks: FxHashMap<u64, Arc<dyn PacketSink>>,
    /// Per-node cursor into the ephemeral port range.
    next_ephemeral: FxHashMap<NodeId, u16>,
    /// Pooled storage for in-flight packets: hop events carry 8-byte
    /// generation-checked handles into this arena instead of owning boxes,
    /// and terminal outcomes (deliver/drop/sever) recycle the slot.
    pool: PacketPool,
    stats: NetworkStats,
    tracer: Option<Arc<dyn PacketTracer>>,
    /// Delay applied to node-local (same-node) deliveries with no route.
    local_delay: std::time::Duration,
    /// Per-network TCP flow table, created lazily on first TCP use. Holds a
    /// [`WeakNetwork`] back-reference, so this is not a cycle.
    tcp_stack: Option<Arc<crate::tcp::TcpStack>>,
    /// Per-network UDT flow table (same ownership shape as `tcp_stack`).
    udt_stack: Option<Arc<crate::udt::UdtStack>>,
}

impl NetInner {
    /// The link sequence behind a route handle.
    #[inline]
    fn route_links(&self, r: RouteRef) -> &[LinkId] {
        &self.route_arena[r.off as usize..(r.off + r.len) as usize]
    }
}

/// Weak counterpart of [`Network`], held by the per-network transport
/// stacks. The stacks are reachable from the fabric (they are registered as
/// packet sinks), so a strong back-reference would leak whole worlds; the
/// `Sim` handle stays strong because the engine is the root owner anyway.
#[derive(Clone)]
pub(crate) struct WeakNetwork {
    sim: Sim,
    inner: Weak<Mutex<NetInner>>,
    has_tracer: Weak<AtomicBool>,
}

impl WeakNetwork {
    /// Rebuilds a full fabric handle, or `None` mid-teardown.
    pub(crate) fn upgrade(&self) -> Option<Network> {
        Some(Network {
            sim: self.sim.clone(),
            inner: self.inner.upgrade()?,
            has_tracer: self.has_tracer.upgrade()?,
        })
    }
}

/// Handle to the simulated network fabric. Cheaply cloneable.
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    inner: Arc<Mutex<NetInner>>,
    /// Mirrors `inner.tracer.is_some()` so the per-packet trace path can
    /// skip the fabric lock entirely when no tracer is installed (the
    /// common case outside debugging runs).
    has_tracer: Arc<AtomicBool>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("nodes", &inner.node_names.len())
            .field("links", &inner.links.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// Error returned when a port binding conflicts with an existing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindError {
    /// The conflicting binding.
    pub endpoint: Endpoint,
    /// The protocol of the attempted binding.
    pub protocol: WireProtocol,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "port {} already bound for {:?} on {}",
            self.endpoint.port, self.protocol, self.endpoint.node
        )
    }
}

impl std::error::Error for BindError {}

impl Network {
    /// Creates an empty network on the given simulation.
    #[must_use]
    pub fn new(sim: &Sim) -> Self {
        Network {
            sim: sim.clone(),
            inner: Arc::new(Mutex::new(NetInner {
                node_names: Vec::new(),
                links: Vec::new(),
                routes: FxHashMap::default(),
                route_arena: Vec::new(),
                sinks: FxHashMap::default(),
                next_ephemeral: FxHashMap::default(),
                pool: PacketPool::new(),
                stats: NetworkStats::default(),
                tracer: None,
                local_delay: std::time::Duration::from_micros(5),
                tcp_stack: None,
                udt_stack: None,
            })),
            has_tracer: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The simulation this network runs on.
    #[must_use]
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// A weak handle for long-lived subsystems (transport stacks) that must
    /// not keep the fabric alive.
    pub(crate) fn downgrade(&self) -> WeakNetwork {
        WeakNetwork {
            sim: self.sim.clone(),
            inner: Arc::downgrade(&self.inner),
            has_tracer: Arc::downgrade(&self.has_tracer),
        }
    }

    /// The per-network TCP flow table, created on first use.
    pub(crate) fn tcp_stack(&self) -> Arc<crate::tcp::TcpStack> {
        let mut inner = self.inner.lock();
        if let Some(stack) = &inner.tcp_stack {
            return stack.clone();
        }
        let stack = crate::tcp::TcpStack::new(self.sim.clone(), self.downgrade());
        inner.tcp_stack = Some(stack.clone());
        stack
    }

    /// The per-network UDT flow table, created on first use.
    pub(crate) fn udt_stack(&self) -> Arc<crate::udt::UdtStack> {
        let mut inner = self.inner.lock();
        if let Some(stack) = &inner.udt_stack {
            return stack.clone();
        }
        let stack = crate::udt::UdtStack::new(self.sim.clone(), self.downgrade());
        inner.udt_stack = Some(stack.clone());
        stack
    }

    /// Adds a named host.
    pub fn add_node(&self, name: impl Into<String>) -> NodeId {
        let mut inner = self.inner.lock();
        let id = NodeId(u32::try_from(inner.node_names.len()).expect("too many nodes"));
        inner.node_names.push(name.into());
        id
    }

    /// The name a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> String {
        self.inner.lock().node_names[node.0 as usize].clone()
    }

    /// Adds a directed link and returns its id.
    pub fn add_link(&self, cfg: LinkConfig) -> LinkId {
        let mut inner = self.inner.lock();
        let id = LinkId(u32::try_from(inner.links.len()).expect("too many links"));
        let rng = self.sim.seeds().stream(&format!("link-{}", id.0));
        inner.links.push(Arc::new(Link::new(cfg, rng)));
        id
    }

    /// Accesses a link by id.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    #[must_use]
    pub fn link(&self, id: LinkId) -> Arc<Link> {
        self.inner.lock().links[id.0 as usize].clone()
    }

    /// Installs the route for packets from `src` to `dst` as an ordered
    /// sequence of links. Replaces any existing route.
    ///
    /// The links are appended to the route arena; a replaced route's old
    /// span stays in place so in-flight packets finish on the path they
    /// started on (the old `Arc<Vec<LinkId>>` behaviour).
    pub fn set_route(&self, src: NodeId, dst: NodeId, links: Vec<LinkId>) {
        let mut inner = self.inner.lock();
        let off = u32::try_from(inner.route_arena.len()).expect("route arena overflow");
        let len = u32::try_from(links.len()).expect("route too long");
        inner.route_arena.extend_from_slice(&links);
        inner.routes.insert(route_key(src, dst), RouteRef { off, len });
    }

    /// Returns the currently installed route, if any.
    #[must_use]
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        let inner = self.inner.lock();
        inner
            .routes
            .get(&route_key(src, dst))
            .map(|&r| inner.route_links(r).to_vec())
    }

    /// Convenience: connects two nodes with a symmetric pair of directed
    /// links built from `cfg`, installing both routes. Returns
    /// `(a_to_b, b_to_a)`.
    pub fn connect_duplex(&self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add_link(cfg.clone());
        let ba = self.add_link(cfg);
        self.set_route(a, b, vec![ab]);
        self.set_route(b, a, vec![ba]);
        (ab, ba)
    }

    /// Binds a packet sink to `(node, protocol, port)`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the binding is already taken.
    pub fn bind(
        &self,
        node: NodeId,
        protocol: WireProtocol,
        port: u16,
        sink: Arc<dyn PacketSink>,
    ) -> Result<(), BindError> {
        let mut inner = self.inner.lock();
        let key = sink_key(node, protocol, port);
        if inner.sinks.contains_key(&key) {
            return Err(BindError {
                endpoint: Endpoint::new(node, port),
                protocol,
            });
        }
        inner.sinks.insert(key, sink);
        Ok(())
    }

    /// Removes a binding if present.
    pub fn unbind(&self, node: NodeId, protocol: WireProtocol, port: u16) {
        self.inner.lock().sinks.remove(&sink_key(node, protocol, port));
    }

    /// Allocates a fresh ephemeral port on `node` for `protocol`
    /// (49152..=65535). The cursor wraps around at the top of the range and
    /// ports already bound for `protocol` are skipped, so long-lived worlds
    /// with connection churn keep allocating successfully.
    ///
    /// Returns `None` when every port in the ephemeral range is bound.
    #[must_use]
    pub fn alloc_ephemeral_port(&self, node: NodeId, protocol: WireProtocol) -> Option<u16> {
        let mut inner = self.inner.lock();
        let start = *inner.next_ephemeral.get(&node).unwrap_or(&EPHEMERAL_LO);
        for i in 0..EPHEMERAL_SPAN {
            let off = (u32::from(start - EPHEMERAL_LO) + i) % EPHEMERAL_SPAN;
            let port = EPHEMERAL_LO + off as u16;
            if !inner.sinks.contains_key(&sink_key(node, protocol, port)) {
                let next = EPHEMERAL_LO + ((off + 1) % EPHEMERAL_SPAN) as u16;
                inner.next_ephemeral.insert(node, next);
                return Some(port);
            }
        }
        None
    }

    /// Installs a packet tracer observing every send, drop and delivery.
    pub fn set_tracer(&self, tracer: Arc<dyn PacketTracer>) {
        self.inner.lock().tracer = Some(tracer);
        self.has_tracer.store(true, Ordering::Release);
    }

    fn trace(&self, pkt: &Packet, event: PacketEvent) {
        // Fast path: no tracer installed — one relaxed-ish atomic load,
        // no fabric lock, no Arc refcount traffic.
        if !self.has_tracer.load(Ordering::Acquire) {
            return;
        }
        let tracer = self.inner.lock().tracer.clone();
        if let Some(tracer) = tracer {
            tracer.record(PacketRecord {
                time: self.sim.now(),
                src: pkt.src,
                dst: pkt.dst,
                protocol: pkt.protocol,
                wire_size: pkt.wire_size,
                event,
            });
        }
    }

    /// Closes the packet's `flight` span with an outcome key; no-op when
    /// tracing was off at injection time (the span was never opened).
    fn close_flight(&self, pkt: &Packet, key: u64) {
        if pkt.span != 0 {
            self.sim.recorder().record(
                self.sim.now().as_nanos(),
                EventKind::SpanClose { span: pkt.span, key },
            );
        }
    }

    /// Closes the packet's current `hop` span (arrival at the far end of a
    /// link, or death mid-hop).
    fn close_hop(&self, pkt: &mut Packet, key: u64) {
        if pkt.hop_span != 0 {
            self.sim.recorder().record(
                self.sim.now().as_nanos(),
                EventKind::SpanClose {
                    span: pkt.hop_span,
                    key,
                },
            );
            pkt.hop_span = 0;
        }
    }

    /// Injects a packet into the fabric at the current simulation time.
    ///
    /// The packet follows the installed route hop by hop; a missing route is
    /// tolerated only for same-node traffic, which is delivered after a
    /// small loopback delay.
    pub fn send_packet(&self, pkt: Packet) {
        // The packet claims one pool slot here and releases it at delivery
        // (or drop); every hop event carries the same 8-byte handle, keeping
        // the inline event-store entries small and the per-send heap cost at
        // zero once the pool is warm.
        let _scope = memscope::enter(memscope::SCOPE_FABRIC);
        let mut pkt = pkt;
        {
            let rec = self.sim.recorder();
            if rec.is_enabled() {
                pkt.span = rec
                    .tracer()
                    .open_root(
                        self.sim.now().as_nanos(),
                        SpanKind::Flight,
                        flight_key(pkt.src, pkt.dst),
                    )
                    .raw();
            }
        }
        // Lock-free when no tracer is installed (the common case).
        self.trace(&pkt, PacketEvent::Sent);
        // What `send_packet` decided under the fabric lock; acted on after
        // the lock drops (the no-route arm keeps the packet by value — it
        // never enters the pool).
        enum Inject {
            Forward(PacketHandle, RouteRef),
            Loopback(PacketHandle, std::time::Duration),
            NoRoute(Packet),
        }
        // One lock for the stats bump, the route lookup, and the pool claim.
        let outcome = {
            let mut inner = self.inner.lock();
            inner.stats.sent += 1;
            let route = inner.routes.get(&route_key(pkt.src.node, pkt.dst.node)).copied();
            match route {
                Some(r) if r.len > 0 => Inject::Forward(inner.pool.alloc(pkt), r),
                // An empty or missing route is tolerated only for same-node
                // traffic (loopback); between distinct nodes it is unrouted.
                _ if pkt.src.node == pkt.dst.node => {
                    let delay = inner.local_delay;
                    Inject::Loopback(inner.pool.alloc(pkt), delay)
                }
                _ => {
                    inner.stats.dropped_no_route += 1;
                    Inject::NoRoute(pkt)
                }
            }
        };
        match outcome {
            Inject::Forward(h, r) => self.forward(h, r, 0),
            Inject::Loopback(h, delay) => {
                // A hop event past the (empty) route's end is a delivery.
                let at = self.sim.now() + delay;
                self.sim
                    .schedule_packet_hop(at, self.clone(), h, RouteRef::EMPTY, 0);
            }
            Inject::NoRoute(pkt) => {
                self.close_flight(&pkt, FLIGHT_NO_ROUTE);
                self.trace(&pkt, PacketEvent::NoRoute);
            }
        }
    }

    /// Transmits `pkt` over hop `idx` of its route, scheduling the next hop
    /// event at the link's computed arrival time.
    ///
    /// Runs under the fabric lock: the link is borrowed from the dense table
    /// (no `Arc` clone per hop) and the next hop event is scheduled before
    /// the lock drops. Lock order is always fabric → link → engine; link and
    /// engine code never calls back into the fabric, so this cannot deadlock.
    fn forward(&self, h: PacketHandle, route: RouteRef, idx: u32) {
        let dropped = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let link_id = inner.route_arena[route.off as usize + idx as usize];
            let link = &inner.links[link_id.index() as usize];
            let pkt = inner
                .pool
                .get_mut(h)
                .expect("in-flight packet vanished from pool");
            match link.transmit(&self.sim, pkt.wire_size, pkt.protocol.is_udp_family()) {
                Verdict::DeliverAt(at) => {
                    // Stamp the sever epoch: if the link is severed before
                    // the arrival event fires, the packet dies at the far
                    // end.
                    pkt.sever_epoch = link.epoch();
                    let rec = self.sim.recorder();
                    if rec.is_enabled() {
                        let now = self.sim.now();
                        rec.record_with(now.as_nanos(), || EventKind::LinkQueue {
                            link: u64::from(link_id.0),
                            backlog_bytes: link.backlog_bytes(now) as u64,
                            capacity_bytes: link.queue_capacity() as u64,
                        });
                        // One `hop` child span per link traversal: opened at
                        // the transmit decision, closed when the arrival
                        // event fires at the far end.
                        let flight = SpanId::from_raw(pkt.span);
                        pkt.hop_span = rec
                            .tracer()
                            .open(
                                now.as_nanos(),
                                SpanKind::Hop,
                                flight,
                                flight,
                                u64::from(link_id.0),
                            )
                            .raw();
                    }
                    self.sim
                        .schedule_packet_hop(at, self.clone(), h, route, idx + 1);
                    None
                }
                Verdict::Dropped(reason) => {
                    inner.stats.dropped_link += 1;
                    // The slot is recycled right here on the fault path.
                    let pkt = inner
                        .pool
                        .free(h)
                        .expect("dropped packet vanished from pool");
                    Some((link_id, reason, pkt))
                }
            }
        };
        if let Some((link_id, reason, pkt)) = dropped {
            self.sim
                .recorder()
                .record_with(self.sim.now().as_nanos(), || EventKind::LinkDrop {
                    link: u64::from(link_id.0),
                    reason: reason.label(),
                    wire_size: pkt.wire_size as u64,
                });
            self.close_flight(&pkt, FLIGHT_DROPPED);
            self.trace(&pkt, PacketEvent::Dropped(reason));
        }
    }

    /// Entry point for scheduled packet-hop events: continue along the route
    /// at `idx`, or deliver once past its end.
    pub(crate) fn packet_hop(&self, h: PacketHandle, route: RouteRef, idx: u32) {
        let _scope = memscope::enter(memscope::SCOPE_FABRIC);
        // Arrival check for the hop just crossed: a sever while the packet
        // was in flight kills it here (carrier loss, not an unplugged
        // uplink — see `Link::sever`), returning the pool slot.
        if idx >= 1 {
            let severed = {
                let mut guard = self.inner.lock();
                let inner = &mut *guard;
                let link_id = inner.route_arena[route.off as usize + idx as usize - 1];
                let link = &inner.links[link_id.index() as usize];
                let pkt = inner
                    .pool
                    .get_mut(h)
                    .expect("in-flight packet vanished from pool");
                if link.epoch() != pkt.sever_epoch {
                    link.note_severed();
                    inner.stats.dropped_link += 1;
                    let pkt = inner
                        .pool
                        .free(h)
                        .expect("severed packet vanished from pool");
                    Some((link_id, pkt))
                } else {
                    None
                }
            };
            if let Some((link_id, mut pkt)) = severed {
                self.sim
                    .recorder()
                    .record_with(self.sim.now().as_nanos(), || EventKind::LinkDrop {
                        link: u64::from(link_id.0),
                        reason: DropReason::Severed.label(),
                        wire_size: pkt.wire_size as u64,
                    });
                self.close_hop(&mut pkt, HOP_SEVERED);
                self.close_flight(&pkt, FLIGHT_SEVERED);
                self.trace(&pkt, PacketEvent::Dropped(DropReason::Severed));
                return;
            }
            // Close the crossed hop's span without re-locking: take the raw
            // span id out of the pooled packet under the same lock scope.
            let hop_span = {
                let mut inner = self.inner.lock();
                let pkt = inner
                    .pool
                    .get_mut(h)
                    .expect("in-flight packet vanished from pool");
                std::mem::take(&mut pkt.hop_span)
            };
            if hop_span != 0 {
                self.sim.recorder().record(
                    self.sim.now().as_nanos(),
                    EventKind::SpanClose { span: hop_span, key: 0 },
                );
            }
        }
        if idx < route.len {
            self.forward(h, route, idx);
        } else {
            self.deliver(h);
        }
    }

    fn deliver(&self, h: PacketHandle) {
        let (pkt, sink) = {
            let mut inner = self.inner.lock();
            // The slot is recycled here: the sink gets the packet by value.
            let pkt = inner
                .pool
                .free(h)
                .expect("delivered packet vanished from pool");
            let key = sink_key(pkt.dst.node, pkt.protocol, pkt.dst.port);
            let found = inner.sinks.get(&key).cloned();
            match &found {
                Some(_) => inner.stats.delivered += 1,
                None => inner.stats.dropped_no_sink += 1,
            }
            (pkt, found)
        };
        match sink {
            Some(sink) => {
                self.close_flight(&pkt, FLIGHT_DELIVERED);
                self.trace(&pkt, PacketEvent::Delivered);
                sink.on_packet(self, pkt);
            }
            None => {
                self.close_flight(&pkt, FLIGHT_NO_SINK);
                self.trace(&pkt, PacketEvent::NoSink);
            }
        }
    }

    /// Packets currently in flight (live pool slots). A fully drained
    /// simulation reports zero — anything else is a leaked pool slot, which
    /// the fault-path leak tests and the fuzz conservation oracle reject.
    #[must_use]
    pub fn packets_in_flight(&self) -> usize {
        self.inner.lock().pool.live()
    }

    /// Packet-pool lifetime counters: `(total_allocated, high_water)`.
    #[must_use]
    pub fn packet_pool_stats(&self) -> (u64, usize) {
        let inner = self.inner.lock();
        (inner.pool.total_allocated(), inner.pool.high_water())
    }

    /// Retained packet-pool slot storage in bytes (scaling-probe RSS term).
    #[must_use]
    pub fn packet_pool_mem_bytes(&self) -> usize {
        self.inner.lock().pool.mem_bytes()
    }

    /// Snapshot of fabric-wide counters.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.inner.lock().stats
    }

    /// Current simulation time (convenience).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBody;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    struct Counter(AtomicUsize);
    impl PacketSink for Counter {
        fn on_packet(&self, _net: &Network, _pkt: Packet) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn udp_packet(src: Endpoint, dst: Endpoint) -> Packet {
        Packet::new(src, dst, WireProtocol::Udp, 100, PacketBody::Udp(Bytes::from_static(b"x")))
    }

    fn two_nodes() -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(7);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, LinkConfig::new(1e6, Duration::from_millis(5)));
        (sim, net, a, b)
    }

    #[test]
    fn delivers_over_route() {
        let (sim, net, a, b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(b, 80)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn unbound_port_counts_no_sink() {
        let (sim, net, a, b) = two_nodes();
        net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(b, 81)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(net.stats().dropped_no_sink, 1);
    }

    #[test]
    fn missing_route_drops_cross_node() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.send_packet(udp_packet(Endpoint::new(a, 1), Endpoint::new(b, 2)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(net.stats().dropped_no_route, 1);
    }

    #[test]
    fn same_node_loopback_without_route() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(a, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(a, 80)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multi_hop_route_accumulates_delay() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let m = net.add_node("m");
        let b = net.add_node("b");
        let l1 = net.add_link(LinkConfig::new(1e9, Duration::from_millis(10)));
        let l2 = net.add_link(LinkConfig::new(1e9, Duration::from_millis(20)));
        net.set_route(a, b, vec![l1, l2]);
        let _ = m;
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1), Endpoint::new(b, 80)));
        // After 29 ms: not yet there.
        sim.run_until(SimTime::from_nanos(29_000_000));
        assert_eq!(sink.0.load(Ordering::SeqCst), 0);
        sim.run_until(SimTime::from_nanos(31_000_000));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn double_bind_rejected() {
        let (_sim, net, _a, b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        let err = net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap_err();
        assert_eq!(err.endpoint.port, 80);
        assert!(err.to_string().contains("already bound"));
        // Different protocol on the same port is fine.
        net.bind(b, WireProtocol::Tcp, 80, sink).unwrap();
    }

    #[test]
    fn unbind_then_rebind() {
        let (_sim, net, _a, b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.unbind(b, WireProtocol::Udp, 80);
        net.bind(b, WireProtocol::Udp, 80, sink).unwrap();
    }

    #[test]
    fn ephemeral_ports_unique_per_node() {
        let (_sim, net, a, b) = two_nodes();
        let p1 = net.alloc_ephemeral_port(a, WireProtocol::Tcp).unwrap();
        let p2 = net.alloc_ephemeral_port(a, WireProtocol::Tcp).unwrap();
        let p3 = net.alloc_ephemeral_port(b, WireProtocol::Tcp).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(p1, 49152);
        assert_eq!(p3, 49152);
    }

    #[test]
    fn ephemeral_ports_wrap_around_and_skip_bound() {
        let (_sim, net, a, _b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        // Park the cursor near the top of the range, with the last two
        // ports already bound.
        net.bind(a, WireProtocol::Tcp, 65534, sink.clone()).unwrap();
        net.bind(a, WireProtocol::Tcp, 65535, sink.clone()).unwrap();
        net.inner.lock().next_ephemeral.insert(a, 65534);
        // Bound ports are skipped and the cursor wraps to the bottom.
        let p = net.alloc_ephemeral_port(a, WireProtocol::Tcp).unwrap();
        assert_eq!(p, 49152);
        // A different protocol has its own namespace: 65534 is free there.
        let q = net.alloc_ephemeral_port(a, WireProtocol::Udt);
        assert_eq!(q, Some(49153));
        net.inner.lock().next_ephemeral.insert(a, 65534);
        let q = net.alloc_ephemeral_port(a, WireProtocol::Udt).unwrap();
        assert_eq!(q, 65534);
    }

    #[test]
    fn ephemeral_exhaustion_errors_cleanly() {
        let (_sim, net, a, _b) = two_nodes();
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        for port in 49152..=u16::MAX {
            net.bind(a, WireProtocol::Tcp, port, sink.clone()).unwrap();
        }
        assert_eq!(net.alloc_ephemeral_port(a, WireProtocol::Tcp), None);
        // Freeing one port makes allocation succeed again.
        net.unbind(a, WireProtocol::Tcp, 50_000);
        assert_eq!(net.alloc_ephemeral_port(a, WireProtocol::Tcp), Some(50_000));
    }

    #[test]
    fn replaced_route_is_used_for_new_packets() {
        let sim = Sim::new(9);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let slow = net.add_link(LinkConfig::new(1e9, Duration::from_millis(50)));
        let fast = net.add_link(LinkConfig::new(1e9, Duration::from_millis(1)));
        net.set_route(a, b, vec![slow]);
        net.set_route(a, b, vec![fast]);
        assert_eq!(net.route(a, b), Some(vec![fast]));
        let sink = Arc::new(Counter(AtomicUsize::new(0)));
        net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
        net.send_packet(udp_packet(Endpoint::new(a, 1), Endpoint::new(b, 80)));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sink.0.load(Ordering::SeqCst), 1, "must use the fast route");
    }

    #[test]
    fn set_up_false_still_delivers_in_flight_but_sever_kills_them() {
        // Contrast of the two outage flavours: `set_up(false)` is an
        // unplugged uplink (in-flight packets arrive), `sever()` is carrier
        // loss (they die with DropReason::Severed).
        for (severed, expect_delivered) in [(false, 1), (true, 0)] {
            let (sim, net, a, b) = two_nodes();
            let sink = Arc::new(Counter(AtomicUsize::new(0)));
            net.bind(b, WireProtocol::Udp, 80, sink.clone()).unwrap();
            net.send_packet(udp_packet(Endpoint::new(a, 1000), Endpoint::new(b, 80)));
            // Cut the a→b link while the packet is mid-flight (5 ms delay).
            sim.schedule_in(Duration::from_millis(2), {
                let net = net.clone();
                move |_sim| {
                    let link = net.route(NodeId(0), NodeId(1)).unwrap()[0];
                    if severed {
                        net.link(link).sever();
                    } else {
                        net.link(link).set_up(false);
                    }
                }
            });
            sim.run_until(SimTime::from_secs(1));
            assert_eq!(sink.0.load(Ordering::SeqCst), expect_delivered, "severed={severed}");
            if severed {
                let link = net.route(NodeId(0), NodeId(1)).unwrap()[0];
                assert_eq!(net.link(link).stats().dropped_severed, 1);
                assert_eq!(net.stats().dropped_link, 1);
            }
        }
    }

    #[test]
    fn node_names_round_trip() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let a = net.add_node("alpha");
        assert_eq!(net.node_name(a), "alpha");
        assert_eq!(a.index(), 0);
    }
}
