//! Packet-level simulated UDT (UDP-based Data Transfer protocol,
//! Gu & Grossman 2007).
//!
//! UDT is a reliable, ordered stream over UDP with *rate-based* congestion
//! control (DAIMD): the sender paces packets at an inter-packet period,
//! increases its rate every `SYN` (10 ms) interval proportionally to the
//! estimated residual bandwidth, and multiplicatively backs off by 1/9 when
//! the receiver reports loss via NAK packets. Link capacity is estimated
//! from packet pairs (every 16th packet is sent back to back). Because loss
//! recovery is NAK-driven rather than window-driven, UDT sustains high
//! throughput on high bandwidth-delay-product paths where TCP collapses —
//! the core phenomenon of the paper's Figure 9.
//!
//! Two calibrated costs mirror the paper's observations:
//!
//! * a per-packet **receive-processing delay** (Netty/UDT implementation
//!   overhead) that caps UDT near ~11 MB/s even on loopback, and
//! * the UDP **policer** on EC2-like links (see
//!   [`PolicerConfig::ec2_udp`](crate::link::PolicerConfig::ec2_udp)) that
//!   pins wide-area UDT near 10 MB/s.
//!
//! The protocol buffer sizes (paper: raised from 12 MB to 100 MB) bound the
//! flow window; an undersized buffer caps throughput at `window/RTT`,
//! reproducing why the authors had to raise it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use kmsg_telemetry::{EventKind, Recorder};
use parking_lot::Mutex;

use crate::iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
use crate::network::{BindError, Network, PacketSink};
use crate::packet::{Endpoint, NodeId, Packet, PacketBody, WireProtocol};
use crate::time::SimTime;

/// UDT tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UdtConfig {
    /// Payload bytes per data packet.
    pub mss: usize,
    /// Send (protocol) buffer in bytes. The paper's deployment default was
    /// 12 MB, raised to 100 MB for high-BDP links.
    pub snd_buf: usize,
    /// Receive (protocol) buffer in bytes; advertised as the flow window.
    pub rcv_buf: usize,
    /// Rate-control interval (UDT's `SYN`).
    pub syn: Duration,
    /// Initial sending rate in packets per second.
    pub initial_rate_pps: f64,
    /// Per-packet receive processing time (implementation overhead).
    /// `Duration::ZERO` disables the bottleneck.
    pub rx_proc_delay: Duration,
    /// Receive processing queue depth in packets; overflow drops packets.
    pub rx_proc_backlog: usize,
    /// Expiration timeout: with in-flight data and no feedback for this
    /// long, everything unacknowledged is scheduled for retransmission.
    pub exp_timeout: Duration,
    /// How many consecutive expirations before the connection is declared
    /// dead.
    pub max_expirations: u32,
    /// Fire `on_writable` on every acknowledgement that frees send-buffer
    /// space (delivery-progress tracking for middleware).
    pub ack_progress_events: bool,
}

impl Default for UdtConfig {
    fn default() -> Self {
        UdtConfig {
            mss: 1448,
            snd_buf: 12 * 1024 * 1024,
            rcv_buf: 12 * 1024 * 1024,
            syn: Duration::from_millis(10),
            initial_rate_pps: 1000.0,
            rx_proc_delay: Duration::from_micros(130),
            rx_proc_backlog: 2048,
            exp_timeout: Duration::from_millis(300),
            max_expirations: 30,
            ack_progress_events: true,
        }
    }
}

impl UdtConfig {
    /// The paper's tuned configuration: 100 MB protocol buffers.
    #[must_use]
    pub fn tuned_buffers() -> Self {
        UdtConfig {
            snd_buf: 100 * 1024 * 1024,
            rcv_buf: 100 * 1024 * 1024,
            ..UdtConfig::default()
        }
    }
}

/// UDT control & data packets.
#[derive(Debug, Clone)]
pub enum UdtPacket {
    /// Connection request carrying the sender's flow window (receive buffer).
    Handshake {
        /// Advertised receive buffer in bytes.
        flow_window: u64,
    },
    /// Connection confirmation.
    HandshakeAck {
        /// Advertised receive buffer in bytes.
        flow_window: u64,
    },
    /// A data packet.
    Data {
        /// Packet sequence number.
        seq: u64,
        /// Whether this packet is the second of a back-to-back packet pair
        /// (bandwidth probe).
        probe: bool,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Cumulative acknowledgement, sent every `SYN` interval.
    Ack {
        /// Next expected in-order packet sequence.
        ack_seq: u64,
        /// Receiver's observed arrival rate, packets/s.
        rcv_rate_pps: f64,
        /// Receiver's packet-pair link capacity estimate, packets/s.
        capacity_pps: f64,
    },
    /// Negative acknowledgement listing lost packet ranges (inclusive).
    Nak {
        /// Lost `(from, to)` ranges, inclusive.
        ranges: Vec<(u64, u64)>,
    },
    /// Orderly shutdown after `final_seq` packets.
    Fin {
        /// Total number of data packets in the stream.
        final_seq: u64,
    },
    /// Confirms a [`UdtPacket::Fin`] after full delivery.
    FinAck,
}

impl UdtPacket {
    fn payload_len(&self) -> usize {
        match self {
            UdtPacket::Data { payload, .. } => payload.len(),
            UdtPacket::Nak { ranges } => 8 + ranges.len() * 16,
            _ => 16,
        }
    }
}

/// Per-connection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdtConnStats {
    /// Payload bytes accepted from the application.
    pub bytes_sent: u64,
    /// Payload bytes acknowledged by the receiver.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Data packets transmitted (including retransmissions).
    pub packets_sent: u64,
    /// Data packets retransmitted.
    pub retransmits: u64,
    /// NAKs received (sender side).
    pub naks_received: u64,
    /// Multiplicative rate decreases performed.
    pub rate_decreases: u64,
    /// Packets dropped by the receive-processing queue.
    pub rx_proc_drops: u64,
    /// Expiration events (no feedback while data in flight).
    pub expirations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Connecting,
    Established,
    Closed,
}

struct UdtInner {
    cfg: UdtConfig,
    state: State,
    local: Endpoint,
    peer: Endpoint,
    /// Whether this side sent the initial handshake (diagnostics / Debug).
    is_initiator: bool,
    handshake_sent_at: SimTime,
    rtt: Option<f64>,

    // --- sender side ---
    send_q: VecDeque<Bytes>,
    send_q_bytes: usize,
    unacked_bytes: usize,
    packets: BTreeMap<u64, Bytes>,
    snd_nxt: u64,
    snd_una: u64,
    loss_list: BTreeSet<u64>,
    snd_period_us: f64,
    last_dec_seq: u64,
    last_dec_at: SimTime,
    nak_in_syn: bool,
    sent_in_syn: u64,
    capacity_est_pps: f64,
    peer_flow_window: u64,
    pacer_active: bool,
    pacer_gen: u64,
    fin_queued: bool,
    fin_sent: bool,
    fin_acked: bool,
    last_feedback_at: SimTime,
    last_progress_at: SimTime,
    expirations_in_row: u32,

    // --- receiver side ---
    rcv_nxt: u64,
    expected_max: u64,
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: usize,
    missing: BTreeSet<u64>,
    pkts_since_ack: u64,
    rate_ewma_pps: f64,
    prev_arrival: Option<(u64, SimTime)>,
    pair_samples: VecDeque<f64>,
    proc_busy_until: SimTime,
    peer_fin_seq: Option<u64>,

    // --- notifications ---
    app_blocked: bool,
    connected_notified: bool,
    closed_notified: bool,

    stats: UdtConnStats,

    // --- telemetry ---
    /// Raw [`ConnectionId`] used to tag flight-recorder events.
    conn_id: u64,
    /// Recorder shared with the owning [`Sim`](crate::engine::Sim).
    rec: Recorder,
}

impl UdtInner {
    fn flight_pkts(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn flow_window_pkts(&self) -> u64 {
        let bytes = (self.cfg.snd_buf as u64).min(self.peer_flow_window);
        (bytes / self.cfg.mss as u64).max(2)
    }

    fn current_rate_pps(&self) -> f64 {
        1e6 / self.snd_period_us
    }

    fn capacity_median_pps(&self) -> f64 {
        if self.pair_samples.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.pair_samples.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN capacity sample"));
        v[v.len() / 2]
    }
}

enum Action {
    Send(UdtPacket),
    Deliver(Bytes),
    Connected,
    Writable,
    Closed(CloseReason),
    SchedulePacer(Duration, u64),
    ScheduleProc(SimTime, u64, bool),
}

pub(crate) struct UdtShared {
    id: ConnectionId,
    net: Network,
    inner: Mutex<UdtInner>,
    events: Mutex<Option<Arc<dyn StreamEvents>>>,
}

/// A simulated UDT connection handle. Cloning refers to the same connection.
#[derive(Clone)]
pub struct UdtConn {
    shared: Arc<UdtShared>,
}

impl fmt::Debug for UdtConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.shared.inner.lock();
        f.debug_struct("UdtConn")
            .field("id", &self.shared.id)
            .field("local", &inner.local)
            .field("peer", &inner.peer)
            .field("state", &inner.state)
            .field("initiator", &inner.is_initiator)
            .field("rate_pps", &inner.current_rate_pps())
            .finish()
    }
}

impl UdtShared {
    fn new_inner(
        cfg: UdtConfig,
        state: State,
        local: Endpoint,
        peer: Endpoint,
        is_initiator: bool,
        now: SimTime,
        conn_id: ConnectionId,
        rec: Recorder,
    ) -> UdtInner {
        let snd_period_us = 1e6 / cfg.initial_rate_pps;
        UdtInner {
            state,
            local,
            peer,
            is_initiator,
            handshake_sent_at: now,
            rtt: None,
            send_q: VecDeque::new(),
            send_q_bytes: 0,
            unacked_bytes: 0,
            packets: BTreeMap::new(),
            snd_nxt: 0,
            snd_una: 0,
            loss_list: BTreeSet::new(),
            snd_period_us,
            last_dec_seq: 0,
            last_dec_at: SimTime::ZERO,
            nak_in_syn: false,
            sent_in_syn: 0,
            capacity_est_pps: 0.0,
            peer_flow_window: cfg.rcv_buf as u64,
            pacer_active: false,
            pacer_gen: 0,
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            last_feedback_at: now,
            last_progress_at: now,
            expirations_in_row: 0,
            rcv_nxt: 0,
            expected_max: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            missing: BTreeSet::new(),
            pkts_since_ack: 0,
            rate_ewma_pps: 0.0,
            prev_arrival: None,
            pair_samples: VecDeque::with_capacity(16),
            proc_busy_until: now,
            peer_fin_seq: None,
            app_blocked: false,
            connected_notified: false,
            closed_notified: false,
            stats: UdtConnStats::default(),
            conn_id: conn_id.raw(),
            rec,
            cfg,
        }
    }

    fn process<F>(self: &Arc<Self>, f: F)
    where
        F: FnOnce(&mut UdtInner, SimTime, &mut Vec<Action>),
    {
        let now = self.net.sim().now();
        let mut actions = Vec::new();
        {
            let mut inner = self.inner.lock();
            f(&mut inner, now, &mut actions);
        }
        self.perform(actions);
    }

    fn perform(self: &Arc<Self>, actions: Vec<Action>) {
        // Mirror of the TCP fast path: data packets and pacer re-arms are
        // the common case, so the handler registration lock (and the
        // `Connection` wrapper) is only touched when an action actually
        // notifies the application.
        let needs_events = actions.iter().any(|a| {
            matches!(
                a,
                Action::Deliver(_) | Action::Connected | Action::Writable | Action::Closed(_)
            )
        });
        let (events, conn) = if needs_events {
            (
                self.events.lock().clone(),
                Some(Connection::Udt(UdtConn {
                    shared: self.clone(),
                })),
            )
        } else {
            (None, None)
        };
        for action in actions {
            match action {
                Action::Send(pkt) => {
                    let (src, dst) = {
                        let inner = self.inner.lock();
                        (inner.local, inner.peer)
                    };
                    let len = pkt.payload_len();
                    let wire = Packet::new(src, dst, WireProtocol::Udt, len, PacketBody::Udt(pkt));
                    self.net.send_packet(wire);
                }
                Action::Deliver(data) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_data(conn, data);
                    }
                }
                Action::Connected => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_connected(conn);
                    }
                }
                Action::Writable => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_writable(conn);
                    }
                }
                Action::Closed(reason) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_closed(conn, reason);
                    }
                }
                Action::SchedulePacer(delay, gen) => {
                    let weak = Arc::downgrade(self);
                    self.net.sim().schedule_in(delay, move |_| {
                        if let Some(shared) = weak.upgrade() {
                            shared.on_pacer(gen);
                        }
                    });
                }
                Action::ScheduleProc(at, seq, probe) => {
                    let weak = Arc::downgrade(self);
                    self.net.sim().schedule_at(at, move |_| {
                        if let Some(shared) = weak.upgrade() {
                            shared.on_data_processed(seq, probe);
                        }
                    });
                }
            }
        }
    }

    /// Periodic timers (ACK emission, rate control, expiration check) are
    /// started once the connection is established.
    fn start_timers(self: &Arc<Self>) {
        self.schedule_syn_tick();
        self.schedule_exp_tick();
    }

    fn schedule_syn_tick(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let syn = self.inner.lock().cfg.syn;
        self.net.sim().schedule_in(syn, move |_| {
            if let Some(shared) = weak.upgrade() {
                shared.on_syn_tick();
                shared.schedule_syn_tick();
            }
        });
    }

    fn schedule_exp_tick(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let exp = self.inner.lock().cfg.exp_timeout;
        self.net.sim().schedule_in(exp, move |_| {
            if let Some(shared) = weak.upgrade() {
                shared.on_exp_tick();
                shared.schedule_exp_tick();
            }
        });
    }

    /// Rate control + receiver-side ACK emission, every `SYN`.
    fn on_syn_tick(self: &Arc<Self>) {
        self.process(|inner, now, out| {
            if inner.state != State::Established {
                return;
            }
            // --- receiver duties: emit cumulative ACK with rate estimates.
            let interval = inner.cfg.syn.as_secs_f64();
            let cur_rate = inner.pkts_since_ack as f64 / interval;
            inner.rate_ewma_pps = if inner.rate_ewma_pps == 0.0 {
                cur_rate
            } else {
                0.875 * inner.rate_ewma_pps + 0.125 * cur_rate
            };
            inner.pkts_since_ack = 0;
            out.push(Action::Send(UdtPacket::Ack {
                ack_seq: inner.rcv_nxt,
                rcv_rate_pps: inner.rate_ewma_pps,
                capacity_pps: inner.capacity_median_pps(),
            }));
            // Re-request persistently missing packets.
            if !inner.missing.is_empty() {
                let ranges = collect_ranges(&inner.missing, 64);
                let losses = ranges.iter().map(|(f, t)| t - f + 1).sum();
                inner.rec.record(
                    now.as_nanos(),
                    EventKind::UdtNak {
                        conn: inner.conn_id,
                        sent: true,
                        losses,
                    },
                );
                out.push(Action::Send(UdtPacket::Nak { ranges }));
            }

            // --- sender duties: DAIMD rate increase (UDT4 formula).
            if !inner.nak_in_syn && inner.sent_in_syn > 0 {
                let mss = inner.cfg.mss as f64;
                let c_pps = inner.current_rate_pps();
                let l_pps = inner.capacity_est_pps;
                let b = l_pps - c_pps;
                let inc = if b <= 0.0 {
                    1.0 / mss
                } else {
                    let bits = b * mss * 8.0;
                    (10f64.powf(bits.log10().ceil()) * 1.5e-6 / mss).max(1.0 / mss)
                };
                let syn_us = inner.cfg.syn.as_secs_f64() * 1e6;
                inner.snd_period_us =
                    (inner.snd_period_us * syn_us) / (inner.snd_period_us * inc + syn_us);
                inner.snd_period_us = inner.snd_period_us.max(1.0);
                inner.rec.record(
                    now.as_nanos(),
                    EventKind::UdtRate {
                        conn: inner.conn_id,
                        period_us: inner.snd_period_us,
                        rate_pps: inner.current_rate_pps(),
                        cause: "syn_increase",
                    },
                );
            }
            inner.nak_in_syn = false;
            inner.sent_in_syn = 0;
            // Tail-loss probe: the receiver cannot NAK a loss at the very
            // end of the stream (no later packet exposes the gap), and its
            // periodic ACKs keep resetting the expiration timer. If the
            // cumulative ACK has not advanced for a couple of RTTs while
            // data is in flight, retransmit the first unacknowledged packet.
            if inner.flight_pkts() > 0 {
                let rtt = inner.rtt.unwrap_or(0.1);
                let stale = Duration::from_secs_f64((2.5 * rtt).max(0.05));
                if now.duration_since(inner.last_progress_at) > stale {
                    inner.loss_list.insert(inner.snd_una);
                    inner.last_progress_at = now;
                }
            } else if inner.fin_sent && !inner.fin_acked {
                let rtt = inner.rtt.unwrap_or(0.1);
                let stale = Duration::from_secs_f64((2.5 * rtt).max(0.05));
                if now.duration_since(inner.last_progress_at) > stale {
                    out.push(Action::Send(UdtPacket::Fin {
                        final_seq: inner.snd_nxt,
                    }));
                    inner.last_progress_at = now;
                }
            }
            restart_pacer(inner, out);
        });
    }

    /// Expiration: no feedback while data is in flight.
    fn on_exp_tick(self: &Arc<Self>) {
        self.process(|inner, now, out| {
            if inner.state != State::Established {
                return;
            }
            let idle = now.duration_since(inner.last_feedback_at);
            // Scale the expiration threshold with the measured RTT so a
            // long path does not trigger spurious go-back-N floods.
            let rtt = inner.rtt.unwrap_or(0.2);
            let threshold = inner.cfg.exp_timeout.max(Duration::from_secs_f64(3.0 * rtt));
            if idle < threshold {
                inner.expirations_in_row = 0;
                return;
            }
            let has_unacked =
                inner.flight_pkts() > 0 || (inner.fin_sent && !inner.fin_acked);
            if !has_unacked {
                inner.expirations_in_row = 0;
                return;
            }
            inner.stats.expirations += 1;
            inner.expirations_in_row += 1;
            if inner.expirations_in_row > inner.cfg.max_expirations {
                inner.state = State::Closed;
                if !inner.closed_notified {
                    inner.closed_notified = true;
                    out.push(Action::Closed(CloseReason::Timeout));
                }
                return;
            }
            // Schedule all in-flight packets for retransmission.
            for seq in inner.snd_una..inner.snd_nxt {
                if inner.packets.contains_key(&seq) {
                    inner.loss_list.insert(seq);
                }
            }
            if inner.fin_sent && !inner.fin_acked {
                let final_seq = inner.snd_nxt;
                out.push(Action::Send(UdtPacket::Fin { final_seq }));
            }
            restart_pacer(inner, out);
        });
    }

    /// The pacing clock: transmit one packet, reschedule.
    fn on_pacer(self: &Arc<Self>, gen: u64) {
        self.process(|inner, now, out| {
            if gen != inner.pacer_gen || inner.state != State::Established {
                return;
            }
            let sent_seq = send_one(inner, now, out);
            match sent_seq {
                Some(seq) => {
                    // Packet pairs: the packet after every 16th is sent
                    // back to back as a bandwidth probe.
                    let delay = if seq % 16 == 15 {
                        Duration::ZERO
                    } else {
                        Duration::from_secs_f64(inner.snd_period_us / 1e6)
                    };
                    inner.pacer_gen += 1;
                    out.push(Action::SchedulePacer(delay, inner.pacer_gen));
                }
                None => {
                    inner.pacer_active = false;
                }
            }
        });
    }

    /// A data packet cleared the receive-processing queue.
    fn on_data_processed(self: &Arc<Self>, seq: u64, probe: bool) {
        self.process(|inner, now, out| {
            if inner.state == State::Closed {
                return;
            }
            receive_data_packet(inner, seq, probe, now, out);
        });
    }

    fn handle_packet(self: &Arc<Self>, pkt: UdtPacket) {
        self.process(|inner, now, out| match pkt {
            UdtPacket::Handshake { flow_window } => {
                inner.peer_flow_window = flow_window;
                out.push(Action::Send(UdtPacket::HandshakeAck {
                    flow_window: inner.cfg.rcv_buf as u64,
                }));
                if inner.state == State::Connecting {
                    inner.state = State::Established;
                    if !inner.connected_notified {
                        inner.connected_notified = true;
                        out.push(Action::Connected);
                    }
                }
            }
            UdtPacket::HandshakeAck { flow_window } => {
                if inner.state == State::Connecting {
                    inner.peer_flow_window = flow_window;
                    inner.state = State::Established;
                    inner.rtt =
                        Some(now.duration_since(inner.handshake_sent_at).as_secs_f64());
                    if !inner.connected_notified {
                        inner.connected_notified = true;
                        out.push(Action::Connected);
                    }
                    restart_pacer(inner, out);
                }
            }
            UdtPacket::Data { seq, probe, payload } => {
                if inner.state != State::Established {
                    return;
                }
                inner.pkts_since_ack += 1;
                if inner.cfg.rx_proc_delay.is_zero() {
                    store_incoming(inner, seq, payload);
                    receive_data_packet(inner, seq, probe, now, out);
                } else {
                    let backlog = inner
                        .proc_busy_until
                        .duration_since(now)
                        .as_secs_f64()
                        / inner.cfg.rx_proc_delay.as_secs_f64();
                    if backlog as usize >= inner.cfg.rx_proc_backlog {
                        inner.stats.rx_proc_drops += 1;
                        return; // overload drop: will be NAKed
                    }
                    store_incoming(inner, seq, payload);
                    inner.proc_busy_until =
                        inner.proc_busy_until.max(now) + inner.cfg.rx_proc_delay;
                    out.push(Action::ScheduleProc(inner.proc_busy_until, seq, probe));
                }
            }
            UdtPacket::Ack {
                ack_seq,
                rcv_rate_pps: _,
                capacity_pps,
            } => {
                if inner.state != State::Established {
                    return;
                }
                inner.last_feedback_at = now;
                inner.expirations_in_row = 0;
                if capacity_pps > 0.0 {
                    inner.capacity_est_pps = capacity_pps;
                }
                if ack_seq > inner.snd_una {
                    let still_unacked = inner.packets.split_off(&ack_seq);
                    let acked_bytes: usize =
                        inner.packets.values().map(Bytes::len).sum();
                    inner.packets = still_unacked;
                    inner.unacked_bytes = inner.unacked_bytes.saturating_sub(acked_bytes);
                    inner.stats.bytes_acked += acked_bytes as u64;
                    inner.snd_una = ack_seq;
                    inner.last_progress_at = now;
                    if inner.cfg.ack_progress_events && acked_bytes > 0 {
                        inner.app_blocked = false;
                        out.push(Action::Writable);
                    }
                    let lost_below: Vec<u64> = inner
                        .loss_list
                        .range(..ack_seq)
                        .copied()
                        .collect();
                    for s in lost_below {
                        inner.loss_list.remove(&s);
                    }
                    maybe_writable(inner, out);
                    restart_pacer(inner, out);
                }
                if inner.fin_sent && !inner.fin_acked && inner.snd_una >= inner.snd_nxt {
                    // All data acknowledged; FIN outcome decided by FinAck.
                }
            }
            UdtPacket::Nak { ranges } => {
                if inner.state != State::Established {
                    return;
                }
                inner.last_feedback_at = now;
                inner.stats.naks_received += 1;
                inner.nak_in_syn = true;
                let mut first_lost = u64::MAX;
                let mut reported = 0u64;
                for (from, to) in ranges {
                    let to = to.min(inner.snd_nxt.saturating_sub(1));
                    for seq in from..=to {
                        if seq >= inner.snd_una && inner.packets.contains_key(&seq) {
                            inner.loss_list.insert(seq);
                            first_lost = first_lost.min(seq);
                            reported += 1;
                        }
                    }
                }
                inner.rec.record(
                    now.as_nanos(),
                    EventKind::UdtNak {
                        conn: inner.conn_id,
                        sent: false,
                        losses: reported,
                    },
                );
                // One multiplicative decrease per congestion epoch. An
                // epoch ends when loss is seen beyond the last decrease
                // point, or — when retransmissions themselves are being
                // dropped and sequence numbers stop advancing — after
                // roughly one RTT of wall time.
                if first_lost != u64::MAX {
                    let rtt = inner.rtt.unwrap_or(0.1);
                    let epoch = Duration::from_secs_f64(rtt.max(4.0 * inner.cfg.syn.as_secs_f64()));
                    let new_epoch = first_lost > inner.last_dec_seq
                        || now.duration_since(inner.last_dec_at) > epoch;
                    if new_epoch {
                        inner.snd_period_us *= 1.125;
                        inner.last_dec_seq = inner.snd_nxt;
                        inner.last_dec_at = now;
                        inner.stats.rate_decreases += 1;
                        inner.rec.record(
                            now.as_nanos(),
                            EventKind::UdtRate {
                                conn: inner.conn_id,
                                period_us: inner.snd_period_us,
                                rate_pps: inner.current_rate_pps(),
                                cause: "nak_decrease",
                            },
                        );
                    }
                }
                restart_pacer(inner, out);
            }
            UdtPacket::Fin { final_seq } => {
                inner.peer_fin_seq = Some(final_seq);
                try_finish_receive(inner, out);
            }
            UdtPacket::FinAck => {
                inner.fin_acked = true;
                if !inner.closed_notified {
                    inner.closed_notified = true;
                    inner.state = State::Closed;
                    out.push(Action::Closed(CloseReason::Normal));
                }
            }
        });
    }
}

/// Stores an arriving payload for ordered delivery (bounded by `rcv_buf`).
fn store_incoming(inner: &mut UdtInner, seq: u64, payload: Bytes) {
    if seq < inner.rcv_nxt || inner.ooo.contains_key(&seq) {
        return; // duplicate
    }
    if inner.ooo_bytes + payload.len() > inner.cfg.rcv_buf {
        inner.stats.rx_proc_drops += 1;
        return; // receive buffer overflow: packet is effectively lost
    }
    inner.ooo_bytes += payload.len();
    inner.ooo.insert(seq, payload);
}

/// Loss detection + in-order delivery once a packet has been "processed".
///
/// Packet-pair capacity samples are taken here, after the receive
/// processing stage, so the estimate reflects whichever of the wire or the
/// endpoint is the real bottleneck.
fn receive_data_packet(inner: &mut UdtInner, seq: u64, probe: bool, now: SimTime, out: &mut Vec<Action>) {
    if let Some((prev_seq, prev_at)) = inner.prev_arrival {
        if probe && prev_seq + 1 == seq {
            let d = now.duration_since(prev_at).as_secs_f64();
            if d > 0.0 {
                let pps = 1.0 / d;
                if inner.pair_samples.len() == 16 {
                    inner.pair_samples.pop_front();
                }
                inner.pair_samples.push_back(pps);
            }
        }
    }
    inner.prev_arrival = Some((seq, now));
    if seq >= inner.expected_max {
        // NAK any fresh gap immediately (UDT reports loss eagerly).
        if seq > inner.expected_max {
            let from = inner.expected_max;
            let to = seq - 1;
            for s in from..=to {
                inner.missing.insert(s);
            }
            inner.rec.record(
                now.as_nanos(),
                EventKind::UdtNak {
                    conn: inner.conn_id,
                    sent: true,
                    losses: to - from + 1,
                },
            );
            out.push(Action::Send(UdtPacket::Nak {
                ranges: vec![(from, to)],
            }));
        }
        inner.expected_max = seq + 1;
    }
    inner.missing.remove(&seq);
    // Deliver contiguous data.
    while let Some(entry) = inner.ooo.first_entry() {
        if *entry.key() != inner.rcv_nxt {
            break;
        }
        let data = entry.remove();
        inner.ooo_bytes -= data.len();
        inner.rcv_nxt += 1;
        inner.stats.bytes_delivered += data.len() as u64;
        out.push(Action::Deliver(data));
    }
    try_finish_receive(inner, out);
}

fn try_finish_receive(inner: &mut UdtInner, out: &mut Vec<Action>) {
    if let Some(final_seq) = inner.peer_fin_seq {
        if inner.rcv_nxt >= final_seq {
            out.push(Action::Send(UdtPacket::FinAck));
            if !inner.closed_notified {
                inner.closed_notified = true;
                inner.state = State::Closed;
                out.push(Action::Closed(CloseReason::Normal));
            }
        }
    }
}

/// Collects up to `cap` inclusive ranges from a sorted set.
fn collect_ranges(set: &BTreeSet<u64>, cap: usize) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &s in set {
        match ranges.last_mut() {
            Some((_, to)) if *to + 1 == s => *to = s,
            _ => {
                if ranges.len() == cap {
                    break;
                }
                ranges.push((s, s));
            }
        }
    }
    ranges
}

/// Transmits one packet if allowed: retransmissions first, then new data,
/// then a pending FIN. Returns the sequence sent (for pair scheduling).
fn send_one(inner: &mut UdtInner, _now: SimTime, out: &mut Vec<Action>) -> Option<u64> {
    // 1. Retransmission.
    while let Some(&seq) = inner.loss_list.iter().next() {
        inner.loss_list.remove(&seq);
        if seq < inner.snd_una {
            continue;
        }
        if let Some(payload) = inner.packets.get(&seq) {
            inner.stats.retransmits += 1;
            inner.stats.packets_sent += 1;
            inner.sent_in_syn += 1;
            out.push(Action::Send(UdtPacket::Data {
                seq,
                probe: false,
                payload: payload.clone(),
            }));
            return Some(seq);
        }
    }
    // 2. New data, if the flow window allows.
    if !inner.send_q.is_empty() && inner.flight_pkts() < inner.flow_window_pkts() {
        let head = inner.send_q.front_mut().expect("non-empty send queue");
        let take = head.len().min(inner.cfg.mss);
        let payload = head.split_to(take);
        if head.is_empty() {
            inner.send_q.pop_front();
        }
        inner.send_q_bytes -= take;
        let seq = inner.snd_nxt;
        inner.snd_nxt += 1;
        inner.packets.insert(seq, payload.clone());
        inner.stats.packets_sent += 1;
        inner.sent_in_syn += 1;
        out.push(Action::Send(UdtPacket::Data {
            seq,
            probe: seq.is_multiple_of(16) && seq > 0,
            payload,
        }));
        return Some(seq);
    }
    // 3. FIN once everything is out.
    if inner.fin_queued && !inner.fin_sent && inner.send_q.is_empty() {
        inner.fin_sent = true;
        out.push(Action::Send(UdtPacket::Fin {
            final_seq: inner.snd_nxt,
        }));
    }
    None
}

fn restart_pacer(inner: &mut UdtInner, out: &mut Vec<Action>) {
    if inner.pacer_active || inner.state != State::Established {
        return;
    }
    let work = !inner.loss_list.is_empty()
        || (!inner.send_q.is_empty() && inner.flight_pkts() < inner.flow_window_pkts())
        || (inner.fin_queued && !inner.fin_sent);
    if work {
        inner.pacer_active = true;
        inner.pacer_gen += 1;
        out.push(Action::SchedulePacer(Duration::ZERO, inner.pacer_gen));
    }
}

fn maybe_writable(inner: &mut UdtInner, out: &mut Vec<Action>) {
    if inner.app_blocked
        && inner.cfg.snd_buf.saturating_sub(inner.unacked_bytes) >= inner.cfg.mss
    {
        inner.app_blocked = false;
        out.push(Action::Writable);
    }
}

struct ConnSink {
    shared: Weak<UdtShared>,
}

impl PacketSink for ConnSink {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        if let Some(shared) = self.shared.upgrade() {
            if let PacketBody::Udt(p) = pkt.body {
                shared.handle_packet(p);
            }
        }
    }
}

impl UdtConn {
    /// Opens a UDT connection from an ephemeral port on `node` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if no local port could be bound.
    pub fn connect(
        net: &Network,
        node: NodeId,
        dst: Endpoint,
        cfg: UdtConfig,
        events: Arc<dyn StreamEvents>,
    ) -> Result<UdtConn, BindError> {
        let port = net.alloc_ephemeral_port(node);
        let local = Endpoint::new(node, port);
        let now = net.sim().now();
        let id = ConnectionId::fresh(net.sim());
        let shared = Arc::new(UdtShared {
            id,
            net: net.clone(),
            inner: Mutex::new(UdtShared::new_inner(
                cfg,
                State::Connecting,
                local,
                dst,
                true,
                now,
                id,
                net.sim().recorder().clone(),
            )),
            events: Mutex::new(Some(events)),
        });
        let sink = Arc::new(ConnSink {
            shared: Arc::downgrade(&shared),
        });
        net.bind(node, WireProtocol::Udt, port, sink)?;
        shared.start_timers();
        send_handshake(&shared, 0);
        Ok(UdtConn { shared })
    }

    /// The connection id.
    #[must_use]
    pub fn id(&self) -> ConnectionId {
        self.shared.id
    }

    /// Local endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.shared.inner.lock().local
    }

    /// Remote endpoint.
    #[must_use]
    pub fn peer(&self) -> Endpoint {
        self.shared.inner.lock().peer
    }

    /// Whether the handshake completed and the connection is open.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.shared.inner.lock().state == State::Established
    }

    /// Appends bytes to the send buffer; returns how many were accepted.
    pub fn send(&self, data: Bytes) -> usize {
        let mut accepted = 0;
        self.shared.process(|inner, _now, out| {
            if inner.state == State::Closed || inner.fin_queued {
                return;
            }
            let space = inner.cfg.snd_buf.saturating_sub(inner.unacked_bytes);
            let take = space.min(data.len());
            if take < data.len() {
                inner.app_blocked = true;
            }
            if take > 0 {
                inner.send_q.push_back(data.slice(0..take));
                inner.send_q_bytes += take;
                inner.unacked_bytes += take;
                inner.stats.bytes_sent += take as u64;
                restart_pacer(inner, out);
            }
            accepted = take;
        });
        accepted
    }

    /// Free space in the send buffer.
    #[must_use]
    pub fn free_send_buffer(&self) -> usize {
        let inner = self.shared.inner.lock();
        inner.cfg.snd_buf.saturating_sub(inner.unacked_bytes)
    }

    /// Bytes accepted but not yet acknowledged (queued + in flight).
    #[must_use]
    pub fn unacked_bytes(&self) -> usize {
        self.shared.inner.lock().unacked_bytes
    }

    /// Cumulative payload bytes acknowledged by the receiver.
    #[must_use]
    pub fn acked_bytes(&self) -> u64 {
        self.shared.inner.lock().stats.bytes_acked
    }

    /// RTT measured during the handshake (initiator side only).
    #[must_use]
    pub fn rtt_estimate(&self) -> Option<Duration> {
        self.shared.inner.lock().rtt.map(Duration::from_secs_f64)
    }

    /// Orderly close: a FIN follows the last buffered byte.
    pub fn close(&self) {
        self.shared.process(|inner, _now, out| {
            if inner.fin_queued || inner.state == State::Closed {
                return;
            }
            inner.fin_queued = true;
            restart_pacer(inner, out);
        });
    }

    /// Per-connection counters.
    #[must_use]
    pub fn stats(&self) -> UdtConnStats {
        self.shared.inner.lock().stats
    }

    /// Current pacing rate in packets per second (diagnostics).
    #[must_use]
    pub fn rate_pps(&self) -> f64 {
        self.shared.inner.lock().current_rate_pps()
    }
}

fn send_handshake(shared: &Arc<UdtShared>, attempt: u32) {
    let retry = {
        let inner = shared.inner.lock();
        inner.state == State::Connecting
    };
    if !retry {
        return;
    }
    if attempt > 12 {
        shared.process(|inner, _now, out| {
            if inner.state == State::Connecting && !inner.closed_notified {
                inner.state = State::Closed;
                inner.closed_notified = true;
                out.push(Action::Closed(CloseReason::Timeout));
            }
        });
        return;
    }
    shared.process(|inner, _now, out| {
        out.push(Action::Send(UdtPacket::Handshake {
            flow_window: inner.cfg.rcv_buf as u64,
        }));
    });
    let weak = Arc::downgrade(shared);
    shared
        .net
        .sim()
        .schedule_in(Duration::from_millis(250), move |_| {
            if let Some(shared) = weak.upgrade() {
                send_handshake(&shared, attempt + 1);
            }
        });
}

struct ListenerShared {
    net: Network,
    local: Endpoint,
    cfg: UdtConfig,
    handler: Arc<dyn StreamAccept>,
    conns: Mutex<std::collections::HashMap<Endpoint, Arc<UdtShared>>>,
}

/// A UDT listening socket that accepts incoming connections.
#[derive(Clone)]
pub struct UdtListener {
    shared: Arc<ListenerShared>,
}

impl fmt::Debug for UdtListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdtListener")
            .field("local", &self.shared.local)
            .finish()
    }
}

struct ListenerSink {
    shared: Weak<ListenerShared>,
}

impl PacketSink for ListenerSink {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        let Some(listener) = self.shared.upgrade() else {
            return;
        };
        let PacketBody::Udt(p) = pkt.body else {
            return;
        };
        let existing = listener.conns.lock().get(&pkt.src).cloned();
        if let Some(conn) = existing {
            conn.handle_packet(p);
            return;
        }
        let UdtPacket::Handshake { .. } = p else {
            return; // stray packet for an unknown connection
        };
        let now = listener.net.sim().now();
        let id = ConnectionId::fresh(listener.net.sim());
        let shared = Arc::new(UdtShared {
            id,
            net: listener.net.clone(),
            inner: Mutex::new(UdtShared::new_inner(
                listener.cfg.clone(),
                State::Connecting,
                listener.local,
                pkt.src,
                false,
                now,
                id,
                listener.net.sim().recorder().clone(),
            )),
            events: Mutex::new(None),
        });
        let conn = Connection::Udt(UdtConn {
            shared: shared.clone(),
        });
        let events = listener.handler.on_accept(&conn);
        *shared.events.lock() = Some(events);
        listener.conns.lock().insert(pkt.src, shared.clone());
        shared.start_timers();
        shared.handle_packet(p);
    }
}

impl UdtListener {
    /// Binds a UDT listener on `node`/`port`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the port is taken.
    pub fn bind(
        net: &Network,
        node: NodeId,
        port: u16,
        cfg: UdtConfig,
        handler: Arc<dyn StreamAccept>,
    ) -> Result<UdtListener, BindError> {
        let shared = Arc::new(ListenerShared {
            net: net.clone(),
            local: Endpoint::new(node, port),
            cfg,
            handler,
            conns: Mutex::new(std::collections::HashMap::new()),
        });
        let sink = Arc::new(ListenerSink {
            shared: Arc::downgrade(&shared),
        });
        net.bind(node, WireProtocol::Udt, port, sink)?;
        Ok(UdtListener { shared })
    }

    /// The listening endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.shared.local
    }

    /// Number of accepted connections.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::link::{LinkConfig, PolicerConfig};
    use crate::testutil::{PatternSender, Recorder};

    struct AcceptRecorder {
        rec: Arc<Recorder>,
    }
    impl StreamAccept for AcceptRecorder {
        fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
            self.rec.clone()
        }
    }

    fn setup(link: LinkConfig) -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(21);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, link);
        (sim, net, a, b)
    }

    fn listen(net: &Network, b: NodeId, rec: &Arc<Recorder>, cfg: UdtConfig) -> UdtListener {
        UdtListener::bind(net, b, 90, cfg, Arc::new(AcceptRecorder { rec: rec.clone() }))
            .expect("bind")
    }

    #[test]
    fn handshake_completes() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let client = Arc::new(Recorder::default());
        let conn = UdtConn::connect(
            &net,
            a,
            Endpoint::new(b, 90),
            UdtConfig::default(),
            client.clone(),
        )
        .unwrap();
        sim.run_for(Duration::from_secs(1));
        assert!(conn.is_established());
        assert_eq!(client.connected(), 1);
        assert_eq!(server.connected(), 1);
        let rtt = conn.rtt_estimate().expect("handshake RTT").as_secs_f64();
        assert!((0.009..0.02).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn small_transfer_in_order() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let pump = PatternSender::new(&sim, 100_000);
        let _conn = UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), pump)
            .unwrap();
        sim.run_for(Duration::from_secs(5));
        assert_eq!(server.data_len(), 100_000);
        assert!(server.in_order());
    }

    #[test]
    fn high_rtt_throughput_beats_windowed_tcp_shape() {
        // 125 MB/s link, 320 ms RTT, clean except the processing cap:
        // UDT should ramp to ~10 MB/s (1/130 µs per packet) regardless of
        // the huge BDP.
        let (sim, net, a, b) = setup(LinkConfig::new(125e6, Duration::from_millis(160)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = listen(&net, b, &server, UdtConfig::tuned_buffers());
        let total = 40_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = UdtConn::connect(
            &net,
            a,
            Endpoint::new(b, 90),
            UdtConfig::tuned_buffers(),
            pump,
        )
        .unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total, "all bytes must arrive");
        assert!(server.in_order());
        let rate = server.goodput();
        assert!(
            rate > 5e6,
            "UDT must sustain multi-MB/s at 320 ms RTT, got {rate:.0} B/s"
        );
        let _ = conn;
    }

    #[test]
    fn policer_pins_rate_near_10mbps() {
        let link = LinkConfig::new(125e6, Duration::from_millis(77))
            .udp_policer(PolicerConfig::ec2_udp());
        let (sim, net, a, b) = setup(link);
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = listen(&net, b, &server, UdtConfig::tuned_buffers());
        let total = 60_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = UdtConn::connect(
            &net,
            a,
            Endpoint::new(b, 90),
            UdtConfig::tuned_buffers(),
            pump,
        )
        .unwrap();
        sim.run_for(Duration::from_secs(120));
        assert_eq!(server.data_len(), total);
        let rate = server.goodput();
        assert!(
            (4e6..11e6).contains(&rate),
            "policed UDT should sit below the 10 MB/s policer, got {rate:.0}"
        );
        assert!(conn.stats().naks_received > 0, "policer drops must cause NAKs");
        assert!(conn.stats().rate_decreases > 0);
    }

    #[test]
    fn small_flow_window_caps_throughput() {
        // The paper's motivation for raising protocol buffers from 12 MB to
        // 100 MB: a small window caps throughput at window/RTT.
        let small = UdtConfig {
            snd_buf: 512 * 1024,
            rcv_buf: 512 * 1024,
            ..UdtConfig::default()
        };
        let (sim, net, a, b) = setup(LinkConfig::new(125e6, Duration::from_millis(160)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = listen(&net, b, &server, small.clone());
        let total = 10_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let _conn = UdtConn::connect(&net, a, Endpoint::new(b, 90), small, pump).unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total);
        let rate = server.goodput();
        // window/RTT = 512 KiB / 0.32 s ~ 1.6 MB/s
        assert!(
            rate < 2.5e6,
            "window-limited UDT must stay near window/RTT, got {rate:.0}"
        );
    }

    #[test]
    fn recovers_from_random_loss_in_order() {
        let (sim, net, a, b) = setup(
            LinkConfig::new(20e6, Duration::from_millis(20)).random_loss(0.01),
        );
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let total = 3_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), pump)
            .unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total, "reliable despite 1% loss");
        assert!(server.in_order());
        assert!(conn.stats().retransmits > 0);
    }

    #[test]
    fn close_handshake_notifies_both_sides() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let pump = PatternSender::closing(&sim, 50_000);
        let client_events = pump.clone();
        let _conn =
            UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), client_events)
                .unwrap();
        sim.run_for(Duration::from_secs(10));
        assert_eq!(server.data_len(), 50_000);
        assert_eq!(server.closed(), 1, "receiver must see Normal close");
        assert_eq!(server.close_reasons(), vec![CloseReason::Normal]);
    }

    #[test]
    fn connect_to_black_hole_times_out() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let client = Arc::new(Recorder::default());
        let conn =
            UdtConn::connect(&net, a, Endpoint::new(b, 91), UdtConfig::default(), client.clone())
                .unwrap();
        sim.run_for(Duration::from_secs(30));
        assert!(!conn.is_established());
        assert_eq!(client.closed(), 1);
        assert_eq!(client.close_reasons(), vec![CloseReason::Timeout]);
    }

    #[test]
    fn collect_ranges_merges_runs() {
        let set: BTreeSet<u64> = [1, 2, 3, 7, 9, 10].into_iter().collect();
        assert_eq!(collect_ranges(&set, 64), vec![(1, 3), (7, 7), (9, 10)]);
        assert_eq!(collect_ranges(&set, 2), vec![(1, 3), (7, 7)]);
        assert!(collect_ranges(&BTreeSet::new(), 4).is_empty());
    }
}
