//! Packet-level simulated UDT (UDP-based Data Transfer protocol,
//! Gu & Grossman 2007).
//!
//! UDT is a reliable, ordered stream over UDP with *rate-based* congestion
//! control (DAIMD): the sender paces packets at an inter-packet period,
//! increases its rate every `SYN` (10 ms) interval proportionally to the
//! estimated residual bandwidth, and multiplicatively backs off by 1/9 when
//! the receiver reports loss via NAK packets. Link capacity is estimated
//! from packet pairs (every 16th packet is sent back to back). Because loss
//! recovery is NAK-driven rather than window-driven, UDT sustains high
//! throughput on high bandwidth-delay-product paths where TCP collapses —
//! the core phenomenon of the paper's Figure 9.
//!
//! Two calibrated costs mirror the paper's observations:
//!
//! * a per-packet **receive-processing delay** (Netty/UDT implementation
//!   overhead) that caps UDT near ~11 MB/s even on loopback, and
//! * the UDP **policer** on EC2-like links (see
//!   [`PolicerConfig::ec2_udp`](crate::link::PolicerConfig::ec2_udp)) that
//!   pins wide-area UDT near 10 MB/s.
//!
//! The protocol buffer sizes (paper: raised from 12 MB to 100 MB) bound the
//! flow window; an undersized buffer caps throughput at `window/RTT`,
//! reproducing why the authors had to raise it.
//!
//! # Flow storage
//!
//! Like TCP, all per-connection state lives in one [`Slab`] inside the
//! per-network [`UdtStack`]; packets and the five periodic/one-shot timers
//! (pacer, `SYN` tick, expiration tick, receive-processing completion,
//! handshake retry) address flows through 8-byte handles and packed
//! `kind | slot | aux` tokens. See `DESIGN.md` §12.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use kmsg_telemetry::{EventKind, Recorder, SpanKind};
use parking_lot::Mutex;

use crate::engine::{EventTarget, Sim};
use crate::iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
use crate::memscope;
use crate::network::{BindError, Network, PacketSink, WeakNetwork};
use crate::packet::{Endpoint, NodeId, Packet, PacketBody, WireProtocol};
use crate::slab::{FxHashMap, Handle, Slab};
use crate::time::SimTime;
use crate::timerwheel::StackTimerWheel;

/// UDT tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UdtConfig {
    /// Payload bytes per data packet.
    pub mss: usize,
    /// Send (protocol) buffer in bytes. The paper's deployment default was
    /// 12 MB, raised to 100 MB for high-BDP links.
    pub snd_buf: usize,
    /// Receive (protocol) buffer in bytes; advertised as the flow window.
    pub rcv_buf: usize,
    /// Rate-control interval (UDT's `SYN`).
    pub syn: Duration,
    /// Initial sending rate in packets per second.
    pub initial_rate_pps: f64,
    /// Per-packet receive processing time (implementation overhead).
    /// `Duration::ZERO` disables the bottleneck.
    pub rx_proc_delay: Duration,
    /// Receive processing queue depth in packets; overflow drops packets.
    pub rx_proc_backlog: usize,
    /// Expiration timeout: with in-flight data and no feedback for this
    /// long, everything unacknowledged is scheduled for retransmission.
    pub exp_timeout: Duration,
    /// How many consecutive expirations before the connection is declared
    /// dead.
    pub max_expirations: u32,
    /// Fire `on_writable` on every acknowledgement that frees send-buffer
    /// space (delivery-progress tracking for middleware).
    pub ack_progress_events: bool,
}

impl Default for UdtConfig {
    fn default() -> Self {
        UdtConfig {
            mss: 1448,
            snd_buf: 12 * 1024 * 1024,
            rcv_buf: 12 * 1024 * 1024,
            syn: Duration::from_millis(10),
            initial_rate_pps: 1000.0,
            rx_proc_delay: Duration::from_micros(130),
            rx_proc_backlog: 2048,
            exp_timeout: Duration::from_millis(300),
            max_expirations: 30,
            ack_progress_events: true,
        }
    }
}

impl UdtConfig {
    /// The paper's tuned configuration: 100 MB protocol buffers.
    #[must_use]
    pub fn tuned_buffers() -> Self {
        UdtConfig {
            snd_buf: 100 * 1024 * 1024,
            rcv_buf: 100 * 1024 * 1024,
            ..UdtConfig::default()
        }
    }
}

/// UDT control & data packets.
#[derive(Debug, Clone)]
pub enum UdtPacket {
    /// Connection request carrying the sender's flow window (receive buffer).
    Handshake {
        /// Advertised receive buffer in bytes.
        flow_window: u64,
    },
    /// Connection confirmation.
    HandshakeAck {
        /// Advertised receive buffer in bytes.
        flow_window: u64,
    },
    /// A data packet.
    Data {
        /// Packet sequence number.
        seq: u64,
        /// Whether this packet is the second of a back-to-back packet pair
        /// (bandwidth probe).
        probe: bool,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Cumulative acknowledgement, sent every `SYN` interval.
    Ack {
        /// Next expected in-order packet sequence.
        ack_seq: u64,
        /// Receiver's observed arrival rate, packets/s.
        rcv_rate_pps: f64,
        /// Receiver's packet-pair link capacity estimate, packets/s.
        capacity_pps: f64,
    },
    /// Negative acknowledgement listing lost packet ranges (inclusive).
    Nak {
        /// Lost `(from, to)` ranges, inclusive.
        ranges: Vec<(u64, u64)>,
    },
    /// Orderly shutdown after `final_seq` packets.
    Fin {
        /// Total number of data packets in the stream.
        final_seq: u64,
    },
    /// Confirms a [`UdtPacket::Fin`] after full delivery.
    FinAck,
}

impl UdtPacket {
    fn payload_len(&self) -> usize {
        match self {
            UdtPacket::Data { payload, .. } => payload.len(),
            UdtPacket::Nak { ranges } => 8 + ranges.len() * 16,
            _ => 16,
        }
    }
}

/// Per-connection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdtConnStats {
    /// Payload bytes accepted from the application.
    pub bytes_sent: u64,
    /// Payload bytes acknowledged by the receiver.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Data packets transmitted (including retransmissions).
    pub packets_sent: u64,
    /// Data packets retransmitted.
    pub retransmits: u64,
    /// NAKs received (sender side).
    pub naks_received: u64,
    /// Multiplicative rate decreases performed.
    pub rate_decreases: u64,
    /// Packets dropped by the receive-processing queue.
    pub rx_proc_drops: u64,
    /// Expiration events (no feedback while data in flight).
    pub expirations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Connecting,
    Established,
    Closed,
}

/// Packs an endpoint into a dense map key (mirrors `tcp::ep_key`).
fn ep_key(e: Endpoint) -> u64 {
    (u64::from(e.node.index()) << 16) | u64::from(e.port)
}

fn pair_key(local: Endpoint, peer: Endpoint) -> u128 {
    (u128::from(ep_key(local)) << 64) | u128::from(ep_key(peer))
}

/// Releases a drained queue's retained ring storage so a long-lived idle
/// flow doesn't pin its peak-burst capacity; small rings are kept to avoid
/// realloc thrash on steady-state flows.
fn release_drained<T>(q: &mut VecDeque<T>) {
    if q.is_empty() && q.capacity() >= 32 {
        *q = VecDeque::new();
    }
}

/// Timer-token layout: `kind(3) | slot-index(29) | aux(32)`.
///
/// `aux` carries the pacer generation (truncated to 32 bits and compared
/// truncated on both sides) for `KIND_PACER`, and the attempt counter for
/// `KIND_HS_RETRY`; the periodic ticks and the receive-processing queue
/// don't need it (flow slots are never reused, and processing completions
/// are consumed strictly in FIFO order from the flow's own queue).
///
/// Per-flow tokens wait in the stack's [`StackTimerWheel`]; the only
/// engine-facing events are `KIND_WHEEL` ticks whose low 61 bits carry the
/// tick's nanosecond timestamp (same scheme as the TCP stack).
const TOKEN_KIND_SHIFT: u32 = 61;
const TOKEN_IDX_SHIFT: u32 = 32;
const TOKEN_IDX_MASK: u64 = (1 << 29) - 1;
const KIND_PACER: u64 = 0;
const KIND_SYN_TICK: u64 = 1;
const KIND_EXP_TICK: u64 = 2;
const KIND_PROC: u64 = 3;
const KIND_HS_RETRY: u64 = 4;
/// A coalesced wheel tick servicing every flow timer due at that instant.
const KIND_WHEEL: u64 = 5;
/// Mask for the tick timestamp carried by a `KIND_WHEEL` token.
const WHEEL_TICK_MASK: u64 = (1 << TOKEN_KIND_SHIFT) - 1;

fn token(kind: u64, h: Handle<Flow>, aux: u32) -> u64 {
    (kind << TOKEN_KIND_SHIFT)
        | ((h.index() as u64 & TOKEN_IDX_MASK) << TOKEN_IDX_SHIFT)
        | u64::from(aux)
}

/// Full per-flow UDT state: one slab slot, no interior `Arc`s.
struct Flow {
    cfg_id: u16,
    state: State,
    local: Endpoint,
    peer: Endpoint,
    /// Whether this side sent the initial handshake (diagnostics / Debug).
    is_initiator: bool,
    handshake_sent_at: SimTime,
    rtt: Option<f64>,

    // --- sender side ---
    send_q: VecDeque<Bytes>,
    send_q_bytes: usize,
    unacked_bytes: usize,
    packets: BTreeMap<u64, Bytes>,
    snd_nxt: u64,
    snd_una: u64,
    loss_list: BTreeSet<u64>,
    /// Raw `nak_recovery` causal-span id covering the window from the
    /// first loss-listed sequence to the loss list draining (0 outside a
    /// recovery episode or while tracing is off).
    nak_span: u64,
    snd_period_us: f64,
    last_dec_seq: u64,
    last_dec_at: SimTime,
    nak_in_syn: bool,
    sent_in_syn: u64,
    capacity_est_pps: f64,
    peer_flow_window: u64,
    pacer_active: bool,
    pacer_gen: u64,
    fin_queued: bool,
    fin_sent: bool,
    fin_acked: bool,
    last_feedback_at: SimTime,
    last_progress_at: SimTime,
    expirations_in_row: u32,

    // --- receiver side ---
    rcv_nxt: u64,
    expected_max: u64,
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: usize,
    missing: BTreeSet<u64>,
    pkts_since_ack: u64,
    rate_ewma_pps: f64,
    prev_arrival: Option<(u64, SimTime)>,
    pair_samples: VecDeque<f64>,
    proc_busy_until: SimTime,
    /// Packets waiting in the modelled receive-processing queue, in
    /// completion order. `proc_busy_until` is monotone, so completion
    /// events fire in push order and each pops the front.
    proc_fifo: VecDeque<(u64, bool)>,
    peer_fin_seq: Option<u64>,

    // --- notifications ---
    app_blocked: bool,
    connected_notified: bool,
    closed_notified: bool,

    stats: UdtConnStats,

    /// Raw [`ConnectionId`] used to tag flight-recorder events.
    conn_id: u64,
    /// The application's event handler (absent until `on_accept` returns).
    events: Option<Arc<dyn StreamEvents>>,
    /// Connect-created flows die in place when the application drops its
    /// last [`UdtConn`]; accepted flows are owned by their listener entry.
    app_owned: bool,
    /// Live [`UdtConn`] wrappers referring to this slot.
    app_handles: u32,
}

impl Flow {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg_id: u16,
        cfg: &UdtConfig,
        state: State,
        local: Endpoint,
        peer: Endpoint,
        is_initiator: bool,
        now: SimTime,
        conn_id: u64,
        app_owned: bool,
    ) -> Flow {
        let snd_period_us = 1e6 / cfg.initial_rate_pps;
        Flow {
            cfg_id,
            state,
            local,
            peer,
            is_initiator,
            handshake_sent_at: now,
            rtt: None,
            send_q: VecDeque::new(),
            send_q_bytes: 0,
            unacked_bytes: 0,
            packets: BTreeMap::new(),
            snd_nxt: 0,
            snd_una: 0,
            loss_list: BTreeSet::new(),
            nak_span: 0,
            snd_period_us,
            last_dec_seq: 0,
            last_dec_at: SimTime::ZERO,
            nak_in_syn: false,
            sent_in_syn: 0,
            capacity_est_pps: 0.0,
            peer_flow_window: cfg.rcv_buf as u64,
            pacer_active: false,
            pacer_gen: 0,
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            last_feedback_at: now,
            last_progress_at: now,
            expirations_in_row: 0,
            rcv_nxt: 0,
            expected_max: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            missing: BTreeSet::new(),
            pkts_since_ack: 0,
            rate_ewma_pps: 0.0,
            prev_arrival: None,
            pair_samples: VecDeque::with_capacity(16),
            proc_busy_until: now,
            proc_fifo: VecDeque::new(),
            peer_fin_seq: None,
            app_blocked: false,
            connected_notified: false,
            closed_notified: false,
            stats: UdtConnStats::default(),
            conn_id,
            events: None,
            app_owned,
            app_handles: 1,
        }
    }

    fn flight_pkts(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn current_rate_pps(&self) -> f64 {
        1e6 / self.snd_period_us
    }

    fn capacity_median_pps(&self) -> f64 {
        if self.pair_samples.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.pair_samples.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN capacity sample"));
        v[v.len() / 2]
    }
}

fn flow_window_pkts(flow: &Flow, cfg: &UdtConfig) -> u64 {
    let bytes = (cfg.snd_buf as u64).min(flow.peer_flow_window);
    (bytes / cfg.mss as u64).max(2)
}

enum Action {
    Send(UdtPacket),
    Deliver(Bytes),
    Connected,
    Writable,
    Closed(CloseReason),
    /// Re-arm the pacing clock after `delay` with the given generation.
    ArmPacer(Duration, u64),
    /// Next periodic rate-control / ACK-emission tick.
    ArmSynTick(Duration),
    /// Next periodic expiration check.
    ArmExpTick(Duration),
    /// Receive-processing completion at an absolute time (the matching
    /// `(seq, probe)` rides the flow's `proc_fifo`).
    ArmProc(SimTime),
    /// Handshake retransmission with its attempt counter.
    ArmHsRetry(Duration, u32),
}

/// A port with a registered [`StreamAccept`] handler plus its accepted
/// flows (kept for the life of the stack, mirroring the previous
/// listener-owned connection table).
struct ListenerEntry {
    cfg_id: u16,
    handler: Arc<dyn StreamAccept>,
    conns: FxHashMap<u64, Handle<Flow>>,
}

struct StackInner {
    flows: Slab<Flow>,
    configs: Vec<UdtConfig>,
    conn_index: FxHashMap<u128, Handle<Flow>>,
    listeners: FxHashMap<u64, ListenerEntry>,
    timers: StackTimerWheel,
}

/// Per-network UDT state: every flow on the network lives in this one slab.
///
/// The stack is the [`PacketSink`] for every UDT port and the
/// [`EventTarget`] for every UDT timer (see the token layout above).
/// Created lazily by [`Network::udt_stack`]; the fabric back-reference is
/// weak to avoid a retain cycle through the sink table.
pub(crate) struct UdtStack {
    sim: Sim,
    rec: Recorder,
    net: WeakNetwork,
    self_weak: Weak<UdtStack>,
    inner: Mutex<StackInner>,
}

impl UdtStack {
    pub(crate) fn new(sim: Sim, net: WeakNetwork) -> Arc<UdtStack> {
        let rec = sim.recorder().clone();
        Arc::new_cyclic(|weak| UdtStack {
            sim,
            rec,
            net,
            self_weak: weak.clone(),
            inner: Mutex::new(StackInner {
                flows: Slab::new(),
                configs: Vec::new(),
                conn_index: FxHashMap::default(),
                listeners: FxHashMap::default(),
                timers: StackTimerWheel::new(),
            }),
        })
    }

    fn intern(configs: &mut Vec<UdtConfig>, cfg: UdtConfig) -> u16 {
        if let Some(i) = configs.iter().position(|c| *c == cfg) {
            return i as u16;
        }
        let id = u16::try_from(configs.len()).expect("too many distinct UdtConfigs");
        configs.push(cfg);
        id
    }

    fn retain_handle(&self, h: Handle<Flow>) {
        let mut inner = self.inner.lock();
        if let Some(flow) = inner.flows.get_mut(h) {
            flow.app_handles += 1;
        }
    }

    /// Drops one app handle; the last handle of a connect-created flow
    /// kills it in place (see `tcp::TcpStack::release_handle`).
    fn release_handle(&self, h: Handle<Flow>) {
        let _events = {
            let mut inner = self.inner.lock();
            let Some(flow) = inner.flows.get_mut(h) else {
                return;
            };
            flow.app_handles = flow.app_handles.saturating_sub(1);
            if flow.app_handles > 0 || !flow.app_owned {
                return;
            }
            flow.state = State::Closed;
            flow.pacer_active = false;
            // Fresh containers rather than clear(): a killed flow's slot
            // lingers in the slab, and VecDeque::clear keeps its ring
            // buffer allocated (the B-tree containers free on clear).
            flow.send_q = VecDeque::new();
            flow.send_q_bytes = 0;
            flow.packets.clear();
            flow.loss_list.clear();
            if flow.nak_span != 0 {
                self.rec.record(
                    self.sim.now().as_nanos(),
                    EventKind::SpanClose {
                        span: flow.nak_span,
                        key: 1,
                    },
                );
                flow.nak_span = 0;
            }
            flow.ooo.clear();
            flow.ooo_bytes = 0;
            flow.missing.clear();
            flow.proc_fifo = VecDeque::new();
            flow.pair_samples = VecDeque::new();
            let key = pair_key(flow.local, flow.peer);
            let events = flow.events.take();
            inner.conn_index.remove(&key);
            events
        };
    }

    fn make_conn(self: &Arc<Self>, h: Handle<Flow>, id: u64, local: Endpoint, peer: Endpoint) -> UdtConn {
        self.retain_handle(h);
        UdtConn {
            stack: self.clone(),
            h,
            id: ConnectionId::from_raw(id),
            local,
            peer,
        }
    }

    /// Registers a per-flow timer token in the stack's wheel; the first
    /// registration for a given tick schedules the single engine event that
    /// will service every token due then (see the TCP stack's twin).
    fn arm_timer(self: &Arc<Self>, at: SimTime, tok: u64) {
        debug_assert_eq!(at.as_nanos() >> TOKEN_KIND_SHIFT, 0, "sim time overflows wheel token");
        let fresh = self.inner.lock().timers.register(at, tok);
        if fresh {
            self.sim.schedule_target_at(
                at,
                self.clone(),
                (KIND_WHEEL << TOKEN_KIND_SHIFT) | (at.as_nanos() & WHEEL_TICK_MASK),
            );
        }
    }

    /// Runs `f` on the flow under the stack lock, then performs the
    /// produced actions without holding it.
    fn process<F>(self: &Arc<Self>, h: Handle<Flow>, f: F)
    where
        F: FnOnce(&mut Flow, &UdtConfig, &Recorder, SimTime, &mut Vec<Action>),
    {
        let _scope = memscope::enter(memscope::SCOPE_UDT);
        let now = self.sim.now();
        let mut actions = Vec::new();
        let (local, peer, id, events) = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(flow) = inner.flows.get_mut(h) else {
                return;
            };
            let cfg = &inner.configs[flow.cfg_id as usize];
            f(flow, cfg, &self.rec, now, &mut actions);
            // `nak_recovery` span maintenance: every state transition runs
            // through this wrapper, so the loss list's empty/non-empty
            // edges are all observable here — open on the first loss of an
            // episode, close when recovery drains it (or the flow dies).
            let in_loss = !flow.loss_list.is_empty() && flow.state != State::Closed;
            if flow.nak_span == 0 && in_loss && self.rec.is_enabled() {
                flow.nak_span = self
                    .rec
                    .tracer()
                    .open_root(now.as_nanos(), SpanKind::NakRecovery, flow.conn_id)
                    .raw();
            } else if flow.nak_span != 0 && !in_loss {
                self.rec.record(
                    now.as_nanos(),
                    EventKind::SpanClose {
                        span: flow.nak_span,
                        key: u64::from(flow.state == State::Closed),
                    },
                );
                flow.nak_span = 0;
            }
            let needs_events = actions.iter().any(|a| {
                matches!(
                    a,
                    Action::Deliver(_) | Action::Connected | Action::Writable | Action::Closed(_)
                )
            });
            (
                flow.local,
                flow.peer,
                flow.conn_id,
                if needs_events { flow.events.clone() } else { None },
            )
        };
        if actions.is_empty() {
            return;
        }
        let conn = events
            .as_ref()
            .map(|_| Connection::Udt(self.make_conn(h, id, local, peer)));
        let mut net = None;
        for action in actions {
            match action {
                Action::Send(pkt) => {
                    if net.is_none() {
                        net = self.net.upgrade();
                    }
                    if let Some(net) = &net {
                        let len = pkt.payload_len();
                        let wire = Packet::new(
                            local,
                            peer,
                            WireProtocol::Udt,
                            len,
                            PacketBody::Udt(pkt),
                        );
                        net.send_packet(wire);
                    }
                }
                Action::Deliver(data) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_data(conn, data);
                    }
                }
                Action::Connected => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_connected(conn);
                    }
                }
                Action::Writable => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_writable(conn);
                    }
                }
                Action::Closed(reason) => {
                    if let (Some(ev), Some(conn)) = (&events, &conn) {
                        ev.on_closed(conn, reason);
                    }
                }
                Action::ArmPacer(delay, gen) => {
                    let at = self.sim.now() + delay;
                    self.arm_timer(at, token(KIND_PACER, h, gen as u32));
                }
                Action::ArmSynTick(delay) => {
                    let at = self.sim.now() + delay;
                    self.arm_timer(at, token(KIND_SYN_TICK, h, 0));
                }
                Action::ArmExpTick(delay) => {
                    let at = self.sim.now() + delay;
                    self.arm_timer(at, token(KIND_EXP_TICK, h, 0));
                }
                Action::ArmProc(at) => {
                    self.arm_timer(at.max(self.sim.now()), token(KIND_PROC, h, 0));
                }
                Action::ArmHsRetry(delay, attempt) => {
                    let at = self.sim.now() + delay;
                    self.arm_timer(at, token(KIND_HS_RETRY, h, attempt));
                }
            }
        }
    }

    /// Rate control + receiver-side ACK emission, every `SYN`. The tick
    /// chain re-arms itself until the flow closes.
    fn on_syn_tick(self: &Arc<Self>, h: Handle<Flow>) {
        self.process(h, |flow, cfg, rec, now, out| {
            if flow.state == State::Closed {
                return;
            }
            if flow.state != State::Established {
                out.push(Action::ArmSynTick(cfg.syn));
                return;
            }
            // --- receiver duties: emit cumulative ACK with rate estimates.
            let interval = cfg.syn.as_secs_f64();
            let cur_rate = flow.pkts_since_ack as f64 / interval;
            flow.rate_ewma_pps = if flow.rate_ewma_pps == 0.0 {
                cur_rate
            } else {
                0.875 * flow.rate_ewma_pps + 0.125 * cur_rate
            };
            flow.pkts_since_ack = 0;
            out.push(Action::Send(UdtPacket::Ack {
                ack_seq: flow.rcv_nxt,
                rcv_rate_pps: flow.rate_ewma_pps,
                capacity_pps: flow.capacity_median_pps(),
            }));
            // Re-request persistently missing packets.
            if !flow.missing.is_empty() {
                let ranges = collect_ranges(&flow.missing, 64);
                let losses = ranges.iter().map(|(f, t)| t - f + 1).sum();
                rec.record(
                    now.as_nanos(),
                    EventKind::UdtNak {
                        conn: flow.conn_id,
                        sent: true,
                        losses,
                    },
                );
                out.push(Action::Send(UdtPacket::Nak { ranges }));
            }

            // --- sender duties: DAIMD rate increase (UDT4 formula).
            if !flow.nak_in_syn && flow.sent_in_syn > 0 {
                let mss = cfg.mss as f64;
                let c_pps = flow.current_rate_pps();
                let l_pps = flow.capacity_est_pps;
                let b = l_pps - c_pps;
                let inc = if b <= 0.0 {
                    1.0 / mss
                } else {
                    let bits = b * mss * 8.0;
                    (10f64.powf(bits.log10().ceil()) * 1.5e-6 / mss).max(1.0 / mss)
                };
                let syn_us = cfg.syn.as_secs_f64() * 1e6;
                flow.snd_period_us =
                    (flow.snd_period_us * syn_us) / (flow.snd_period_us * inc + syn_us);
                flow.snd_period_us = flow.snd_period_us.max(1.0);
                rec.record(
                    now.as_nanos(),
                    EventKind::UdtRate {
                        conn: flow.conn_id,
                        period_us: flow.snd_period_us,
                        rate_pps: flow.current_rate_pps(),
                        cause: "syn_increase",
                    },
                );
            }
            flow.nak_in_syn = false;
            flow.sent_in_syn = 0;
            // Tail-loss probe: the receiver cannot NAK a loss at the very
            // end of the stream (no later packet exposes the gap), and its
            // periodic ACKs keep resetting the expiration timer. If the
            // cumulative ACK has not advanced for a couple of RTTs while
            // data is in flight, retransmit the first unacknowledged packet.
            if flow.flight_pkts() > 0 {
                let rtt = flow.rtt.unwrap_or(0.1);
                let stale = Duration::from_secs_f64((2.5 * rtt).max(0.05));
                if now.duration_since(flow.last_progress_at) > stale {
                    flow.loss_list.insert(flow.snd_una);
                    flow.last_progress_at = now;
                }
            } else if flow.fin_sent && !flow.fin_acked {
                let rtt = flow.rtt.unwrap_or(0.1);
                let stale = Duration::from_secs_f64((2.5 * rtt).max(0.05));
                if now.duration_since(flow.last_progress_at) > stale {
                    out.push(Action::Send(UdtPacket::Fin {
                        final_seq: flow.snd_nxt,
                    }));
                    flow.last_progress_at = now;
                }
            }
            restart_pacer(flow, cfg, out);
            out.push(Action::ArmSynTick(cfg.syn));
        });
    }

    /// Expiration: no feedback while data is in flight. Re-arms itself
    /// until the flow closes.
    fn on_exp_tick(self: &Arc<Self>, h: Handle<Flow>) {
        self.process(h, |flow, cfg, _rec, now, out| {
            if flow.state == State::Closed {
                return;
            }
            if flow.state != State::Established {
                out.push(Action::ArmExpTick(cfg.exp_timeout));
                return;
            }
            let idle = now.duration_since(flow.last_feedback_at);
            // Scale the expiration threshold with the measured RTT so a
            // long path does not trigger spurious go-back-N floods.
            let rtt = flow.rtt.unwrap_or(0.2);
            let threshold = cfg.exp_timeout.max(Duration::from_secs_f64(3.0 * rtt));
            if idle < threshold {
                flow.expirations_in_row = 0;
                out.push(Action::ArmExpTick(cfg.exp_timeout));
                return;
            }
            let has_unacked = flow.flight_pkts() > 0 || (flow.fin_sent && !flow.fin_acked);
            if !has_unacked {
                flow.expirations_in_row = 0;
                out.push(Action::ArmExpTick(cfg.exp_timeout));
                return;
            }
            flow.stats.expirations += 1;
            flow.expirations_in_row += 1;
            if flow.expirations_in_row > cfg.max_expirations {
                flow.state = State::Closed;
                if !flow.closed_notified {
                    flow.closed_notified = true;
                    out.push(Action::Closed(CloseReason::Timeout));
                }
                return;
            }
            // Schedule all in-flight packets for retransmission.
            for seq in flow.snd_una..flow.snd_nxt {
                if flow.packets.contains_key(&seq) {
                    flow.loss_list.insert(seq);
                }
            }
            if flow.fin_sent && !flow.fin_acked {
                let final_seq = flow.snd_nxt;
                out.push(Action::Send(UdtPacket::Fin { final_seq }));
            }
            restart_pacer(flow, cfg, out);
            out.push(Action::ArmExpTick(cfg.exp_timeout));
        });
    }

    /// The pacing clock: transmit one packet, reschedule.
    fn on_pacer(self: &Arc<Self>, h: Handle<Flow>, gen: u32) {
        self.process(h, |flow, cfg, _rec, now, out| {
            if gen != flow.pacer_gen as u32 || flow.state != State::Established {
                return;
            }
            let sent_seq = send_one(flow, cfg, now, out);
            match sent_seq {
                Some(seq) => {
                    // Packet pairs: the packet after every 16th is sent
                    // back to back as a bandwidth probe.
                    let delay = if seq % 16 == 15 {
                        Duration::ZERO
                    } else {
                        Duration::from_secs_f64(flow.snd_period_us / 1e6)
                    };
                    flow.pacer_gen += 1;
                    out.push(Action::ArmPacer(delay, flow.pacer_gen));
                }
                None => {
                    flow.pacer_active = false;
                }
            }
        });
    }

    /// A data packet cleared the receive-processing queue.
    fn on_data_processed(self: &Arc<Self>, h: Handle<Flow>) {
        self.process(h, |flow, _cfg, rec, now, out| {
            // Pop unconditionally: the completion event consumed its queue
            // entry even if the flow died in the meantime.
            let Some((seq, probe)) = flow.proc_fifo.pop_front() else {
                return;
            };
            release_drained(&mut flow.proc_fifo);
            if flow.state == State::Closed {
                return;
            }
            receive_data_packet(flow, rec, seq, probe, now, out);
        });
    }

    /// Handshake (re)transmission. `attempt` rides the timer token.
    fn on_hs_retry(self: &Arc<Self>, h: Handle<Flow>, attempt: u32) {
        self.process(h, move |flow, cfg, _rec, _now, out| {
            if flow.state != State::Connecting {
                return;
            }
            if attempt > 12 {
                if !flow.closed_notified {
                    flow.state = State::Closed;
                    flow.closed_notified = true;
                    out.push(Action::Closed(CloseReason::Timeout));
                }
                return;
            }
            out.push(Action::Send(UdtPacket::Handshake {
                flow_window: cfg.rcv_buf as u64,
            }));
            out.push(Action::ArmHsRetry(Duration::from_millis(250), attempt + 1));
        });
    }

    fn handle_packet(self: &Arc<Self>, h: Handle<Flow>, pkt: UdtPacket) {
        self.process(h, move |flow, cfg, rec, now, out| match pkt {
            UdtPacket::Handshake { flow_window } => {
                flow.peer_flow_window = flow_window;
                out.push(Action::Send(UdtPacket::HandshakeAck {
                    flow_window: cfg.rcv_buf as u64,
                }));
                if flow.state == State::Connecting {
                    flow.state = State::Established;
                    if !flow.connected_notified {
                        flow.connected_notified = true;
                        out.push(Action::Connected);
                    }
                }
            }
            UdtPacket::HandshakeAck { flow_window } => {
                if flow.state == State::Connecting {
                    flow.peer_flow_window = flow_window;
                    flow.state = State::Established;
                    flow.rtt =
                        Some(now.duration_since(flow.handshake_sent_at).as_secs_f64());
                    if !flow.connected_notified {
                        flow.connected_notified = true;
                        out.push(Action::Connected);
                    }
                    restart_pacer(flow, cfg, out);
                }
            }
            UdtPacket::Data { seq, probe, payload } => {
                if flow.state != State::Established {
                    return;
                }
                flow.pkts_since_ack += 1;
                if cfg.rx_proc_delay.is_zero() {
                    store_incoming(flow, cfg, seq, payload);
                    receive_data_packet(flow, rec, seq, probe, now, out);
                } else {
                    let backlog = flow
                        .proc_busy_until
                        .duration_since(now)
                        .as_secs_f64()
                        / cfg.rx_proc_delay.as_secs_f64();
                    if backlog as usize >= cfg.rx_proc_backlog {
                        flow.stats.rx_proc_drops += 1;
                        return; // overload drop: will be NAKed
                    }
                    store_incoming(flow, cfg, seq, payload);
                    flow.proc_busy_until = flow.proc_busy_until.max(now) + cfg.rx_proc_delay;
                    flow.proc_fifo.push_back((seq, probe));
                    out.push(Action::ArmProc(flow.proc_busy_until));
                }
            }
            UdtPacket::Ack {
                ack_seq,
                rcv_rate_pps: _,
                capacity_pps,
            } => {
                if flow.state != State::Established {
                    return;
                }
                flow.last_feedback_at = now;
                flow.expirations_in_row = 0;
                if capacity_pps > 0.0 {
                    flow.capacity_est_pps = capacity_pps;
                }
                if ack_seq > flow.snd_una {
                    let still_unacked = flow.packets.split_off(&ack_seq);
                    let acked_bytes: usize = flow.packets.values().map(Bytes::len).sum();
                    flow.packets = still_unacked;
                    flow.unacked_bytes = flow.unacked_bytes.saturating_sub(acked_bytes);
                    flow.stats.bytes_acked += acked_bytes as u64;
                    flow.snd_una = ack_seq;
                    flow.last_progress_at = now;
                    if cfg.ack_progress_events && acked_bytes > 0 {
                        flow.app_blocked = false;
                        out.push(Action::Writable);
                    }
                    let lost_below: Vec<u64> =
                        flow.loss_list.range(..ack_seq).copied().collect();
                    for s in lost_below {
                        flow.loss_list.remove(&s);
                    }
                    maybe_writable(flow, cfg, out);
                    restart_pacer(flow, cfg, out);
                }
                if flow.fin_sent && !flow.fin_acked && flow.snd_una >= flow.snd_nxt {
                    // All data acknowledged; FIN outcome decided by FinAck.
                }
            }
            UdtPacket::Nak { ranges } => {
                if flow.state != State::Established {
                    return;
                }
                flow.last_feedback_at = now;
                flow.stats.naks_received += 1;
                flow.nak_in_syn = true;
                let mut first_lost = u64::MAX;
                let mut reported = 0u64;
                for (from, to) in ranges {
                    let to = to.min(flow.snd_nxt.saturating_sub(1));
                    for seq in from..=to {
                        if seq >= flow.snd_una && flow.packets.contains_key(&seq) {
                            flow.loss_list.insert(seq);
                            first_lost = first_lost.min(seq);
                            reported += 1;
                        }
                    }
                }
                rec.record(
                    now.as_nanos(),
                    EventKind::UdtNak {
                        conn: flow.conn_id,
                        sent: false,
                        losses: reported,
                    },
                );
                // One multiplicative decrease per congestion epoch. An
                // epoch ends when loss is seen beyond the last decrease
                // point, or — when retransmissions themselves are being
                // dropped and sequence numbers stop advancing — after
                // roughly one RTT of wall time.
                if first_lost != u64::MAX {
                    let rtt = flow.rtt.unwrap_or(0.1);
                    let epoch =
                        Duration::from_secs_f64(rtt.max(4.0 * cfg.syn.as_secs_f64()));
                    let new_epoch = first_lost > flow.last_dec_seq
                        || now.duration_since(flow.last_dec_at) > epoch;
                    if new_epoch {
                        flow.snd_period_us *= 1.125;
                        flow.last_dec_seq = flow.snd_nxt;
                        flow.last_dec_at = now;
                        flow.stats.rate_decreases += 1;
                        rec.record(
                            now.as_nanos(),
                            EventKind::UdtRate {
                                conn: flow.conn_id,
                                period_us: flow.snd_period_us,
                                rate_pps: flow.current_rate_pps(),
                                cause: "nak_decrease",
                            },
                        );
                    }
                }
                restart_pacer(flow, cfg, out);
            }
            UdtPacket::Fin { final_seq } => {
                flow.peer_fin_seq = Some(final_seq);
                try_finish_receive(flow, out);
            }
            UdtPacket::FinAck => {
                flow.fin_acked = true;
                if !flow.closed_notified {
                    flow.closed_notified = true;
                    flow.state = State::Closed;
                    out.push(Action::Closed(CloseReason::Normal));
                }
            }
        });
    }

    /// Demuxes an incoming packet: established flows by endpoint pair,
    /// otherwise a listener performs a passive open on a Handshake.
    fn dispatch(self: &Arc<Self>, src: Endpoint, dst: Endpoint, pkt: UdtPacket) {
        let _scope = memscope::enter(memscope::SCOPE_UDT);
        let known = self.inner.lock().conn_index.get(&pair_key(dst, src)).copied();
        if let Some(h) = known {
            self.handle_packet(h, pkt);
            return;
        }
        let UdtPacket::Handshake { .. } = pkt else {
            return; // stray packet for an unknown connection
        };
        let accepted = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(entry) = inner.listeners.get(&ep_key(dst)) else {
                return;
            };
            let handler = entry.handler.clone();
            let cfg_id = entry.cfg_id;
            let now = self.sim.now();
            let id = ConnectionId::fresh(&self.sim);
            let cfg = &inner.configs[cfg_id as usize];
            let flow = Flow::new(
                cfg_id,
                cfg,
                State::Connecting,
                dst,
                src,
                false,
                now,
                id.raw(),
                false,
            );
            let h = inner.flows.insert(flow);
            inner.conn_index.insert(pair_key(dst, src), h);
            inner
                .listeners
                .get_mut(&ep_key(dst))
                .expect("listener entry just looked up")
                .conns
                .insert(ep_key(src), h);
            (handler, h, id)
        };
        let (handler, h, id) = accepted;
        let conn = Connection::Udt(self.make_conn(h, id.raw(), dst, src));
        let events = handler.on_accept(&conn);
        {
            let mut inner = self.inner.lock();
            if let Some(flow) = inner.flows.get_mut(h) {
                flow.events = Some(events);
            }
        }
        // Start the periodic tick chains, then process the handshake (which
        // flips the flow to Established and answers with a HandshakeAck) —
        // same order as the previous per-connection timer setup.
        self.process(h, |_flow, cfg, _rec, _now, out| {
            out.push(Action::ArmSynTick(cfg.syn));
            out.push(Action::ArmExpTick(cfg.exp_timeout));
        });
        self.handle_packet(h, pkt);
    }
}

impl PacketSink for UdtStack {
    fn on_packet(&self, _net: &Network, pkt: Packet) {
        let Some(stack) = self.self_weak.upgrade() else {
            return;
        };
        let PacketBody::Udt(p) = pkt.body else {
            return;
        };
        stack.dispatch(pkt.src, pkt.dst, p);
    }
}

impl EventTarget for UdtStack {
    fn fire(self: Arc<Self>, _sim: &Sim, token: u64) {
        let _scope = memscope::enter(memscope::SCOPE_UDT);
        if token >> TOKEN_KIND_SHIFT == KIND_WHEEL {
            let tick = SimTime::from_nanos(token & WHEEL_TICK_MASK);
            let Some(batch) = ({
                let mut inner = self.inner.lock();
                inner.timers.take(tick)
            }) else {
                return;
            };
            for tok in &batch {
                self.service_timer(*tok);
            }
            self.inner.lock().timers.recycle(batch);
        } else {
            self.service_timer(token);
        }
    }
}

impl UdtStack {
    /// Services one per-flow timer token drained from the wheel (the body
    /// of the pre-wheel per-timer `fire`). Stale tokens no-op: dead flow
    /// slots resolve to `None`, and each handler re-checks its own
    /// armed-state/generation discipline.
    fn service_timer(self: &Arc<Self>, token: u64) {
        let kind = token >> TOKEN_KIND_SHIFT;
        let idx = ((token >> TOKEN_IDX_SHIFT) & TOKEN_IDX_MASK) as u32;
        let aux = token as u32;
        let h = self.inner.lock().flows.handle_at(idx);
        let Some(h) = h else { return };
        match kind {
            KIND_PACER => self.on_pacer(h, aux),
            KIND_SYN_TICK => self.on_syn_tick(h),
            KIND_EXP_TICK => self.on_exp_tick(h),
            KIND_PROC => self.on_data_processed(h),
            KIND_HS_RETRY => self.on_hs_retry(h, aux),
            _ => {}
        }
    }
}

/// Stores an arriving payload for ordered delivery (bounded by `rcv_buf`).
fn store_incoming(flow: &mut Flow, cfg: &UdtConfig, seq: u64, payload: Bytes) {
    if seq < flow.rcv_nxt || flow.ooo.contains_key(&seq) {
        return; // duplicate
    }
    if flow.ooo_bytes + payload.len() > cfg.rcv_buf {
        flow.stats.rx_proc_drops += 1;
        return; // receive buffer overflow: packet is effectively lost
    }
    flow.ooo_bytes += payload.len();
    flow.ooo.insert(seq, payload);
}

/// Loss detection + in-order delivery once a packet has been "processed".
///
/// Packet-pair capacity samples are taken here, after the receive
/// processing stage, so the estimate reflects whichever of the wire or the
/// endpoint is the real bottleneck.
fn receive_data_packet(
    flow: &mut Flow,
    rec: &Recorder,
    seq: u64,
    probe: bool,
    now: SimTime,
    out: &mut Vec<Action>,
) {
    if let Some((prev_seq, prev_at)) = flow.prev_arrival {
        if probe && prev_seq + 1 == seq {
            let d = now.duration_since(prev_at).as_secs_f64();
            if d > 0.0 {
                let pps = 1.0 / d;
                if flow.pair_samples.len() == 16 {
                    flow.pair_samples.pop_front();
                }
                flow.pair_samples.push_back(pps);
            }
        }
    }
    flow.prev_arrival = Some((seq, now));
    if seq >= flow.expected_max {
        // NAK any fresh gap immediately (UDT reports loss eagerly).
        if seq > flow.expected_max {
            let from = flow.expected_max;
            let to = seq - 1;
            for s in from..=to {
                flow.missing.insert(s);
            }
            rec.record(
                now.as_nanos(),
                EventKind::UdtNak {
                    conn: flow.conn_id,
                    sent: true,
                    losses: to - from + 1,
                },
            );
            out.push(Action::Send(UdtPacket::Nak {
                ranges: vec![(from, to)],
            }));
        }
        flow.expected_max = seq + 1;
    }
    flow.missing.remove(&seq);
    // Deliver contiguous data.
    while let Some(entry) = flow.ooo.first_entry() {
        if *entry.key() != flow.rcv_nxt {
            break;
        }
        let data = entry.remove();
        flow.ooo_bytes -= data.len();
        flow.rcv_nxt += 1;
        flow.stats.bytes_delivered += data.len() as u64;
        out.push(Action::Deliver(data));
    }
    try_finish_receive(flow, out);
}

fn try_finish_receive(flow: &mut Flow, out: &mut Vec<Action>) {
    if let Some(final_seq) = flow.peer_fin_seq {
        if flow.rcv_nxt >= final_seq {
            out.push(Action::Send(UdtPacket::FinAck));
            if !flow.closed_notified {
                flow.closed_notified = true;
                flow.state = State::Closed;
                out.push(Action::Closed(CloseReason::Normal));
            }
        }
    }
}

/// Collects up to `cap` inclusive ranges from a sorted set.
fn collect_ranges(set: &BTreeSet<u64>, cap: usize) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &s in set {
        match ranges.last_mut() {
            Some((_, to)) if *to + 1 == s => *to = s,
            _ => {
                if ranges.len() == cap {
                    break;
                }
                ranges.push((s, s));
            }
        }
    }
    ranges
}

/// Transmits one packet if allowed: retransmissions first, then new data,
/// then a pending FIN. Returns the sequence sent (for pair scheduling).
fn send_one(flow: &mut Flow, cfg: &UdtConfig, _now: SimTime, out: &mut Vec<Action>) -> Option<u64> {
    // 1. Retransmission.
    while let Some(&seq) = flow.loss_list.iter().next() {
        flow.loss_list.remove(&seq);
        if seq < flow.snd_una {
            continue;
        }
        if let Some(payload) = flow.packets.get(&seq) {
            flow.stats.retransmits += 1;
            flow.stats.packets_sent += 1;
            flow.sent_in_syn += 1;
            out.push(Action::Send(UdtPacket::Data {
                seq,
                probe: false,
                payload: payload.clone(),
            }));
            return Some(seq);
        }
    }
    // 2. New data, if the flow window allows.
    if !flow.send_q.is_empty() && flow.flight_pkts() < flow_window_pkts(flow, cfg) {
        let head = flow.send_q.front_mut().expect("non-empty send queue");
        let take = head.len().min(cfg.mss);
        let payload = head.split_to(take);
        if head.is_empty() {
            flow.send_q.pop_front();
            release_drained(&mut flow.send_q);
        }
        flow.send_q_bytes -= take;
        let seq = flow.snd_nxt;
        flow.snd_nxt += 1;
        flow.packets.insert(seq, payload.clone());
        flow.stats.packets_sent += 1;
        flow.sent_in_syn += 1;
        out.push(Action::Send(UdtPacket::Data {
            seq,
            probe: seq.is_multiple_of(16) && seq > 0,
            payload,
        }));
        return Some(seq);
    }
    // 3. FIN once everything is out.
    if flow.fin_queued && !flow.fin_sent && flow.send_q.is_empty() {
        flow.fin_sent = true;
        out.push(Action::Send(UdtPacket::Fin {
            final_seq: flow.snd_nxt,
        }));
    }
    None
}

fn restart_pacer(flow: &mut Flow, cfg: &UdtConfig, out: &mut Vec<Action>) {
    if flow.pacer_active || flow.state != State::Established {
        return;
    }
    let work = !flow.loss_list.is_empty()
        || (!flow.send_q.is_empty() && flow.flight_pkts() < flow_window_pkts(flow, cfg))
        || (flow.fin_queued && !flow.fin_sent);
    if work {
        flow.pacer_active = true;
        flow.pacer_gen += 1;
        out.push(Action::ArmPacer(Duration::ZERO, flow.pacer_gen));
    }
}

fn maybe_writable(flow: &mut Flow, cfg: &UdtConfig, out: &mut Vec<Action>) {
    if flow.app_blocked && cfg.snd_buf.saturating_sub(flow.unacked_bytes) >= cfg.mss {
        flow.app_blocked = false;
        out.push(Action::Writable);
    }
}

/// A simulated UDT connection handle.
///
/// Internally an 8-byte slab handle plus cached immutable endpoints; clones
/// refer to the same flow. The last application handle of a connect-created
/// flow kills the flow in place when dropped.
pub struct UdtConn {
    stack: Arc<UdtStack>,
    h: Handle<Flow>,
    id: ConnectionId,
    local: Endpoint,
    peer: Endpoint,
}

impl Clone for UdtConn {
    fn clone(&self) -> Self {
        self.stack.retain_handle(self.h);
        UdtConn {
            stack: self.stack.clone(),
            h: self.h,
            id: self.id,
            local: self.local,
            peer: self.peer,
        }
    }
}

impl Drop for UdtConn {
    fn drop(&mut self) {
        self.stack.release_handle(self.h);
    }
}

impl fmt::Debug for UdtConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (state, initiator, rate) = {
            let inner = self.stack.inner.lock();
            match inner.flows.get(self.h) {
                Some(fl) => (Some(fl.state), fl.is_initiator, fl.current_rate_pps()),
                None => (None, false, 0.0),
            }
        };
        f.debug_struct("UdtConn")
            .field("id", &self.id)
            .field("local", &self.local)
            .field("peer", &self.peer)
            .field("state", &state)
            .field("initiator", &initiator)
            .field("rate_pps", &rate)
            .finish()
    }
}

impl UdtConn {
    /// Opens a UDT connection from an ephemeral port on `node` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if no local port could be bound.
    pub fn connect(
        net: &Network,
        node: NodeId,
        dst: Endpoint,
        cfg: UdtConfig,
        events: Arc<dyn StreamEvents>,
    ) -> Result<UdtConn, BindError> {
        let stack = net.udt_stack();
        let Some(port) = net.alloc_ephemeral_port(node, WireProtocol::Udt) else {
            return Err(BindError {
                endpoint: Endpoint::new(node, 0),
                protocol: WireProtocol::Udt,
            });
        };
        let local = Endpoint::new(node, port);
        let now = net.sim().now();
        let id = ConnectionId::fresh(net.sim());
        net.bind(node, WireProtocol::Udt, port, stack.clone())?;
        let h = {
            let mut guard = stack.inner.lock();
            let inner = &mut *guard;
            let cfg_id = UdtStack::intern(&mut inner.configs, cfg);
            let cfg = &inner.configs[cfg_id as usize];
            let mut flow =
                Flow::new(cfg_id, cfg, State::Connecting, local, dst, true, now, id.raw(), true);
            flow.events = Some(events);
            let h = inner.flows.insert(flow);
            inner.conn_index.insert(pair_key(local, dst), h);
            h
        };
        // Start the periodic tick chains, send the first handshake, and arm
        // its retry — in the same order the previous representation
        // scheduled them.
        stack.process(h, |_flow, cfg, _rec, _now, out| {
            out.push(Action::ArmSynTick(cfg.syn));
            out.push(Action::ArmExpTick(cfg.exp_timeout));
            out.push(Action::Send(UdtPacket::Handshake {
                flow_window: cfg.rcv_buf as u64,
            }));
            out.push(Action::ArmHsRetry(Duration::from_millis(250), 1));
        });
        Ok(UdtConn {
            stack,
            h,
            id,
            local,
            peer: dst,
        })
    }

    /// The connection id.
    #[must_use]
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// Local endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Remote endpoint.
    #[must_use]
    pub fn peer(&self) -> Endpoint {
        self.peer
    }

    /// Whether the handshake completed and the connection is open.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .is_some_and(|f| f.state == State::Established)
    }

    /// Appends bytes to the send buffer; returns how many were accepted.
    pub fn send(&self, data: Bytes) -> usize {
        let mut accepted = 0;
        self.stack.process(self.h, |flow, cfg, _rec, _now, out| {
            if flow.state == State::Closed || flow.fin_queued {
                return;
            }
            let space = cfg.snd_buf.saturating_sub(flow.unacked_bytes);
            let take = space.min(data.len());
            if take < data.len() {
                flow.app_blocked = true;
            }
            if take > 0 {
                flow.send_q.push_back(data.slice(0..take));
                flow.send_q_bytes += take;
                flow.unacked_bytes += take;
                flow.stats.bytes_sent += take as u64;
                restart_pacer(flow, cfg, out);
            }
            accepted = take;
        });
        accepted
    }

    /// Free space in the send buffer.
    #[must_use]
    pub fn free_send_buffer(&self) -> usize {
        let mut guard = self.stack.inner.lock();
        let inner = &mut *guard;
        match inner.flows.get(self.h) {
            Some(flow) => {
                let cfg = &inner.configs[flow.cfg_id as usize];
                cfg.snd_buf.saturating_sub(flow.unacked_bytes)
            }
            None => 0,
        }
    }

    /// Bytes accepted but not yet acknowledged (queued + in flight).
    #[must_use]
    pub fn unacked_bytes(&self) -> usize {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or(0, |f| f.unacked_bytes)
    }

    /// Cumulative payload bytes acknowledged by the receiver.
    #[must_use]
    pub fn acked_bytes(&self) -> u64 {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or(0, |f| f.stats.bytes_acked)
    }

    /// RTT measured during the handshake (initiator side only).
    #[must_use]
    pub fn rtt_estimate(&self) -> Option<Duration> {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .and_then(|f| f.rtt)
            .map(Duration::from_secs_f64)
    }

    /// Orderly close: a FIN follows the last buffered byte.
    pub fn close(&self) {
        self.stack.process(self.h, |flow, cfg, _rec, _now, out| {
            if flow.fin_queued || flow.state == State::Closed {
                return;
            }
            flow.fin_queued = true;
            restart_pacer(flow, cfg, out);
        });
    }

    /// Per-connection counters.
    #[must_use]
    pub fn stats(&self) -> UdtConnStats {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or_else(UdtConnStats::default, |f| f.stats)
    }

    /// Current pacing rate in packets per second (diagnostics).
    #[must_use]
    pub fn rate_pps(&self) -> f64 {
        self.stack
            .inner
            .lock()
            .flows
            .get(self.h)
            .map_or(0.0, Flow::current_rate_pps)
    }
}

/// A UDT listening socket that accepts incoming connections.
#[derive(Clone)]
pub struct UdtListener {
    stack: Arc<UdtStack>,
    local: Endpoint,
}

impl fmt::Debug for UdtListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdtListener")
            .field("local", &self.local)
            .finish()
    }
}

impl UdtListener {
    /// Binds a UDT listener on `node`/`port`.
    ///
    /// # Errors
    ///
    /// Returns [`BindError`] if the port is taken.
    pub fn bind(
        net: &Network,
        node: NodeId,
        port: u16,
        cfg: UdtConfig,
        handler: Arc<dyn StreamAccept>,
    ) -> Result<UdtListener, BindError> {
        let stack = net.udt_stack();
        net.bind(node, WireProtocol::Udt, port, stack.clone())?;
        let local = Endpoint::new(node, port);
        {
            let mut guard = stack.inner.lock();
            let inner = &mut *guard;
            let cfg_id = UdtStack::intern(&mut inner.configs, cfg);
            inner.listeners.insert(
                ep_key(local),
                ListenerEntry {
                    cfg_id,
                    handler,
                    conns: FxHashMap::default(),
                },
            );
        }
        Ok(UdtListener { stack, local })
    }

    /// The listening endpoint.
    #[must_use]
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Number of accepted connections.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.stack
            .inner
            .lock()
            .listeners
            .get(&ep_key(self.local))
            .map_or(0, |e| e.conns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::link::{LinkConfig, PolicerConfig};
    use crate::testutil::{PatternSender, Recorder};

    struct AcceptRecorder {
        rec: Arc<Recorder>,
    }
    impl StreamAccept for AcceptRecorder {
        fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
            self.rec.clone()
        }
    }

    fn setup(link: LinkConfig) -> (Sim, Network, NodeId, NodeId) {
        let sim = Sim::new(21);
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(a, b, link);
        (sim, net, a, b)
    }

    fn listen(net: &Network, b: NodeId, rec: &Arc<Recorder>, cfg: UdtConfig) -> UdtListener {
        UdtListener::bind(net, b, 90, cfg, Arc::new(AcceptRecorder { rec: rec.clone() }))
            .expect("bind")
    }

    #[test]
    fn handshake_completes() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let client = Arc::new(Recorder::default());
        let conn = UdtConn::connect(
            &net,
            a,
            Endpoint::new(b, 90),
            UdtConfig::default(),
            client.clone(),
        )
        .unwrap();
        sim.run_for(Duration::from_secs(1));
        assert!(conn.is_established());
        assert_eq!(client.connected(), 1);
        assert_eq!(server.connected(), 1);
        let rtt = conn.rtt_estimate().expect("handshake RTT").as_secs_f64();
        assert!((0.009..0.02).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn small_transfer_in_order() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let pump = PatternSender::new(&sim, 100_000);
        let _conn = UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), pump)
            .unwrap();
        sim.run_for(Duration::from_secs(5));
        assert_eq!(server.data_len(), 100_000);
        assert!(server.in_order());
    }

    #[test]
    fn high_rtt_throughput_beats_windowed_tcp_shape() {
        // 125 MB/s link, 320 ms RTT, clean except the processing cap:
        // UDT should ramp to ~10 MB/s (1/130 µs per packet) regardless of
        // the huge BDP.
        let (sim, net, a, b) = setup(LinkConfig::new(125e6, Duration::from_millis(160)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = listen(&net, b, &server, UdtConfig::tuned_buffers());
        let total = 40_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = UdtConn::connect(
            &net,
            a,
            Endpoint::new(b, 90),
            UdtConfig::tuned_buffers(),
            pump,
        )
        .unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total, "all bytes must arrive");
        assert!(server.in_order());
        let rate = server.goodput();
        assert!(
            rate > 5e6,
            "UDT must sustain multi-MB/s at 320 ms RTT, got {rate:.0} B/s"
        );
        let _ = conn;
    }

    #[test]
    fn policer_pins_rate_near_10mbps() {
        let link = LinkConfig::new(125e6, Duration::from_millis(77))
            .udp_policer(PolicerConfig::ec2_udp());
        let (sim, net, a, b) = setup(link);
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = listen(&net, b, &server, UdtConfig::tuned_buffers());
        let total = 60_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = UdtConn::connect(
            &net,
            a,
            Endpoint::new(b, 90),
            UdtConfig::tuned_buffers(),
            pump,
        )
        .unwrap();
        sim.run_for(Duration::from_secs(120));
        assert_eq!(server.data_len(), total);
        let rate = server.goodput();
        assert!(
            (4e6..11e6).contains(&rate),
            "policed UDT should sit below the 10 MB/s policer, got {rate:.0}"
        );
        assert!(conn.stats().naks_received > 0, "policer drops must cause NAKs");
        assert!(conn.stats().rate_decreases > 0);
    }

    #[test]
    fn small_flow_window_caps_throughput() {
        // The paper's motivation for raising protocol buffers from 12 MB to
        // 100 MB: a small window caps throughput at window/RTT.
        let small = UdtConfig {
            snd_buf: 512 * 1024,
            rcv_buf: 512 * 1024,
            ..UdtConfig::default()
        };
        let (sim, net, a, b) = setup(LinkConfig::new(125e6, Duration::from_millis(160)));
        let server = Arc::new(Recorder::with_sim(&sim));
        let _l = listen(&net, b, &server, small.clone());
        let total = 10_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let _conn = UdtConn::connect(&net, a, Endpoint::new(b, 90), small, pump).unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total);
        let rate = server.goodput();
        // window/RTT = 512 KiB / 0.32 s ~ 1.6 MB/s
        assert!(
            rate < 2.5e6,
            "window-limited UDT must stay near window/RTT, got {rate:.0}"
        );
    }

    #[test]
    fn recovers_from_random_loss_in_order() {
        let (sim, net, a, b) = setup(
            LinkConfig::new(20e6, Duration::from_millis(20)).random_loss(0.01),
        );
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let total = 3_000_000usize;
        let pump = PatternSender::new(&sim, total);
        let conn = UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), pump)
            .unwrap();
        sim.run_for(Duration::from_secs(60));
        assert_eq!(server.data_len(), total, "reliable despite 1% loss");
        assert!(server.in_order());
        assert!(conn.stats().retransmits > 0);
    }

    #[test]
    fn close_handshake_notifies_both_sides() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let server = Arc::new(Recorder::default());
        let _l = listen(&net, b, &server, UdtConfig::default());
        let pump = PatternSender::closing(&sim, 50_000);
        let client_events = pump.clone();
        let _conn =
            UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), client_events)
                .unwrap();
        sim.run_for(Duration::from_secs(10));
        assert_eq!(server.data_len(), 50_000);
        assert_eq!(server.closed(), 1, "receiver must see Normal close");
        assert_eq!(server.close_reasons(), vec![CloseReason::Normal]);
    }

    #[test]
    fn connect_to_black_hole_times_out() {
        let (sim, net, a, b) = setup(LinkConfig::new(10e6, Duration::from_millis(5)));
        let client = Arc::new(Recorder::default());
        let conn =
            UdtConn::connect(&net, a, Endpoint::new(b, 91), UdtConfig::default(), client.clone())
                .unwrap();
        sim.run_for(Duration::from_secs(30));
        assert!(!conn.is_established());
        assert_eq!(client.closed(), 1);
        assert_eq!(client.close_reasons(), vec![CloseReason::Timeout]);
    }

    #[test]
    fn collect_ranges_merges_runs() {
        let set: BTreeSet<u64> = [1, 2, 3, 7, 9, 10].into_iter().collect();
        assert_eq!(collect_ranges(&set, 64), vec![(1, 3), (7, 7), (9, 10)]);
        assert_eq!(collect_ranges(&set, 2), vec![(1, 3), (7, 7)]);
        assert!(collect_ranges(&BTreeSet::new(), 4).is_empty());
    }
}
