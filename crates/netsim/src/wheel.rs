//! A hierarchical timing wheel for delayed simulation events.
//!
//! [`TimingWheel`] stores `(time, seq, value)` entries and yields them in
//! strict `(time, seq)` order, like a priority queue, but with O(1) insertion
//! and cohort-at-a-time extraction: all entries sharing the earliest
//! timestamp are removed in one call, which lets the engine drain a whole
//! ready batch under a single lock acquisition.
//!
//! # Structure
//!
//! The wheel is the tokio/Kompact design: [`LEVELS`] levels of [`SLOTS`]
//! slots each, with a tick of 2^[`TICK_SHIFT`] nanoseconds (1.024 µs). Level
//! 0 resolves single ticks; each higher level covers [`SLOTS`]× the span of
//! the one below, so the wheel spans 2^36 ticks (≈ 19.5 hours) ahead of the
//! current position. Entries beyond that land in a fallback binary heap and
//! migrate into the wheel when it drains. Per-level occupancy bitmasks make
//! "find the next deadline" a handful of bit operations; entries in slots
//! that become current *cascade* down to finer levels.
//!
//! Slot storage is plain `Vec`s whose allocations are recycled through a
//! scratch buffer, so steady-state operation performs no allocation.
//!
//! # Ordering contract
//!
//! Entries inserted with ascending `seq` are returned in ascending
//! `(time, seq)` order by repeated [`TimingWheel::next_at`] /
//! [`TimingWheel::pop_cohort`] calls, exactly matching a binary heap with a
//! `(time, seq)` key. This is the determinism contract the simulation engine
//! relies on; `crates/netsim/tests/engine_determinism.rs` property-tests it
//! against the heap-based [`reference`](crate::reference) implementation.
//!
//! # Examples
//!
//! ```
//! use kmsg_netsim::time::SimTime;
//! use kmsg_netsim::wheel::TimingWheel;
//!
//! let mut wheel = TimingWheel::new();
//! wheel.insert(SimTime::from_millis(5), 0, "later");
//! wheel.insert(SimTime::from_millis(2), 1, "sooner");
//! let t = wheel.next_at().unwrap();
//! assert_eq!(t, SimTime::from_millis(2));
//! let mut cohort = Vec::new();
//! wheel.pop_cohort(t, &mut cohort);
//! assert_eq!(cohort.len(), 1);
//! assert_eq!(cohort[0].value, "sooner");
//! ```

use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// Nanoseconds per tick, as a shift: one tick is 2^10 ns = 1.024 µs.
pub const TICK_SHIFT: u32 = 10;
/// Slots per level, as a shift: 2^6 = 64 slots.
pub const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels.
pub const LEVELS: usize = 6;

const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Total tick bits the wheel resolves; beyond this entries overflow to a heap.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// An entry stored in (and returned from) a [`TimingWheel`].
#[derive(Debug, Clone)]
pub struct WheelEntry<T> {
    /// Absolute due time.
    pub at: SimTime,
    /// Insertion sequence number; ties on `at` resolve in `seq` order.
    pub seq: u64,
    /// The caller's payload.
    pub value: T,
}

/// Min-orders the overflow heap by `(at, seq)`; the payload is ignored.
struct OverflowEntry<T>(WheelEntry<T>);

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    // BinaryHeap is a max-heap; invert so the earliest (at, seq) is on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

struct Level<T> {
    occupied: u64,
    slots: [Vec<WheelEntry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A hierarchical timing wheel; see the [module documentation](self).
///
/// # Invariants
///
/// * `elapsed` (the wheel's internal tick position) never passes a pending
///   entry: it only advances to the tick of the minimum pending entry
///   ([`next_at`](Self::next_at) / [`pop_cohort`](Self::pop_cohort)) or to a
///   caller-certified event-free time ([`advance_to`](Self::advance_to)).
/// * Consequently every occupied slot sits at or ahead of the current slot
///   of its level, and all entries of one exact timestamp are extracted
///   together by `pop_cohort`.
pub struct TimingWheel<T> {
    levels: Vec<Level<T>>,
    overflow: BinaryHeap<OverflowEntry<T>>,
    /// Current position, in ticks.
    elapsed: u64,
    len: usize,
    /// Scratch buffer recycled across cascades and cohort pops.
    scratch: Vec<WheelEntry<T>>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for TimingWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("elapsed_ticks", &self.elapsed)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

fn level_for(masked: u64) -> usize {
    if masked == 0 {
        0
    } else {
        (63 - masked.leading_zeros()) as usize / SLOT_BITS as usize
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel positioned at time zero.
    #[must_use]
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            elapsed: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no pending entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry due at `at`.
    ///
    /// `seq` must be strictly increasing across inserts for the `(time,
    /// seq)` ordering contract to hold. Times at or before the wheel's
    /// current position are treated as due at the earliest representable
    /// future point (the engine clamps to "now" before inserting).
    pub fn insert(&mut self, at: SimTime, seq: u64, value: T) {
        self.len += 1;
        self.place(WheelEntry { at, seq, value });
    }

    /// Places an entry into the correct level/slot (or overflow heap)
    /// without touching `len`. Shared by insert, cascade and migration.
    fn place(&mut self, entry: WheelEntry<T>) {
        let tick = tick_of(entry.at).max(self.elapsed);
        let masked = tick ^ self.elapsed;
        if masked >> WHEEL_BITS != 0 {
            self.overflow.push(OverflowEntry(entry));
            return;
        }
        let level = level_for(masked);
        let shift = SLOT_BITS * level as u32;
        let slot = ((tick >> shift) & SLOT_MASK) as usize;
        let lv = &mut self.levels[level];
        lv.occupied |= 1 << slot;
        lv.slots[slot].push(entry);
    }

    /// The exact due time of the earliest pending entry, or `None` if the
    /// wheel is empty.
    ///
    /// Takes `&mut self` because finding the minimum may advance the wheel
    /// position and cascade coarse slots down to finer levels — which is
    /// always safe, as the wheel only ever advances to the minimum pending
    /// deadline.
    pub fn next_at(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Pick the occupied slot with the minimum start tick across all
            // levels; ties go to the coarser level so stale coarse slots
            // cascade before a level-0 answer is trusted. (An entry due at
            // tick K can legally sit at a coarse level whose slot also
            // starts at K while a later-inserted entry for the same tick
            // already sits at level 0.)
            let mut best: Option<(usize, usize, u64)> = None;
            for (level, lv) in self.levels.iter().enumerate() {
                if lv.occupied == 0 {
                    continue;
                }
                let shift = SLOT_BITS * level as u32;
                let cur = (self.elapsed >> shift) & SLOT_MASK;
                let dist = u64::from(lv.occupied.rotate_right(cur as u32).trailing_zeros());
                debug_assert!(
                    cur + dist < SLOTS as u64,
                    "occupied slot behind current position at level {level}"
                );
                let slot = ((cur + dist) & SLOT_MASK) as usize;
                let width = 1u64 << shift;
                let rotation = width << SLOT_BITS;
                let start = (self.elapsed & !(rotation - 1)) + slot as u64 * width;
                match best {
                    Some((_, _, best_start)) if best_start < start => {}
                    _ => best = Some((level, slot, start)),
                }
            }
            match best {
                None => {
                    // Everything pending lives in the overflow heap: jump to
                    // its minimum (safe: it is the global minimum) and
                    // migrate that window into the wheel.
                    let min_at = self.overflow.peek().expect("len > 0 but wheel empty").0.at;
                    self.elapsed = self.elapsed.max(tick_of(min_at));
                    while let Some(head) = self.overflow.peek() {
                        if (tick_of(head.0.at) ^ self.elapsed) >> WHEEL_BITS != 0 {
                            break;
                        }
                        let entry = self.overflow.pop().expect("peeked entry vanished").0;
                        self.place(entry);
                    }
                }
                Some((0, slot, _)) => {
                    // Level-0 slots span one tick: any coarser slot with a
                    // later start holds strictly later entries, so the slot
                    // minimum is the global minimum.
                    let min = self.levels[0].slots[slot]
                        .iter()
                        .map(|e| e.at)
                        .min()
                        .expect("occupied level-0 slot is empty");
                    return Some(min);
                }
                Some((level, slot, start)) => {
                    // Advance to the slot boundary (it lower-bounds every
                    // pending entry) and cascade the slot to finer levels.
                    self.elapsed = self.elapsed.max(start);
                    self.cascade(level, slot);
                }
            }
        }
    }

    /// Redistributes one coarse slot's entries to finer levels. Strictly
    /// decreases each entry's level, so cascading terminates.
    fn cascade(&mut self, level: usize, slot: usize) {
        let lv = &mut self.levels[level];
        lv.occupied &= !(1 << slot);
        std::mem::swap(&mut lv.slots[slot], &mut self.scratch);
        let mut buf = std::mem::take(&mut self.scratch);
        for entry in buf.drain(..) {
            self.place(entry);
        }
        self.scratch = buf;
    }

    /// Removes every entry due exactly at `at` and appends them to `out` in
    /// ascending `seq` order.
    ///
    /// `at` must be the value just returned by [`next_at`](Self::next_at),
    /// with no intervening inserts — that guarantees all entries for this
    /// timestamp sit in a single level-0 slot.
    pub fn pop_cohort(&mut self, at: SimTime, out: &mut Vec<WheelEntry<T>>) {
        let tick = tick_of(at).max(self.elapsed);
        self.elapsed = tick;
        let slot = (tick & SLOT_MASK) as usize;
        let lv = &mut self.levels[0];
        if lv.occupied & (1 << slot) == 0 {
            return;
        }
        let start = out.len();
        let slot_vec = &mut lv.slots[slot];
        // In-place partition: matching entries swap-remove into `out`;
        // same-tick later-nanosecond entries keep their slot (their level-0
        // placement cannot change, so re-placing them would be pure churn).
        let mut i = 0;
        while i < slot_vec.len() {
            if slot_vec[i].at == at {
                out.push(slot_vec.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if slot_vec.is_empty() {
            lv.occupied &= !(1 << slot);
        }
        self.len -= out.len() - start;
        // Entries may arrive out of seq order when a cascade interleaved
        // older entries with directly-inserted ones; seqs are unique.
        out[start..].sort_unstable_by_key(|e| e.seq);
    }

    /// Advances the wheel position to `to` without extracting anything.
    ///
    /// The caller must guarantee no pending entry is due at or before `to`
    /// (i.e. [`next_at`](Self::next_at) returned `None` or a later time);
    /// the engine uses this when a `run_until` horizon falls short of the
    /// next event.
    pub fn advance_to(&mut self, to: SimTime) {
        self.elapsed = self.elapsed.max(tick_of(to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Drains the wheel completely, returning `(at, seq)` pairs in pop order.
    fn drain<T>(wheel: &mut TimingWheel<T>) -> Vec<(u64, u64)> {
        let mut order = Vec::new();
        let mut cohort = Vec::new();
        while let Some(t) = wheel.next_at() {
            cohort.clear();
            wheel.pop_cohort(t, &mut cohort);
            assert!(!cohort.is_empty(), "next_at returned a time with no cohort");
            for e in &cohort {
                assert_eq!(e.at, t);
                order.push((e.at.as_nanos(), e.seq));
            }
        }
        assert!(wheel.is_empty());
        order
    }

    #[test]
    fn empty_wheel_has_no_next() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert_eq!(w.next_at(), None);
        assert_eq!(w.len(), 0);
        assert!(format!("{w:?}").contains("TimingWheel"));
    }

    #[test]
    fn orders_within_one_slot_and_across_levels() {
        let mut w = TimingWheel::new();
        // Scattered over several orders of magnitude, inserted shuffled.
        let times = [
            5u64,
            1_000,
            1_023,
            1_024,
            70_000,
            1 << 20,
            (1 << 30) + 17,
            (1 << 38) + 5,
        ];
        let mut items: Vec<(u64, u64)> = times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        items.reverse();
        for &(t, s) in &items {
            w.insert(SimTime::from_nanos(t), s, ());
        }
        let mut expect: Vec<(u64, u64)> = times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expect.sort_unstable();
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn ties_resolve_by_seq() {
        let mut w = TimingWheel::new();
        for seq in 0..20u64 {
            w.insert(SimTime::from_micros(50), seq, ());
        }
        let order = drain(&mut w);
        assert_eq!(order.len(), 20);
        for (i, &(_, seq)) in order.iter().enumerate() {
            assert_eq!(seq, i as u64);
        }
    }

    #[test]
    fn same_timestamp_split_across_levels() {
        // Regression guard: an entry inserted far ahead lands on a coarse
        // level; after the wheel advances close to its deadline, a second
        // entry for the SAME timestamp lands directly on level 0. Both must
        // come out together, in seq order.
        let mut w = TimingWheel::new();
        let far = SimTime::from_nanos(3_000_000); // ~2930 ticks ahead: level 1
        w.insert(far, 0, "early-insert");
        // An intermediate event pulls the wheel forward when popped.
        let near = SimTime::from_nanos(2_900_000);
        w.insert(near, 1, "intermediate");
        assert_eq!(w.next_at(), Some(near));
        let mut cohort = Vec::new();
        w.pop_cohort(near, &mut cohort);
        assert_eq!(cohort.len(), 1);
        // Now the same timestamp as the far entry, inserted late.
        w.insert(far, 2, "late-insert");
        assert_eq!(w.next_at(), Some(far));
        cohort.clear();
        w.pop_cohort(far, &mut cohort);
        let got: Vec<_> = cohort.iter().map(|e| (e.seq, e.value)).collect();
        assert_eq!(got, vec![(0, "early-insert"), (2, "late-insert")]);
        assert!(w.is_empty());
    }

    #[test]
    fn sub_tick_entries_separate() {
        // Two entries in the same 1024 ns tick but at different nanoseconds
        // must pop as two distinct cohorts in time order.
        let mut w = TimingWheel::new();
        w.insert(SimTime::from_nanos(2_050), 0, ());
        w.insert(SimTime::from_nanos(2_049), 1, ());
        assert_eq!(drain(&mut w), vec![(2_049, 1), (2_050, 0)]);
    }

    #[test]
    fn overflow_heap_round_trips() {
        let mut w = TimingWheel::new();
        // > 2^36 ticks ahead (≈ 19.5 h in ticks → as nanos, shift back up).
        let huge = SimTime::from_nanos(1u64 << 48);
        let huge2 = SimTime::from_nanos((1u64 << 48) + 1);
        w.insert(huge2, 0, ());
        w.insert(huge, 1, ());
        w.insert(SimTime::from_nanos(100), 2, ());
        assert_eq!(
            drain(&mut w),
            vec![(100, 2), (1u64 << 48, 1), ((1u64 << 48) + 1, 0)]
        );
    }

    #[test]
    fn advance_to_skips_event_free_span() {
        let mut w = TimingWheel::new();
        w.insert(SimTime::from_secs(10), 0, ());
        w.advance_to(SimTime::from_secs(5));
        assert_eq!(w.next_at(), Some(SimTime::from_secs(10)));
        let mut cohort = Vec::new();
        w.pop_cohort(SimTime::from_secs(10), &mut cohort);
        assert_eq!(cohort.len(), 1);
    }

    #[test]
    fn matches_sorted_model_on_random_workload() {
        // Model-based check: interleave inserts and pops against a sorted
        // vector oracle, across a spread of magnitudes that exercises every
        // level and the overflow heap.
        let mut rng = crate::rng::SeedSource::new(0x77ee1).stream("wheel-model");
        let mut w = TimingWheel::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (at, seq), kept sorted
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut cohort = Vec::new();
        for round in 0..2_000 {
            let n_insert = rng.gen_range(0..4);
            for _ in 0..n_insert {
                let exp = rng.gen_range(0..40u32);
                let delta = rng.gen_range(1..=(1u64 << exp).max(1));
                let at = now + delta;
                w.insert(SimTime::from_nanos(at), seq, ());
                model.push((at, seq));
                seq += 1;
            }
            if round % 3 != 0 {
                continue;
            }
            // Pop one cohort and compare with the model's minimum group.
            if let Some(t) = w.next_at() {
                cohort.clear();
                w.pop_cohort(t, &mut cohort);
                model.sort_unstable();
                let t_ns = t.as_nanos();
                assert_eq!(t_ns, model[0].0, "wheel min disagrees with model");
                let expect: Vec<(u64, u64)> =
                    model.iter().take_while(|&&(at, _)| at == t_ns).copied().collect();
                let got: Vec<(u64, u64)> =
                    cohort.iter().map(|e| (e.at.as_nanos(), e.seq)).collect();
                assert_eq!(got, expect);
                model.drain(0..expect.len());
                now = t_ns;
            } else {
                assert!(model.is_empty());
            }
            assert_eq!(w.len(), model.len());
        }
        // Drain what remains.
        model.sort_unstable();
        let rest = drain(&mut w);
        assert_eq!(rest, model);
    }

    #[test]
    fn len_tracks_inserts_and_pops() {
        let mut w = TimingWheel::new();
        for i in 0..10u64 {
            w.insert(SimTime::from_micros(i + 1), i, ());
        }
        assert_eq!(w.len(), 10);
        let t = w.next_at().unwrap();
        let mut cohort = Vec::new();
        w.pop_cohort(t, &mut cohort);
        assert_eq!(w.len(), 9);
        assert!(!w.is_empty());
    }
}
