//! The discrete-event simulation engine.
//!
//! [`Sim`] owns a virtual clock and the pending-event store. Events execute
//! in `(timestamp, insertion order)` sequence, which makes runs fully
//! deterministic.
//!
//! # Event store
//!
//! Internally the engine keeps two structures behind one mutex:
//!
//! * a **now lane** — a FIFO `VecDeque` holding every event due at exactly
//!   the current clock value. Zero-delay scheduling (the component
//!   scheduler's fast path, loopback delivery, same-timestamp fan-out)
//!   appends here in O(1) with no ordering work at all;
//! * a hierarchical [timing wheel](crate::wheel) holding every event due in
//!   the future, extracted one timestamp-cohort at a time.
//!
//! The invariant tying them together: every now-lane event is stamped with
//! the current clock value, and every wheel entry is strictly in the future.
//! When the clock advances to the wheel's next deadline, that whole cohort
//! moves into the lane. `run_until` drains the lane a batch at a time —
//! one lock acquisition per batch, not per event — and executes events
//! *without* holding the engine lock, so re-entrant scheduling from inside
//! handlers is always safe. (Re-entrant `run_*` calls from inside an event
//! are not supported.)
//!
//! # Zero-allocation scheduling
//!
//! Beyond boxed closures ([`Sim::schedule_at`] / [`Sim::schedule_in`]), the
//! engine understands two preboxed event shapes that cover the simulation
//! hot paths and allocate nothing per event:
//!
//! * [`Sim::schedule_target_at`] — fire an [`EventTarget`] (e.g. run a
//!   component core, deliver a timeout) identified by a shared `Arc` plus a
//!   `u64` token;
//! * packet hops — advance a packet along its route (scheduled internally
//!   by [`Network`](crate::network::Network)).
//!
//! Event payloads live inline in the lane/wheel vectors, whose allocations
//! are recycled across batches, so steady-state dispatch is allocation-free.
//!
//! # Examples
//!
//! ```
//! use kmsg_netsim::engine::Sim;
//! use kmsg_netsim::time::SimTime;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let sim = Sim::new(42);
//! let hits = Arc::new(AtomicUsize::new(0));
//! let h = hits.clone();
//! sim.schedule_in(Duration::from_millis(10), move |sim| {
//!     assert_eq!(sim.now(), SimTime::from_nanos(10_000_000));
//!     h.fetch_add(1, Ordering::SeqCst);
//! });
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(hits.load(Ordering::SeqCst), 1);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::mem;
use std::sync::Arc;
use std::time::Duration;

use kmsg_telemetry::Recorder;
use parking_lot::Mutex;

use crate::memscope;
use crate::network::{Network, RouteRef};
use crate::pool::PacketHandle;
use crate::rng::{RngStream, SeedSource};
use crate::time::SimTime;
use crate::wheel::{TimingWheel, WheelEntry};

/// A scheduled simulation event: a one-shot closure run at its timestamp.
pub type EventFn = Box<dyn FnOnce(&Sim) + Send>;

/// A reusable event receiver for allocation-free scheduling.
///
/// Implementors are shared via `Arc` and fired with a caller-chosen `u64`
/// token, so one long-lived allocation serves any number of scheduled
/// events — the component scheduler and timers use this instead of boxing a
/// closure per event. See [`Sim::schedule_target_at`].
pub trait EventTarget: Send + Sync {
    /// Called when the event's timestamp is reached. Receives the firing
    /// `Arc` itself (so periodic targets can reschedule without cloning
    /// state) and the token passed at scheduling time.
    fn fire(self: Arc<Self>, sim: &Sim, token: u64);
}

/// One pending event, in any of the engine's preboxed shapes.
enum EventKind {
    /// A boxed one-shot closure (the flexible, allocating shape).
    Closure(EventFn),
    /// Fire a shared [`EventTarget`] with a token. No per-event allocation.
    Target {
        target: Arc<dyn EventTarget>,
        token: u64,
    },
    /// Advance a packet to hop `idx` of its route (deliver when past the
    /// end). The route is an 8-byte span handle into the network's
    /// flattened link arena, not a refcounted pointer, and the packet lives
    /// in the network's [`PacketPool`](crate::pool::PacketPool) — the event
    /// carries an 8-byte generation-checked handle, the slot is claimed at
    /// `send_packet` time and recycled at delivery or drop. Hop events stay
    /// small (the event store holds thousands of them inline in wheel
    /// slots) and hops themselves never allocate.
    PacketHop {
        net: Network,
        pkt: PacketHandle,
        route: RouteRef,
        idx: u32,
    },
}

struct SimInner {
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Next per-simulation connection id (deterministic per seed).
    next_conn_id: u64,
    /// Events due at exactly `now`, in insertion (= seq) order.
    now_lane: VecDeque<EventKind>,
    /// Events strictly after `now`.
    wheel: TimingWheel<EventKind>,
    /// Scratch buffer for wheel cohort extraction (capacity recycled).
    cohort: Vec<WheelEntry<EventKind>>,
    /// Spare batch buffer so `run_until` reuses capacity across calls.
    spare: VecDeque<EventKind>,
}

/// Handle to the discrete-event simulation engine.
///
/// Cloning is cheap (an [`Arc`] bump); all clones refer to the same clock and
/// event store. See the [module documentation](self) for an example.
#[derive(Clone)]
pub struct Sim {
    inner: Arc<Mutex<SimInner>>,
    seeds: SeedSource,
    recorder: Recorder,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending", &(inner.now_lane.len() + inner.wheel.len()))
            .field("executed", &inner.executed)
            .field("seed", &self.seeds.root())
            .finish()
    }
}

impl Sim {
    /// Creates a new simulation with the given experiment seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Arc::new(Mutex::new(SimInner {
                now: SimTime::ZERO,
                seq: 0,
                executed: 0,
                next_conn_id: 1,
                now_lane: VecDeque::new(),
                wheel: TimingWheel::new(),
                cohort: Vec::new(),
                spare: VecDeque::new(),
            })),
            seeds: SeedSource::new(seed),
            recorder: Recorder::new(),
        }
    }

    /// The telemetry recorder attached to this simulation.
    ///
    /// Starts disabled (all recording is a no-op); call
    /// [`Recorder::enable`] on it to start capturing. Every clone of the
    /// `Sim` shares the same recorder.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// Allocates the next connection id for this simulation.
    ///
    /// Ids are assigned from a per-`Sim` counter (not a process-global one)
    /// so two same-seed runs label their connections — and hence their
    /// telemetry events — identically.
    pub(crate) fn fresh_conn_id(&self) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_conn_id;
        inner.next_conn_id += 1;
        id
    }

    /// The seed source for deriving named deterministic random streams.
    #[must_use]
    pub fn seeds(&self) -> SeedSource {
        self.seeds
    }

    /// Derives the named deterministic random stream (see [`SeedSource`]).
    #[must_use]
    pub fn rng(&self, name: &str) -> RngStream {
        self.seeds.stream(name)
    }

    /// Stamps and stores one event: the now lane if due immediately, the
    /// wheel otherwise. Past times clamp to the current clock.
    fn schedule_event(&self, at: SimTime, event: EventKind) {
        let _scope = memscope::enter(memscope::SCOPE_ENGINE);
        let mut inner = self.inner.lock();
        let at = at.max(inner.now);
        let seq = inner.seq;
        inner.seq += 1;
        if at == inner.now {
            inner.now_lane.push_back(event);
        } else {
            inner.wheel.insert(at, seq, event);
        }
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current clock value but still execute after already-queued events with
    /// the same timestamp.
    pub fn schedule_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        self.schedule_event(at, EventKind::Closure(Box::new(f)));
    }

    /// Schedules `f` to run after `delay` of virtual time.
    pub fn schedule_in<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        let at = self.now() + delay;
        self.schedule_at(at, f);
    }

    /// Schedules `target` to [`fire`](EventTarget::fire) with `token` at
    /// absolute time `at`, with the same clamping rules as
    /// [`Sim::schedule_at`] — but without allocating: the only per-event
    /// cost is an `Arc` clone held inline in the event store.
    pub fn schedule_target_at(&self, at: SimTime, target: Arc<dyn EventTarget>, token: u64) {
        self.schedule_event(at, EventKind::Target { target, token });
    }

    /// Schedules `target` to [`fire`](EventTarget::fire) with `token` after
    /// `delay` of virtual time. Allocation-free; see
    /// [`Sim::schedule_target_at`].
    pub fn schedule_target_in(&self, delay: Duration, target: Arc<dyn EventTarget>, token: u64) {
        let at = self.now() + delay;
        self.schedule_target_at(at, target, token);
    }

    /// Schedules a packet-hop event: at `at`, the packet continues at hop
    /// `idx` of `route` on `net` (delivery once past the last hop).
    pub(crate) fn schedule_packet_hop(
        &self,
        at: SimTime,
        net: Network,
        pkt: PacketHandle,
        route: RouteRef,
        idx: u32,
    ) {
        self.schedule_event(
            at,
            EventKind::PacketHop {
                net,
                pkt,
                route,
                idx,
            },
        );
    }

    fn dispatch(&self, event: EventKind) {
        match event {
            EventKind::Closure(f) => f(self),
            EventKind::Target { target, token } => target.fire(self, token),
            EventKind::PacketHop {
                net,
                pkt,
                route,
                idx,
            } => net.packet_hop(pkt, route, idx),
        }
    }

    /// Runs events until the store is empty or the clock would pass
    /// `horizon`. Returns the number of events executed.
    ///
    /// The clock is advanced to `horizon` on return (even if the store
    /// drained earlier), so back-to-back `run_until` calls observe a
    /// monotonic clock. Events execute without the engine lock held; one
    /// lock acquisition drains a whole same-timestamp batch. Must not be
    /// called re-entrantly from inside an event.
    pub fn run_until(&self, horizon: SimTime) -> u64 {
        let mut count: u64 = 0;
        let mut batch = mem::take(&mut self.inner.lock().spare);
        loop {
            {
                let _scope = memscope::enter(memscope::SCOPE_ENGINE);
                let mut inner = self.inner.lock();
                if inner.now_lane.is_empty() {
                    match inner.wheel.next_at() {
                        Some(t) if t <= horizon => {
                            inner.now = t;
                            let mut cohort = mem::take(&mut inner.cohort);
                            inner.wheel.pop_cohort(t, &mut cohort);
                            inner.now_lane.extend(cohort.drain(..).map(|e| e.value));
                            inner.cohort = cohort;
                        }
                        _ => {
                            inner.now = inner.now.max(horizon);
                            inner.wheel.advance_to(horizon);
                            break;
                        }
                    }
                }
                if inner.now > horizon {
                    // Lane events are stamped `now`, already past the
                    // horizon: leave them for a later run.
                    break;
                }
                debug_assert!(batch.is_empty());
                mem::swap(&mut batch, &mut inner.now_lane);
                inner.executed += batch.len() as u64;
            }
            count += batch.len() as u64;
            for event in batch.drain(..) {
                self.dispatch(event);
            }
        }
        self.inner.lock().spare = batch;
        count
    }

    /// Runs events for `span` of virtual time from the current clock value.
    pub fn run_for(&self, span: Duration) -> u64 {
        let horizon = self.now() + span;
        self.run_until(horizon)
    }

    /// Runs until the event store is fully drained.
    ///
    /// Careful with self-rescheduling events (e.g. periodic timers): this
    /// will never return while any are alive. Returns the number of events
    /// executed.
    pub fn run_to_completion(&self) -> u64 {
        let mut count = 0;
        loop {
            let before = count;
            count += self.run_until(SimTime::MAX);
            if count == before {
                break;
            }
        }
        count
    }

    /// Number of events executed so far. Events count as executed when
    /// their batch is claimed for dispatch.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.inner.lock().executed
    }

    /// Number of events currently pending in the store.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        let inner = self.inner.lock();
        inner.now_lane.len() + inner.wheel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_in_time_order() {
        let sim = Sim::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let log = log.clone();
            sim.schedule_in(Duration::from_millis(ms), move |_| log.lock().push(i));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*log.lock(), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let sim = Sim::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10u32 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.lock().push(i));
        }
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        sim.schedule_in(Duration::from_millis(1), move |sim| {
            let h2 = h.clone();
            sim.schedule_in(Duration::from_millis(1), move |_| {
                h2.fetch_add(1, Ordering::SeqCst);
            });
            h.fetch_add(1, Ordering::SeqCst);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn horizon_respected_and_clock_advances() {
        let sim = Sim::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        sim.schedule_in(Duration::from_secs(5), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let ran = sim.run_until(SimTime::from_secs(1));
        assert_eq!(ran, 0);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(1));
        let fired_at = Arc::new(Mutex::new(SimTime::ZERO));
        let f = fired_at.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| *f.lock() = sim.now());
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*fired_at.lock(), SimTime::from_secs(1));
    }

    #[test]
    fn run_for_advances_relative() {
        let sim = Sim::new(0);
        sim.run_for(Duration::from_secs(1));
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_to_completion_drains() {
        let sim = Sim::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let h = hits.clone();
            sim.schedule_in(Duration::from_secs(3600), move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        let ran = sim.run_to_completion();
        assert_eq!(ran, 5);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let sim = Sim::new(3);
        assert!(format!("{sim:?}").contains("Sim"));
    }

    #[test]
    fn zero_delay_events_run_fifo() {
        // The now-lane fast path: a chain of zero-delay events interleaved
        // with fresh zero-delay inserts must preserve global FIFO order.
        let sim = Sim::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let log = log.clone();
            sim.schedule_in(Duration::ZERO, move |sim| {
                log.lock().push(i);
                if i == 0 {
                    let log = log.clone();
                    sim.schedule_in(Duration::ZERO, move |_| log.lock().push(100));
                }
            });
        }
        sim.run_until(SimTime::ZERO);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 100]);
    }

    #[test]
    fn now_lane_respects_horizon_already_passed() {
        // An event stamped "now" after the clock passed the next horizon
        // must not run early — matches the heap engine's behaviour.
        let sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        sim.schedule_in(Duration::ZERO, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        // Horizon before `now`: nothing may run, clock must not regress.
        let ran = sim.run_until(SimTime::from_secs(1));
        assert_eq!(ran, 0);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.events_pending(), 1);
        let ran = sim.run_until(SimTime::from_secs(2));
        assert_eq!(ran, 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    struct CountTarget(AtomicUsize, Mutex<Vec<u64>>);
    impl EventTarget for CountTarget {
        fn fire(self: Arc<Self>, _sim: &Sim, token: u64) {
            self.0.fetch_add(1, Ordering::SeqCst);
            self.1.lock().push(token);
        }
    }

    #[test]
    fn target_events_fire_with_tokens_in_order() {
        let sim = Sim::new(0);
        let target = Arc::new(CountTarget(AtomicUsize::new(0), Mutex::new(Vec::new())));
        sim.schedule_target_in(Duration::from_millis(2), target.clone(), 7);
        sim.schedule_target_in(Duration::from_millis(1), target.clone(), 3);
        sim.schedule_target_at(SimTime::ZERO, target.clone(), 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(target.0.load(Ordering::SeqCst), 3);
        assert_eq!(*target.1.lock(), vec![1, 3, 7]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn closures_and_targets_interleave_deterministically() {
        let sim = Sim::new(0);
        let target = Arc::new(CountTarget(AtomicUsize::new(0), Mutex::new(Vec::new())));
        let log = Arc::new(Mutex::new(Vec::new()));
        let at = SimTime::from_millis(5);
        for i in 0..6u64 {
            if i % 2 == 0 {
                sim.schedule_target_at(at, target.clone(), i);
            } else {
                let log = log.clone();
                sim.schedule_at(at, move |_| log.lock().push(i));
            }
        }
        sim.run_until(SimTime::from_secs(1));
        // Targets saw even tokens in order, closures odd — both FIFO.
        assert_eq!(*target.1.lock(), vec![0, 2, 4]);
        assert_eq!(*log.lock(), vec![1, 3, 5]);
    }
}
