//! The discrete-event simulation engine.
//!
//! [`Sim`] owns a virtual clock and a priority queue of scheduled events.
//! Events are boxed closures executed in timestamp order; ties are broken by
//! insertion order, which makes runs fully deterministic.
//!
//! The handle is cheaply cloneable and thread-safe so that simulated
//! subsystems (links, transport endpoints, component schedulers) can capture
//! it and schedule further events from inside event handlers. Events are
//! executed *without* holding the engine lock, so re-entrant scheduling is
//! always safe.
//!
//! # Examples
//!
//! ```
//! use kmsg_netsim::engine::Sim;
//! use kmsg_netsim::time::SimTime;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let sim = Sim::new(42);
//! let hits = Arc::new(AtomicUsize::new(0));
//! let h = hits.clone();
//! sim.schedule_in(Duration::from_millis(10), move |sim| {
//!     assert_eq!(sim.now(), SimTime::from_nanos(10_000_000));
//!     h.fetch_add(1, Ordering::SeqCst);
//! });
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(hits.load(Ordering::SeqCst), 1);
//! ```

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::rng::{RngStream, SeedSource};
use crate::time::SimTime;

/// A scheduled simulation event: a one-shot closure run at its timestamp.
pub type EventFn = Box<dyn FnOnce(&Sim) + Send>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    run: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct SimInner {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled>,
}

/// Handle to the discrete-event simulation engine.
///
/// Cloning is cheap (an [`Arc`] bump); all clones refer to the same clock and
/// event queue. See the [module documentation](self) for an example.
#[derive(Clone)]
pub struct Sim {
    inner: Arc<Mutex<SimInner>>,
    seeds: SeedSource,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending", &inner.queue.len())
            .field("executed", &inner.executed)
            .field("seed", &self.seeds.root())
            .finish()
    }
}

impl Sim {
    /// Creates a new simulation with the given experiment seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Arc::new(Mutex::new(SimInner {
                now: SimTime::ZERO,
                seq: 0,
                executed: 0,
                queue: BinaryHeap::new(),
            })),
            seeds: SeedSource::new(seed),
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// The seed source for deriving named deterministic random streams.
    #[must_use]
    pub fn seeds(&self) -> SeedSource {
        self.seeds
    }

    /// Derives the named deterministic random stream (see [`SeedSource`]).
    #[must_use]
    pub fn rng(&self, name: &str) -> RngStream {
        self.seeds.stream(name)
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current clock value but still execute after already-queued events with
    /// the same timestamp.
    pub fn schedule_at<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        let mut inner = self.inner.lock();
        let at = at.max(inner.now);
        let seq = inner.seq;
        inner.seq += 1;
        inner.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Schedules `f` to run after `delay` of virtual time.
    pub fn schedule_in<F>(&self, delay: Duration, f: F)
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        let at = self.now() + delay;
        self.schedule_at(at, f);
    }

    /// Runs events until the queue is empty or the clock would pass
    /// `horizon`. Returns the number of events executed.
    ///
    /// The clock is advanced to `horizon` on return (even if the queue
    /// drained earlier), so back-to-back `run_until` calls observe a
    /// monotonic clock.
    pub fn run_until(&self, horizon: SimTime) -> u64 {
        let mut count = 0;
        loop {
            let event = {
                let mut inner = self.inner.lock();
                match inner.queue.peek() {
                    Some(head) if head.at <= horizon => {
                        let ev = inner.queue.pop().expect("peeked event vanished");
                        inner.now = ev.at;
                        inner.executed += 1;
                        ev
                    }
                    _ => {
                        inner.now = inner.now.max(horizon);
                        break;
                    }
                }
            };
            (event.run)(self);
            count += 1;
        }
        count
    }

    /// Runs events for `span` of virtual time from the current clock value.
    pub fn run_for(&self, span: Duration) -> u64 {
        let horizon = self.now() + span;
        self.run_until(horizon)
    }

    /// Runs until the event queue is fully drained.
    ///
    /// Careful with self-rescheduling events (e.g. periodic timers): this
    /// will never return while any are alive. Returns the number of events
    /// executed.
    pub fn run_to_completion(&self) -> u64 {
        let mut count = 0;
        loop {
            let before = count;
            count += self.run_until(SimTime::MAX);
            if count == before {
                break;
            }
        }
        count
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.inner.lock().executed
    }

    /// Number of events currently pending in the queue.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.inner.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_in_time_order() {
        let sim = Sim::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let log = log.clone();
            sim.schedule_in(Duration::from_millis(ms), move |_| log.lock().push(i));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*log.lock(), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let sim = Sim::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10u32 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_secs(1), move |_| log.lock().push(i));
        }
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        sim.schedule_in(Duration::from_millis(1), move |sim| {
            let h2 = h.clone();
            sim.schedule_in(Duration::from_millis(1), move |_| {
                h2.fetch_add(1, Ordering::SeqCst);
            });
            h.fetch_add(1, Ordering::SeqCst);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn horizon_respected_and_clock_advances() {
        let sim = Sim::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        sim.schedule_in(Duration::from_secs(5), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let ran = sim.run_until(SimTime::from_secs(1));
        assert_eq!(ran, 0);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(1));
        let fired_at = Arc::new(Mutex::new(SimTime::ZERO));
        let f = fired_at.clone();
        sim.schedule_at(SimTime::ZERO, move |sim| *f.lock() = sim.now());
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*fired_at.lock(), SimTime::from_secs(1));
    }

    #[test]
    fn run_for_advances_relative() {
        let sim = Sim::new(0);
        sim.run_for(Duration::from_secs(1));
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_to_completion_drains() {
        let sim = Sim::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let h = hits.clone();
            sim.schedule_in(Duration::from_secs(3600), move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        let ran = sim.run_to_completion();
        assert_eq!(ran, 5);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let sim = Sim::new(3);
        assert!(format!("{sim:?}").contains("Sim"));
    }
}
