//! # kmsg-netsim — deterministic discrete-event network simulator
//!
//! The network substrate for the KompicsMessaging reproduction
//! (*Fast and Flexible Networking for Message-oriented Middleware*,
//! ICDCS 2017). It stands in for the paper's Amazon EC2 testbed and the
//! JVM/Netty network stack, providing packet-level models of the three
//! transports the middleware multiplexes:
//!
//! * [`tcp`] — TCP Reno/NewReno with flow control, fast retransmit and RTO;
//! * [`udp`] — plain unreliable datagrams;
//! * [`udt`] — UDT's rate-based DAIMD congestion control over UDP.
//!
//! Everything runs on a virtual clock ([`engine::Sim`]) with named,
//! seeded random streams ([`rng::SeedSource`]), so every experiment is
//! exactly reproducible.
//!
//! # Example: a policed wide-area link
//!
//! ```
//! use kmsg_netsim::engine::Sim;
//! use kmsg_netsim::link::{LinkConfig, PolicerConfig};
//! use kmsg_netsim::network::Network;
//! use std::time::Duration;
//!
//! let sim = Sim::new(42);
//! let net = Network::new(&sim);
//! let eu = net.add_node("ireland");
//! let au = net.add_node("sydney");
//! // 125 MB/s, 160 ms one-way delay (320 ms RTT), EC2-like UDP policer.
//! let cfg = LinkConfig::new(125e6, Duration::from_millis(160))
//!     .udp_policer(PolicerConfig::ec2_udp());
//! net.connect_duplex(eu, au, cfg);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cc;
pub mod engine;
pub mod faults;
pub mod iface;
pub mod link;
pub mod memscope;
pub mod network;
pub mod packet;
pub mod pool;
pub mod reference;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod tcp;
pub mod testutil;
pub mod time;
pub mod timerwheel;
pub mod trace;
pub mod udp;
pub mod udt;
pub mod wheel;

pub use cc::{CcAlgorithm, CcConfig, CongestionController};
pub use engine::{EventTarget, Sim};
pub use faults::{FaultAction, FaultController, FaultEvent, FaultPlan};
pub use reference::ReferenceSim;
pub use iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
pub use link::{DropReason, GeConfig, LinkConfig, LinkId, PolicerConfig};
pub use network::{BindError, Network, NetworkStats, PacketSink};
pub use packet::{Endpoint, NodeId, WireProtocol};
pub use pool::{PacketHandle, PacketPool};
pub use slab::{FxHashMap, FxHashSet, FxHasher, Handle, Slab};
pub use timerwheel::StackTimerWheel;
pub use time::SimTime;
pub use trace::{PacketEvent, PacketRecord, PacketTracer, RecorderTracer, RingTracer};

// Telemetry is part of the simulator's public surface: `Sim::recorder()`
// returns a handle and instrumented code records `EventKind` values.
pub use kmsg_telemetry::{Event, EventKind, Recorder};
