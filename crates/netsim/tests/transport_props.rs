//! Property-based tests on the transport models: whatever the write
//! pattern, loss rate or delay, the reliable transports must deliver the
//! exact byte stream, in order, exactly once. Sampled cases run on the
//! crate's own deterministic [`PropRunner`] — each case's inputs replay
//! from its seeded stream, no external framework involved.

use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::rng::RngStream;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{pattern_bytes, PatternSender, PropRunner, Recorder};
use kmsg_netsim::udt::{UdtConfig, UdtConn, UdtListener};

/// Unoptimized builds run fewer cases so the suite stays fast.
const TRANSFER_CASES: u64 = if cfg!(debug_assertions) { 8 } else { 24 };

struct AcceptRecorder(Arc<Recorder>);
impl StreamAccept for AcceptRecorder {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

#[derive(Debug, Clone)]
struct NetParams {
    seed: u64,
    total: usize,
    loss: f64,
    delay_ms: u64,
    bandwidth_mbps: u64,
}

fn gen_params(rng: &mut RngStream) -> NetParams {
    // Unoptimized builds shrink the workload so the suite stays fast.
    let max_total = if cfg!(debug_assertions) { 80_000 } else { 400_000 };
    NetParams {
        seed: rng.gen_range(0u64..1000),
        total: rng.gen_range(1usize..max_total),
        loss: if rng.gen_bool(0.5) {
            0.0
        } else {
            rng.gen_range(0.001..0.03f64)
        },
        delay_ms: rng.gen_range(0u64..60),
        bandwidth_mbps: rng.gen_range(1u64..50),
    }
}

fn run_tcp(p: &NetParams) -> (usize, bool) {
    let sim = Sim::new(p.seed);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let link = LinkConfig::new(
        p.bandwidth_mbps as f64 * 1e6,
        Duration::from_millis(p.delay_ms),
    )
    .random_loss(p.loss);
    net.connect_duplex(a, b, link);
    let server = Arc::new(Recorder::default());
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let pump = PatternSender::new(&sim, p.total);
    let _conn =
        TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump).expect("conn");
    // Generous horizon: lossy slow links with tiny windows are slow.
    sim.run_for(Duration::from_secs(600));
    (server.data_len(), server.in_order())
}

fn run_udt(p: &NetParams) -> (usize, bool) {
    let sim = Sim::new(p.seed);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let link = LinkConfig::new(
        p.bandwidth_mbps as f64 * 1e6,
        Duration::from_millis(p.delay_ms),
    )
    .random_loss(p.loss);
    net.connect_duplex(a, b, link);
    let server = Arc::new(Recorder::default());
    let _l = UdtListener::bind(
        &net,
        b,
        90,
        UdtConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let pump = PatternSender::new(&sim, p.total);
    let _conn =
        UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), pump).expect("conn");
    sim.run_for(Duration::from_secs(600));
    (server.data_len(), server.in_order())
}

#[test]
fn tcp_delivers_exactly_in_order() {
    PropRunner::new("transport-tcp-exact-delivery")
        .cases(TRANSFER_CASES)
        .run(gen_params, |p| {
            let (len, ordered) = run_tcp(p);
            assert_eq!(len, p.total, "all bytes must arrive: {p:?}");
            assert!(ordered, "bytes must be the exact pattern: {p:?}");
        });
}

#[test]
fn udt_delivers_exactly_in_order() {
    PropRunner::new("transport-udt-exact-delivery")
        .cases(TRANSFER_CASES)
        .run(gen_params, |p| {
            let (len, ordered) = run_udt(p);
            assert_eq!(len, p.total, "all bytes must arrive: {p:?}");
            assert!(ordered, "bytes must be the exact pattern: {p:?}");
        });
}

#[test]
fn pattern_bytes_consistent() {
    PropRunner::new("pattern-bytes-concatenation").cases(64).run(
        |rng| (rng.gen_range(0usize..10_000), rng.gen_range(0usize..5_000)),
        |&(offset, len)| {
            let a = pattern_bytes(offset, len);
            // Concatenation property: pattern(o, n1) ++ pattern(o+n1, n2)
            // is pattern(o, n1+n2).
            let n1 = len / 2;
            let b = pattern_bytes(offset, n1);
            let c = pattern_bytes(offset + n1, len - n1);
            let mut joined = b.to_vec();
            joined.extend_from_slice(&c);
            assert_eq!(a.to_vec(), joined);
        },
    );
}

#[test]
fn same_seed_same_byte_counts() {
    let p = NetParams {
        seed: 7,
        total: 100_000,
        loss: 0.01,
        delay_ms: 10,
        bandwidth_mbps: 10,
    };
    assert_eq!(run_tcp(&p), run_tcp(&p));
    assert_eq!(run_udt(&p), run_udt(&p));
}

#[test]
fn tracer_observes_policer_drops() {
    use kmsg_netsim::link::PolicerConfig;
    use kmsg_netsim::trace::RingTracer;
    use kmsg_netsim::udp::UdpSocket;
    use bytes::Bytes;

    struct Ignore;
    impl kmsg_netsim::udp::UdpEvents for Ignore {
        fn on_datagram(&self, _s: &UdpSocket, _src: Endpoint, _d: Bytes) {}
    }

    let sim = Sim::new(3);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    net.connect_duplex(
        a,
        b,
        LinkConfig::new(100e6, Duration::from_millis(1)).udp_policer(PolicerConfig {
            rate: 10_000.0,
            burst: 10_000.0,
        }),
    );
    let tracer = RingTracer::new(64);
    net.set_tracer(tracer.clone());
    let rx = Arc::new(Ignore);
    let _b_sock = UdpSocket::bind(&net, b, 9, rx.clone()).expect("bind");
    let a_sock = UdpSocket::bind(&net, a, 8, rx).expect("bind");
    for _ in 0..20 {
        a_sock
            .send_to(Endpoint::new(b, 9), Bytes::from(vec![0u8; 5000]))
            .expect("send");
    }
    sim.run_for(Duration::from_secs(1));
    let counts = tracer.counts();
    assert_eq!(counts.sent, 20);
    assert!(counts.dropped_policer > 0, "policer drops must be traced");
    assert!(counts.delivered > 0);
    assert_eq!(
        counts.delivered + counts.dropped_policer,
        20,
        "every packet is accounted for"
    );
    assert!(!tracer.records().is_empty());
}

#[test]
fn jitter_reorders_udp_but_not_tcp() {
    use kmsg_netsim::udp::UdpSocket;
    use bytes::Bytes;
    use parking_lot::Mutex as PMutex;

    struct Order(PMutex<Vec<u8>>);
    impl kmsg_netsim::udp::UdpEvents for Order {
        fn on_datagram(&self, _s: &UdpSocket, _src: Endpoint, d: Bytes) {
            self.0.lock().push(d[0]);
        }
    }

    let sim = Sim::new(9);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let link = LinkConfig::new(1e9, Duration::from_millis(10)).jitter(Duration::from_millis(8));
    net.connect_duplex(a, b, link.clone());

    // UDP: arrival order may differ from send order.
    let order = Arc::new(Order(PMutex::new(Vec::new())));
    let _b_sock = UdpSocket::bind(&net, b, 9, order.clone()).expect("bind");
    let a_sock = UdpSocket::bind(&net, a, 8, Arc::new(Order(PMutex::new(Vec::new())))).expect("bind");
    for i in 0..50u8 {
        a_sock
            .send_to(Endpoint::new(b, 9), Bytes::from(vec![i]))
            .expect("send");
    }
    sim.run_for(Duration::from_secs(1));
    let got = order.0.lock().clone();
    assert_eq!(got.len(), 50);
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_ne!(got, sorted, "jitter should reorder UDP datagrams");

    // TCP on the same jittery path still delivers the exact stream.
    let server = Arc::new(Recorder::default());
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let pump = PatternSender::new(&sim, 200_000);
    let _conn =
        TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump).expect("conn");
    sim.run_for(Duration::from_secs(30));
    assert_eq!(server.data_len(), 200_000);
    assert!(server.in_order(), "TCP must repair jitter-induced reordering");
}

/// Oracle-checks a finished simulation: every `kmsg-oracle` invariant must
/// hold on the recorded trace. Pathological-topology tests call this so
/// "no panic" is strengthened to "no panic and a protocol-legal trace".
fn assert_oracle_clean(sim: &Sim, facts: &kmsg_oracle::RunFacts, cfg: &kmsg_oracle::OracleConfig) {
    let events = sim.recorder().events();
    let violations = kmsg_oracle::check_all(&events, facts, cfg);
    assert!(
        violations.is_empty(),
        "trace violates protocol invariants:\n{}",
        kmsg_oracle::render_verdict(&violations)
    );
}

/// A zero-capacity queue drops every packet at enqueue. Nothing connects,
/// nothing panics (no division blow-up on an empty pipe), and the trace —
/// SYN timeouts with doubling RTOs, every drop accounted — stays legal.
#[test]
fn zero_capacity_queue_is_a_black_hole_not_a_panic() {
    let sim = Sim::new(21);
    sim.recorder().enable();
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    net.set_tracer(kmsg_netsim::trace::RecorderTracer::new(sim.recorder().clone()));
    net.connect_duplex(
        a,
        b,
        LinkConfig::new(10e6, Duration::from_millis(5)).queue_capacity(0),
    );
    let server = Arc::new(Recorder::default());
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let client = Arc::new(Recorder::default());
    let _conn = TcpConn::connect(
        &net,
        a,
        Endpoint::new(b, 80),
        TcpConfig {
            syn_retries: 2,
            ..TcpConfig::default()
        },
        client.clone(),
    )
    .expect("conn");
    sim.run_for(Duration::from_secs(120));
    assert_eq!(server.data_len(), 0, "nothing can cross a zero-capacity queue");
    assert_eq!(server.connected(), 0);
    assert_eq!(client.closed(), 1, "the client must give up, not hang");
    assert_oracle_clean(
        &sim,
        &kmsg_oracle::RunFacts {
            evicted_events: sim.recorder().evicted(),
            ..kmsg_oracle::RunFacts::default()
        },
        &kmsg_oracle::OracleConfig::default(),
    );
}

/// A 100% loss window (a Gilbert–Elliott episode pinned to the bad state)
/// blacks the link out mid-transfer; after the scripted heal the transfer
/// completes and the whole trace — including the outage — is oracle-clean.
#[test]
fn full_loss_window_heals_and_transfer_completes() {
    use kmsg_netsim::faults::{FaultController, FaultPlan};
    use kmsg_netsim::link::GeConfig;
    use kmsg_netsim::time::SimTime;

    let sim = Sim::new(22);
    sim.recorder().enable();
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    net.set_tracer(kmsg_netsim::trace::RecorderTracer::new(sim.recorder().clone()));
    let (ab, ba) = net.connect_duplex(a, b, LinkConfig::new(10e6, Duration::from_millis(5)));
    let blackout = GeConfig {
        p_enter_bad: 1.0,
        p_exit_bad: 0.0,
        loss_good: 1.0,
        loss_bad: 1.0,
    };
    let plan = FaultPlan::new()
        .loss_burst(ab, SimTime::from_millis(200), SimTime::from_millis(1_200), blackout)
        .loss_burst(ba, SimTime::from_millis(200), SimTime::from_millis(1_200), blackout);
    FaultController::install(&net, plan);
    let server = Arc::new(Recorder::default());
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let total = 300_000;
    let pump = PatternSender::new(&sim, total);
    let _conn =
        TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump).expect("conn");
    sim.run_for(Duration::from_secs(300));
    assert_eq!(server.data_len(), total, "transfer must finish after the heal");
    assert!(server.in_order());
    assert_oracle_clean(
        &sim,
        &kmsg_oracle::RunFacts {
            completed: true,
            verified: true,
            fifo_expected: true,
            evicted_events: sim.recorder().evicted(),
            ..kmsg_oracle::RunFacts::default()
        },
        &kmsg_oracle::OracleConfig {
            expect_completion: true,
            faults_must_heal: true,
            ..kmsg_oracle::OracleConfig::default()
        },
    );
}

/// One byte per second: the link is pathologically slow but finite. The
/// handshake's multi-minute serialization must not panic or divide by
/// zero, RTO backoff must stay legal, and no data can possibly arrive.
#[test]
fn single_byte_bandwidth_makes_no_progress_but_stays_legal() {
    let sim = Sim::new(23);
    sim.recorder().enable();
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    net.connect_duplex(a, b, LinkConfig::new(1.0, Duration::from_millis(1)));
    let server = Arc::new(Recorder::default());
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let pump = PatternSender::new(&sim, 10_000);
    let _conn =
        TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump).expect("conn");
    sim.run_for(Duration::from_secs(120));
    assert_eq!(server.data_len(), 0, "no payload fits through 1 B/s in 2 min");
    assert_oracle_clean(
        &sim,
        &kmsg_oracle::RunFacts {
            evicted_events: sim.recorder().evicted(),
            ..kmsg_oracle::RunFacts::default()
        },
        &kmsg_oracle::OracleConfig::default(),
    );
}

/// Both hosts dial each other on the same port pair at the same instant.
/// Both directions must hand shake, carry their transfers to completion
/// and leave an oracle-clean trace (distinct connections, legal per-conn
/// state machines).
#[test]
fn simultaneous_bidirectional_open_completes_both_ways() {
    let sim = Sim::new(24);
    sim.recorder().enable();
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    net.connect_duplex(a, b, LinkConfig::new(10e6, Duration::from_millis(5)));
    let server_on_b = Arc::new(Recorder::default());
    let _lb = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server_on_b.clone())),
    )
    .expect("bind b");
    let server_on_a = Arc::new(Recorder::default());
    let _la = TcpListener::bind(
        &net,
        a,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server_on_a.clone())),
    )
    .expect("bind a");
    let total = 200_000;
    let pump_ab = PatternSender::new(&sim, total);
    let pump_ba = PatternSender::new(&sim, total);
    let _c_ab = TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump_ab)
        .expect("conn a->b");
    let _c_ba = TcpConn::connect(&net, b, Endpoint::new(a, 80), TcpConfig::default(), pump_ba)
        .expect("conn b->a");
    sim.run_for(Duration::from_secs(60));
    assert_eq!(server_on_b.data_len(), total, "a->b transfer completes");
    assert!(server_on_b.in_order());
    assert_eq!(server_on_a.data_len(), total, "b->a transfer completes");
    assert!(server_on_a.in_order());
    assert_oracle_clean(
        &sim,
        &kmsg_oracle::RunFacts {
            completed: true,
            verified: true,
            fifo_expected: true,
            evicted_events: sim.recorder().evicted(),
            ..kmsg_oracle::RunFacts::default()
        },
        &kmsg_oracle::OracleConfig {
            expect_completion: true,
            ..kmsg_oracle::OracleConfig::default()
        },
    );
}

/// The engine executes events in (time, insertion) order regardless of
/// how they were scheduled.
#[test]
fn engine_ordering_invariant() {
    PropRunner::new("engine-event-ordering").cases(32).run(
        |rng| {
            let n = rng.gen_range(1usize..200);
            (0..n).map(|_| rng.gen_range(0u64..1000)).collect::<Vec<u64>>()
        },
        |delays| {
            use parking_lot::Mutex as PMutex;
            let sim = Sim::new(1);
            let log = Arc::new(PMutex::new(Vec::new()));
            for (idx, &d) in delays.iter().enumerate() {
                let log = log.clone();
                sim.schedule_in(Duration::from_micros(d), move |s| {
                    log.lock().push((s.now(), idx));
                });
            }
            sim.run_to_completion();
            let got = log.lock().clone();
            assert_eq!(got.len(), delays.len());
            // Times are non-decreasing, and equal times preserve insertion
            // order.
            for w in got.windows(2) {
                assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1, "tie must keep insertion order");
                }
            }
        },
    );
}

/// Seeded random streams are stable across construction order.
#[test]
fn rng_streams_stable() {
    PropRunner::new("rng-stream-stability").cases(32).run(
        |rng| {
            let seed: u64 = rng.gen();
            let len = rng.gen_range(1usize..=12);
            let name: String = (0..len)
                .map(|_| char::from(b'a' + rng.gen_range(0u8..26)))
                .collect();
            (seed, name)
        },
        |(seed, name)| {
            use kmsg_netsim::rng::SeedSource;
            let a: u64 = SeedSource::new(*seed).stream(name).gen();
            // Interleave other stream creations; the named stream is
            // unchanged.
            let src = SeedSource::new(*seed);
            let _ = src.stream("other");
            let _ = src.sub_source(5).stream(name);
            let b: u64 = src.stream(name).gen();
            assert_eq!(a, b);
        },
    );
}
