//! Scripted fault plans driven against live transports: outages, flaps
//! and partitions injected off the timing wheel while TCP streams run,
//! plus the byte-for-byte replayability of chaos telemetry.

use std::sync::Arc;
use std::time::Duration;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::faults::{FaultController, FaultPlan};
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::{DropReason, LinkConfig, LinkId};
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::{Endpoint, NodeId};
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{PatternSender, Recorder};
use kmsg_netsim::time::SimTime;

struct Accept(Arc<Recorder>);

impl StreamAccept for Accept {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

fn world(seed: u64) -> (Sim, Network, NodeId, NodeId, LinkId, LinkId) {
    let sim = Sim::new(seed);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let (ab, ba) = net.connect_duplex(a, b, LinkConfig::new(2e6, Duration::from_millis(10)));
    (sim, net, a, b, ab, ba)
}

/// Starts a one-way TCP pattern transfer from `a` to `b`. Returns the
/// receiver-side recorder plus the listener and connection handles — the
/// caller must keep them alive (the node tables hold only weak refs).
fn start_transfer(
    sim: &Sim,
    net: &Network,
    a: NodeId,
    b: NodeId,
    total: usize,
) -> (Arc<Recorder>, TcpListener, TcpConn) {
    let server = Arc::new(Recorder::with_sim(sim));
    let listener = TcpListener::bind(
        net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(Accept(server.clone())),
    )
    .expect("bind");
    let conn = TcpConn::connect(
        net,
        a,
        Endpoint::new(b, 80),
        TcpConfig::default(),
        PatternSender::new(sim, total),
    )
    .expect("connect");
    (server, listener, conn)
}

#[test]
fn tcp_transfer_survives_scripted_outage() {
    let (sim, net, a, b, ab, _ba) = world(5);
    let plan = FaultPlan::new().down_between(ab, SimTime::from_secs(1), SimTime::from_secs(3));
    let ctl = FaultController::install(&net, plan);
    let total = 6_000_000;
    let (server, _listener, _conn) = start_transfer(&sim, &net, a, b, total);
    sim.run_for(Duration::from_secs(60));
    assert_eq!(server.data_len(), total, "retransmission must ride out a 2 s cut");
    assert!(server.in_order(), "the stream arrives intact and in order");
    assert_eq!(ctl.applied(), 2, "sever + restore");
    // The sever at 1 s lands mid-transfer: serialized backlog and in-flight
    // packets on the cut link must die as `Severed`.
    assert!(
        net.link(ab).stats().dropped(DropReason::Severed) > 0,
        "an active transfer must lose packets to the sever"
    );
}

#[test]
fn tcp_transfer_survives_link_flapping() {
    let (sim, net, a, b, ab, _ba) = world(6);
    // 1 Hz flapping with 40% downtime between t=1s and t=5s.
    let plan = FaultPlan::new().flap(
        ab,
        SimTime::from_secs(1),
        SimTime::from_secs(5),
        Duration::from_secs(1),
        0.4,
    );
    let ctl = FaultController::install(&net, plan);
    let total = 6_000_000;
    let (server, _listener, _conn) = start_transfer(&sim, &net, a, b, total);
    sim.run_for(Duration::from_secs(90));
    assert_eq!(server.data_len(), total, "the flapping window must be survivable");
    assert!(server.in_order());
    assert_eq!(ctl.applied(), 8, "4 severs + 4 restores");
}

#[test]
fn partition_blocks_both_directions_until_heal() {
    let (sim, net, a, b, ab, ba) = world(7);
    let plan = FaultPlan::new().partition_between(
        SimTime::from_secs(1),
        SimTime::from_secs(2),
        &[a],
        &[b],
    );
    let ctl = FaultController::install(&net, plan);
    let total = 6_000_000;
    let (server, _listener, _conn) = start_transfer(&sim, &net, a, b, total);
    // During the partition no progress is possible in either direction:
    // data (a→b) is cut and so are the ACKs (b→a).
    sim.run_until(SimTime::from_millis(1100));
    let frozen = server.data_len();
    assert!(frozen > 0, "the transfer is underway before the cut");
    sim.run_until(SimTime::from_millis(1900));
    assert_eq!(server.data_len(), frozen, "no delivery across a partition");
    assert!(!net.link(ab).is_up());
    assert!(!net.link(ba).is_up());
    sim.run_for(Duration::from_secs(60));
    assert_eq!(server.data_len(), total, "heal restores the stream");
    assert!(server.in_order());
    assert_eq!(ctl.applied(), 4, "2 links severed + 2 healed");
}

#[test]
fn same_seed_chaos_telemetry_is_byte_identical() {
    let run = || {
        let (sim, net, a, b, _ab, ba) = world(42);
        sim.recorder().enable();
        let plan = FaultPlan::new()
            .partition_between(SimTime::from_secs(1), SimTime::from_secs(2), &[a], &[b])
            .latency_spike(
                ba,
                SimTime::from_secs(3),
                SimTime::from_secs(4),
                Duration::from_millis(40),
            );
        let ctl = FaultController::install(&net, plan);
        let total = 6_000_000;
        let (server, _listener, _conn) = start_transfer(&sim, &net, a, b, total);
        sim.run_for(Duration::from_secs(30));
        assert_eq!(server.data_len(), total);
        (ctl.applied(), sim.recorder().to_jsonl())
    };
    let (applied_1, jsonl_1) = run();
    let (applied_2, jsonl_2) = run();
    assert_eq!(applied_1, 6, "partition (2 severs + 2 heals) + spike + clear");
    assert_eq!(applied_1, applied_2);
    assert!(
        jsonl_1.contains("\"fault\""),
        "injections must appear in the flight-recorder stream"
    );
    assert_eq!(jsonl_1, jsonl_2, "chaos telemetry must replay byte-for-byte");
}
