//! Differential determinism tests for the timing-wheel engine.
//!
//! The heap-based [`ReferenceSim`] defines the `(time, seq)` execution
//! contract. These properties run randomized schedules — past events that
//! clamp to "now", zero-delay now-lane events, far-future events that land
//! in high wheel levels or the overflow heap, and re-entrant scheduling
//! from inside executing events — through both engines and require
//! identical traces: same `(fire time, label)` sequence, same per-phase
//! executed counts, same final clock and counters.

use proptest::prelude::*;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::reference::ReferenceSim;
use kmsg_netsim::testutil::{run_churn, ChurnEvent, ChurnPhase};

/// Child delays relative to the parent's fire time; heavily weighted toward
/// the zero-delay now lane (the simulation hot path).
fn child_delay() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(0u64),
        2 => 1u64..2_000,
        2 => 1u64..5_000_000,
        1 => (20u32..=40u32).prop_map(|s| 1u64 << s),
    ]
}

/// Absolute due times for top-level events: some in the (likely) past, some
/// near phase horizons, some far enough out to exercise the coarsest wheel
/// levels and the overflow heap.
fn root_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 0u64..1 << 22,
        3 => 0u64..30_000_000,
        1 => (30u32..=44u32).prop_map(|s| 1u64 << s),
    ]
}

fn churn_event() -> impl Strategy<Value = ChurnEvent> {
    let leaf = (child_delay(), any::<u32>()).prop_map(|(time, label)| ChurnEvent {
        time,
        label,
        children: Vec::new(),
    });
    leaf.prop_recursive(2, 8, 3, |inner| {
        (
            child_delay(),
            any::<u32>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(time, label, children)| ChurnEvent {
                time,
                label,
                children,
            })
    })
}

fn root_event() -> impl Strategy<Value = ChurnEvent> {
    (
        root_time(),
        any::<u32>(),
        prop::collection::vec(churn_event(), 0..3),
    )
        .prop_map(|(time, label, children)| ChurnEvent {
            time,
            label,
            children,
        })
}

fn phases() -> impl Strategy<Value = Vec<ChurnPhase>> {
    prop::collection::vec(
        (1u64..10_000_000, prop::collection::vec(root_event(), 0..12)),
        1..5,
    )
    .prop_map(|raw| {
        let mut horizon = 0u64;
        let mut phases: Vec<ChurnPhase> = raw
            .into_iter()
            .map(|(step, ops)| {
                horizon += step;
                ChurnPhase { horizon, ops }
            })
            .collect();
        // Final drain phase: far past every possible far-future event.
        phases.push(ChurnPhase {
            horizon: 1 << 46,
            ops: Vec::new(),
        });
        phases
    })
}

proptest! {
    /// The wheel engine and the heap oracle execute any schedule
    /// identically.
    #[test]
    fn wheel_engine_matches_heap_oracle(phases in phases()) {
        let wheel = run_churn(&Sim::new(1), &phases);
        let heap = run_churn(&ReferenceSim::new(), &phases);
        prop_assert_eq!(&wheel, &heap);
        // The drain phase must have flushed everything.
        prop_assert_eq!(wheel.events_pending, 0);
    }

    /// Two runs of the same schedule on the wheel engine are identical.
    #[test]
    fn wheel_engine_is_deterministic(phases in phases()) {
        let a = run_churn(&Sim::new(7), &phases);
        let b = run_churn(&Sim::new(7), &phases);
        prop_assert_eq!(a, b);
    }
}
