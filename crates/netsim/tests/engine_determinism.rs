//! Differential determinism tests for the timing-wheel engine.
//!
//! The heap-based [`ReferenceSim`] defines the `(time, seq)` execution
//! contract. These properties run randomized schedules — past events that
//! clamp to "now", zero-delay now-lane events, far-future events that land
//! in high wheel levels or the overflow heap, and re-entrant scheduling
//! from inside executing events — through both engines and require
//! identical traces: same `(fire time, label)` sequence, same per-phase
//! executed counts, same final clock and counters.

use proptest::prelude::*;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::reference::ReferenceSim;
use kmsg_netsim::testutil::{run_churn, ChurnEvent, ChurnPhase};

/// Child delays relative to the parent's fire time; heavily weighted toward
/// the zero-delay now lane (the simulation hot path).
fn child_delay() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(0u64),
        2 => 1u64..2_000,
        2 => 1u64..5_000_000,
        1 => (20u32..=40u32).prop_map(|s| 1u64 << s),
    ]
}

/// Absolute due times for top-level events: some in the (likely) past, some
/// near phase horizons, some far enough out to exercise the coarsest wheel
/// levels and the overflow heap.
fn root_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 0u64..1 << 22,
        3 => 0u64..30_000_000,
        1 => (30u32..=44u32).prop_map(|s| 1u64 << s),
    ]
}

fn churn_event() -> impl Strategy<Value = ChurnEvent> {
    let leaf = (child_delay(), any::<u32>()).prop_map(|(time, label)| ChurnEvent {
        time,
        label,
        children: Vec::new(),
    });
    leaf.prop_recursive(2, 8, 3, |inner| {
        (
            child_delay(),
            any::<u32>(),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(time, label, children)| ChurnEvent {
                time,
                label,
                children,
            })
    })
}

fn root_event() -> impl Strategy<Value = ChurnEvent> {
    (
        root_time(),
        any::<u32>(),
        prop::collection::vec(churn_event(), 0..3),
    )
        .prop_map(|(time, label, children)| ChurnEvent {
            time,
            label,
            children,
        })
}

fn phases() -> impl Strategy<Value = Vec<ChurnPhase>> {
    prop::collection::vec(
        (1u64..10_000_000, prop::collection::vec(root_event(), 0..12)),
        1..5,
    )
    .prop_map(|raw| {
        let mut horizon = 0u64;
        let mut phases: Vec<ChurnPhase> = raw
            .into_iter()
            .map(|(step, ops)| {
                horizon += step;
                ChurnPhase { horizon, ops }
            })
            .collect();
        // Final drain phase: far past every possible far-future event.
        phases.push(ChurnPhase {
            horizon: 1 << 46,
            ops: Vec::new(),
        });
        phases
    })
}

/// Two same-seed runs with enabled flight recorders emit byte-identical
/// JSONL: every churn event records a `mark` via [`ChurnEngine::record_mark`]
/// at its virtual fire time, so equality here covers event order,
/// timestamps and serialisation.
///
/// [`ChurnEngine::record_mark`]: kmsg_netsim::testutil::ChurnEngine::record_mark
#[test]
fn same_seed_runs_emit_byte_identical_jsonl() {
    let phases = vec![
        ChurnPhase {
            horizon: 5_000_000,
            ops: vec![
                ChurnEvent {
                    time: 1_000,
                    label: 1,
                    children: vec![
                        ChurnEvent {
                            time: 0,
                            label: 2,
                            children: Vec::new(),
                        },
                        ChurnEvent {
                            time: 2_500,
                            label: 3,
                            children: Vec::new(),
                        },
                    ],
                },
                ChurnEvent {
                    time: 4_000_000,
                    label: 4,
                    children: Vec::new(),
                },
            ],
        },
        ChurnPhase {
            horizon: 1 << 40,
            ops: vec![ChurnEvent {
                time: 1 << 35,
                label: 5,
                children: Vec::new(),
            }],
        },
    ];
    let run = || {
        let sim = Sim::new(7);
        sim.recorder().enable();
        let trace = run_churn(&sim, &phases);
        (trace, sim.recorder().to_jsonl())
    };
    let (trace_a, jsonl_a) = run();
    let (trace_b, jsonl_b) = run();
    assert_eq!(trace_a, trace_b);
    assert_eq!(
        jsonl_a, jsonl_b,
        "flight-recorder JSONL must be byte-identical for equal seeds"
    );
    assert_eq!(jsonl_a.lines().count(), 5, "one mark per churn event");
    assert!(jsonl_a.lines().all(|l| l.contains("\"kind\":\"mark\"")));
}

proptest! {
    /// The wheel engine and the heap oracle execute any schedule
    /// identically.
    #[test]
    fn wheel_engine_matches_heap_oracle(phases in phases()) {
        let wheel = run_churn(&Sim::new(1), &phases);
        let heap = run_churn(&ReferenceSim::new(), &phases);
        prop_assert_eq!(&wheel, &heap);
        // The drain phase must have flushed everything.
        prop_assert_eq!(wheel.events_pending, 0);
    }

    /// Two runs of the same schedule on the wheel engine are identical.
    #[test]
    fn wheel_engine_is_deterministic(phases in phases()) {
        let a = run_churn(&Sim::new(7), &phases);
        let b = run_churn(&Sim::new(7), &phases);
        prop_assert_eq!(a, b);
    }
}
