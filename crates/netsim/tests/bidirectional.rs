//! Full-duplex tests: both ends of one connection send large streams
//! simultaneously — the middleware keys one channel per (peer, protocol)
//! and uses it in both directions, so this path must be solid.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{pattern_byte, pattern_bytes};
use kmsg_netsim::udt::{UdtConfig, UdtConn, UdtListener};

/// Sends a pattern stream while recording the incoming one.
struct Duplex {
    total: usize,
    sent: Mutex<usize>,
    received: Mutex<Vec<u8>>,
}

impl Duplex {
    fn new(total: usize) -> Arc<Self> {
        Arc::new(Duplex {
            total,
            sent: Mutex::new(0),
            received: Mutex::new(Vec::new()),
        })
    }

    fn pump(&self, conn: &Connection) {
        loop {
            let offset = *self.sent.lock();
            if offset >= self.total {
                return;
            }
            let want = (self.total - offset).min(64 * 1024);
            let accepted = conn.send(pattern_bytes(offset, want));
            *self.sent.lock() += accepted;
            if accepted < want {
                return;
            }
        }
    }

    fn verify(&self) -> bool {
        let recv = self.received.lock();
        recv.len() == self.total
            && recv.iter().enumerate().all(|(i, &b)| b == pattern_byte(i))
    }
}

impl StreamEvents for Duplex {
    fn on_connected(&self, conn: &Connection) {
        self.pump(conn);
    }

    fn on_writable(&self, conn: &Connection) {
        self.pump(conn);
    }

    fn on_data(&self, _conn: &Connection, data: Bytes) {
        self.received.lock().extend_from_slice(&data);
    }
}

struct AcceptDuplex(Arc<Duplex>);
impl StreamAccept for AcceptDuplex {
    fn on_accept(&self, conn: &Connection) -> Arc<dyn StreamEvents> {
        // The passive side starts pumping as soon as the connection exists.
        self.0.pump(conn);
        self.0.clone()
    }
}

fn setup(loss: f64) -> (Sim, Network, kmsg_netsim::packet::NodeId, kmsg_netsim::packet::NodeId) {
    let sim = Sim::new(31);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let link = LinkConfig::new(20e6, Duration::from_millis(15)).random_loss(loss);
    net.connect_duplex(a, b, link);
    (sim, net, a, b)
}

#[test]
fn tcp_full_duplex_with_loss() {
    let total = 400_000;
    let (sim, net, a, b) = setup(0.005);
    let server = Duplex::new(total);
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptDuplex(server.clone())),
    )
    .expect("bind");
    let client = Duplex::new(total);
    let _conn = TcpConn::connect(
        &net,
        a,
        Endpoint::new(b, 80),
        TcpConfig::default(),
        client.clone(),
    )
    .expect("connect");
    sim.run_for(Duration::from_secs(120));
    assert!(client.verify(), "client must receive the full server stream");
    assert!(server.verify(), "server must receive the full client stream");
}

#[test]
fn udt_full_duplex_with_loss() {
    let total = 400_000;
    let (sim, net, a, b) = setup(0.005);
    let server = Duplex::new(total);
    let _l = UdtListener::bind(
        &net,
        b,
        90,
        UdtConfig::default(),
        Arc::new(AcceptDuplex(server.clone())),
    )
    .expect("bind");
    let client = Duplex::new(total);
    let _conn = UdtConn::connect(
        &net,
        a,
        Endpoint::new(b, 90),
        UdtConfig::default(),
        client.clone(),
    )
    .expect("connect");
    sim.run_for(Duration::from_secs(120));
    assert!(client.verify(), "client must receive the full server stream");
    assert!(server.verify(), "server must receive the full client stream");
}

#[test]
fn zero_length_send_is_harmless() {
    let (sim, net, a, b) = setup(0.0);
    let server = Duplex::new(0);
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptDuplex(server.clone())),
    )
    .expect("bind");
    let client = Duplex::new(0);
    let conn = TcpConn::connect(
        &net,
        a,
        Endpoint::new(b, 80),
        TcpConfig::default(),
        client,
    )
    .expect("connect");
    sim.run_for(Duration::from_millis(200));
    assert_eq!(conn.send(Bytes::new()), 0);
    sim.run_for(Duration::from_secs(1));
    assert!(server.verify());
}

#[test]
fn send_after_close_is_rejected() {
    let (sim, net, a, b) = setup(0.0);
    let server = Duplex::new(0);
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptDuplex(server)),
    )
    .expect("bind");
    let client = Duplex::new(0);
    let conn = TcpConn::connect(
        &net,
        a,
        Endpoint::new(b, 80),
        TcpConfig::default(),
        client,
    )
    .expect("connect");
    sim.run_for(Duration::from_millis(200));
    conn.close();
    assert_eq!(
        conn.send(Bytes::from_static(b"too late")),
        0,
        "writes after close must be refused"
    );
}

/// Two TCP flows over one bottleneck share its bandwidth roughly fairly
/// (AIMD convergence), and together saturate the link.
#[test]
fn two_tcp_flows_share_the_bottleneck() {
    use kmsg_netsim::testutil::{PatternSender, Recorder};

    let sim = Sim::new(77);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    // Modest queue so AIMD actually cycles.
    let link = LinkConfig::new(10e6, Duration::from_millis(10)).queue_capacity(128 * 1024);
    net.connect_duplex(a, b, link);

    struct AcceptRec(Arc<Recorder>);
    impl StreamAccept for AcceptRec {
        fn on_accept(&self, _c: &Connection) -> Arc<dyn StreamEvents> {
            self.0.clone()
        }
    }

    let r1 = Arc::new(Recorder::with_sim(&sim));
    let r2 = Arc::new(Recorder::with_sim(&sim));
    let _l1 = TcpListener::bind(&net, b, 81, TcpConfig::default(), Arc::new(AcceptRec(r1.clone())))
        .expect("bind");
    let _l2 = TcpListener::bind(&net, b, 82, TcpConfig::default(), Arc::new(AcceptRec(r2.clone())))
        .expect("bind");
    // More than either flow can finish within the measurement window.
    let big = 100_000_000;
    let _c1 = TcpConn::connect(
        &net,
        a,
        Endpoint::new(b, 81),
        TcpConfig::default(),
        PatternSender::new(&sim, big),
    )
    .expect("conn");
    let _c2 = TcpConn::connect(
        &net,
        a,
        Endpoint::new(b, 82),
        TcpConfig::default(),
        PatternSender::new(&sim, big),
    )
    .expect("conn");
    let window_secs = if cfg!(debug_assertions) { 10.0 } else { 30.0 };
    sim.run_for(Duration::from_secs_f64(window_secs));
    let b1 = r1.data_len() as f64;
    let b2 = r2.data_len() as f64;
    let total_rate = (b1 + b2) / window_secs;
    // Drop-tail queues synchronise AIMD cycles (both flows halve together),
    // so aggregate utilisation sits below 100% — classic TCP behaviour with
    // shallow buffers. It must still clear well over half the link.
    assert!(
        total_rate > 5.5e6,
        "two flows must use most of the 10 MB/s link, got {total_rate:.0}"
    );
    let share = b1 / (b1 + b2);
    assert!(
        (0.25..0.75).contains(&share),
        "long-run AIMD shares should be roughly fair, got {share:.2}"
    );
}
