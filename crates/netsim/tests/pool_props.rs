//! Property suites for the in-flight [`PacketPool`]: generation safety
//! (stale handles never alias, double frees are rejected) under random
//! alloc/free interleavings, ABA resistance across slot recycling, and —
//! the fault-path leak property — pool occupancy returning to zero after
//! mid-transfer `sever()`/partition episodes heal and the world drains.
//! Sampled cases run on the crate's own deterministic [`PropRunner`].

use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::faults::{FaultController, FaultPlan};
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::{Endpoint, NodeId, Packet, PacketBody, WireProtocol};
use kmsg_netsim::pool::{PacketHandle, PacketPool};
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{PatternSender, PropRunner, Recorder};
use kmsg_netsim::time::SimTime;
use kmsg_netsim::udt::{UdtConfig, UdtConn, UdtListener};

fn tagged_packet(tag: u16) -> Packet {
    Packet::new(
        Endpoint::new(NodeId::from_index(0), tag),
        Endpoint::new(NodeId::from_index(1), 80),
        WireProtocol::Udp,
        100,
        PacketBody::Udp(bytes::Bytes::new()),
    )
}

/// Random alloc/free interleavings against a shadow model: live handles
/// resolve to their own packet, freed handles never resolve (no aliasing
/// of the recycled slot — the ABA hazard), double frees are rejected, and
/// the live count tracks the model exactly.
#[test]
fn pool_generation_safety_under_random_interleaving() {
    PropRunner::new("pool-generation-safety").cases(32).run(
        |rng| {
            let ops = rng.gen_range(20usize..200);
            (0..ops)
                .map(|_| (rng.gen_range(0u8..10), rng.gen::<u32>()))
                .collect::<Vec<_>>()
        },
        |ops| {
            let mut pool = PacketPool::new();
            let mut live: Vec<(PacketHandle, u16)> = Vec::new();
            let mut stale: Vec<PacketHandle> = Vec::new();
            let mut next_tag = 0u16;
            for &(op, pick) in ops {
                match op {
                    // Alloc (weighted: 4 in 10).
                    0..=3 => {
                        next_tag = next_tag.wrapping_add(1);
                        let h = pool.alloc(tagged_packet(next_tag));
                        live.push((h, next_tag));
                    }
                    // Free a live handle.
                    4..=6 if !live.is_empty() => {
                        let i = pick as usize % live.len();
                        let (h, tag) = live.swap_remove(i);
                        let pkt = pool.free(h).expect("live handle must free");
                        assert_eq!(pkt.src.port, tag, "freed slot returns its own packet");
                        stale.push(h);
                    }
                    // Double free / stale free must be rejected.
                    7..=8 if !stale.is_empty() => {
                        let h = stale[pick as usize % stale.len()];
                        assert!(pool.free(h).is_none(), "stale free must be rejected");
                        assert!(!pool.contains(h));
                    }
                    // Stale read must miss, never alias a recycled slot.
                    _ if !stale.is_empty() => {
                        let h = stale[pick as usize % stale.len()];
                        assert!(pool.get(h).is_none(), "stale handle must not resolve");
                    }
                    _ => {}
                }
                assert_eq!(pool.live(), live.len(), "live count tracks the model");
                for &(h, tag) in &live {
                    assert_eq!(pool.get(h).expect("live resolves").src.port, tag);
                }
            }
        },
    );
}

/// Heavy recycle churn: every handle from a previous occupancy of a slot
/// stays dead forever, no matter how many times the slot is reused.
#[test]
fn pool_recycling_never_resurrects_old_handles() {
    PropRunner::new("pool-recycle-aba").cases(16).run(
        |rng| (rng.gen_range(1usize..8), rng.gen_range(5usize..40)),
        |&(width, rounds)| {
            let mut pool = PacketPool::new();
            let mut graveyard: Vec<PacketHandle> = Vec::new();
            for round in 0..rounds {
                let tag = u16::try_from(round % usize::from(u16::MAX)).expect("fits");
                let batch: Vec<PacketHandle> =
                    (0..width).map(|_| pool.alloc(tagged_packet(tag))).collect();
                for g in &graveyard {
                    assert!(pool.get(*g).is_none(), "old generation must stay dead");
                }
                for h in batch {
                    assert_eq!(pool.free(h).expect("free live").src.port, tag);
                    graveyard.push(h);
                }
            }
            assert_eq!(pool.live(), 0);
            assert_eq!(pool.total_allocated(), (width * rounds) as u64);
            assert!(
                pool.high_water() <= width,
                "recycling must cap occupancy at the batch width"
            );
        },
    );
}

struct AcceptRecorder(Arc<Recorder>);
impl StreamAccept for AcceptRecorder {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

#[derive(Debug, Clone)]
struct FaultParams {
    seed: u64,
    total: usize,
    delay_ms: u64,
    cut_from_ms: u64,
    cut_len_ms: u64,
    udt: bool,
}

/// Mid-transfer partition (both directions severed, then healed): once
/// every connection winds down the packet pool must hold zero live slots
/// — severed in-flight packets, fault-path drops and ordinary deliveries
/// all returned theirs. TCP transfers must additionally complete after
/// the heal (a UDT flow may legally give up during a long blackout).
#[test]
fn pool_drains_to_zero_after_partition() {
    let cases = if cfg!(debug_assertions) { 6 } else { 16 };
    PropRunner::new("pool-partition-leak").cases(cases).run(
        |rng| FaultParams {
            seed: rng.gen_range(0u64..1000),
            total: rng.gen_range(30_000usize..200_000),
            delay_ms: rng.gen_range(1u64..20),
            cut_from_ms: rng.gen_range(20u64..200),
            cut_len_ms: rng.gen_range(50u64..500),
            udt: rng.gen_bool(0.5),
        },
        |p| {
            let sim = Sim::new(p.seed);
            let net = Network::new(&sim);
            let a = net.add_node("a");
            let b = net.add_node("b");
            // ~1 MB/s so the 30-200 KB transfer straddles the cut window.
            net.connect_duplex(
                a,
                b,
                LinkConfig::new(1e6, Duration::from_millis(p.delay_ms)),
            );
            let plan = FaultPlan::new().partition_between(
                SimTime::from_millis(p.cut_from_ms),
                SimTime::from_millis(p.cut_from_ms + p.cut_len_ms),
                &[a],
                &[b],
            );
            FaultController::install(&net, plan);
            let server = Arc::new(Recorder::default());
            let pump = PatternSender::closing(&sim, p.total);
            // Listeners/connections only need to stay alive for the run.
            let mut udt = None;
            let mut tcp = None;
            if p.udt {
                let l = UdtListener::bind(
                    &net,
                    b,
                    90,
                    UdtConfig::default(),
                    Arc::new(AcceptRecorder(server.clone())),
                )
                .expect("bind");
                let c =
                    UdtConn::connect(&net, a, Endpoint::new(b, 90), UdtConfig::default(), pump)
                        .expect("conn");
                udt = Some((l, c));
            } else {
                let l = TcpListener::bind(
                    &net,
                    b,
                    80,
                    TcpConfig::default(),
                    Arc::new(AcceptRecorder(server.clone())),
                )
                .expect("bind");
                let c = TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump)
                    .expect("conn");
                tcp = Some((l, c));
            }
            sim.run_for(Duration::from_secs(300));
            if !p.udt {
                assert_eq!(
                    server.data_len(),
                    p.total,
                    "TCP transfer must complete after the heal: {p:?}"
                );
            }
            let (allocated, high_water) = net.packet_pool_stats();
            assert!(allocated > 0, "the transfer must have pooled packets");
            assert!(high_water > 0);
            // Release the app handles and drain every remaining event
            // (flow teardown, stale timers): with all flows dead nothing
            // re-arms, so the run terminates — and a drained world must
            // have returned every pool slot.
            drop(udt);
            drop(tcp);
            sim.run_to_completion();
            assert_eq!(
                net.packets_in_flight(),
                0,
                "drained world must return every pool slot: {p:?}"
            );
        },
    );
}

/// A permanent sever with no heal: whatever the stacks keep retrying, a
/// long-settled world must not hold pool slots between events (packets
/// transmitted into a severed link die at their arrival check and return
/// their slot there).
#[test]
fn pool_holds_nothing_after_unhealed_sever() {
    let sim = Sim::new(77);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let (ab, ba) = net.connect_duplex(a, b, LinkConfig::new(10e6, Duration::from_millis(5)));
    let server = Arc::new(Recorder::default());
    let _l = TcpListener::bind(
        &net,
        b,
        80,
        TcpConfig::default(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let total = 5_000_000;
    let pump = PatternSender::new(&sim, total);
    let conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), TcpConfig::default(), pump)
        .expect("conn");
    // Let the transfer get going, then cut both directions forever.
    let cut_net = net.clone();
    sim.schedule_in(Duration::from_millis(100), move |_| {
        cut_net.link(ab).sever();
        cut_net.link(ba).sever();
    });
    sim.run_for(Duration::from_secs(120));
    assert!(
        server.data_len() < total,
        "the unhealed cut must stop the transfer"
    );
    let (allocated, _) = net.packet_pool_stats();
    assert!(allocated > 0, "the transfer must have pooled packets");
    // Kill the retrying client flow, then drain every remaining event;
    // nothing re-arms on a dead flow, so the run terminates and every
    // slot — including those of packets the sever killed mid-flight —
    // must be back in the pool.
    drop(conn);
    sim.run_to_completion();
    assert_eq!(
        net.packets_in_flight(),
        0,
        "severed world must not retain pool slots"
    );
}
