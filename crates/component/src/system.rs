//! The component system: creation, wiring, lifecycle management.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::time::SimTime;

use crate::component::{
    AbstractComponent, Component, ComponentCore, ComponentDefinition, ComponentId, ControlEvent,
    ProvideRef, RequireRef,
};
use crate::port::{ChannelToProvider, ChannelToRequirer, Port, Selector, SelfPort, SelfRef};
use crate::scheduler::{Scheduler, SimulationScheduler, ThreadPoolScheduler};
use crate::timer::{Clock, SimTimer, TimerSource, WallTimer};

pub(crate) struct SystemInner {
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) timer: Box<dyn TimerSource>,
    pub(crate) clock: Box<dyn Clock>,
    pub(crate) max_events_per_scheduling: usize,
    pub(crate) components: Mutex<Vec<Arc<dyn AbstractComponent>>>,
    next_component: AtomicU64,
    next_timeout: AtomicU64,
}

impl SystemInner {
    pub(crate) fn fresh_timeout_id(&self) -> crate::timer::TimeoutId {
        crate::timer::TimeoutId(self.next_timeout.fetch_add(1, Ordering::Relaxed))
    }
}

/// Configuration for a [`ComponentSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Maximum events a component handles per scheduling before yielding —
    /// the Kompics throughput/fairness trade-off knob (§II-A of the paper).
    pub max_events_per_scheduling: usize,
    /// Worker threads (threaded mode only).
    pub threads: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            max_events_per_scheduling: 50,
            threads: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
        }
    }
}

/// A running component system.
///
/// See the [crate documentation](crate) for a complete ping-pong example.
#[derive(Clone)]
pub struct ComponentSystem {
    inner: Arc<SystemInner>,
}

impl std::fmt::Debug for ComponentSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentSystem")
            .field("components", &self.inner.components.lock().len())
            .field("max_events", &self.inner.max_events_per_scheduling)
            .finish()
    }
}

/// A typed handle to a created component.
pub struct ComponentRef<C: ComponentDefinition> {
    pub(crate) component: Arc<Component<C>>,
}

impl<C: ComponentDefinition> Clone for ComponentRef<C> {
    fn clone(&self) -> Self {
        ComponentRef {
            component: self.component.clone(),
        }
    }
}

impl<C: ComponentDefinition> std::fmt::Debug for ComponentRef<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentRef")
            .field("id", &self.component.core.id)
            .finish()
    }
}

impl ComponentSystem {
    /// Creates a deterministic system driven by a simulation's virtual time.
    #[must_use]
    pub fn simulation(sim: &Sim, config: SystemConfig) -> Self {
        let timer = SimTimer::new(sim);
        ComponentSystem {
            inner: Arc::new(SystemInner {
                scheduler: Box::new(SimulationScheduler::new(sim)),
                timer: Box::new(timer.clone()),
                clock: Box::new(timer),
                max_events_per_scheduling: config.max_events_per_scheduling,
                components: Mutex::new(Vec::new()),
                next_component: AtomicU64::new(0),
                next_timeout: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a multi-threaded system with wall-clock timers.
    #[must_use]
    pub fn threaded(config: SystemConfig) -> Self {
        let timer = WallTimer::new();
        let clock = WallTimer::new();
        ComponentSystem {
            inner: Arc::new(SystemInner {
                scheduler: Box::new(ThreadPoolScheduler::new(config.threads)),
                timer: Box::new(timer),
                clock: Box::new(clock),
                max_events_per_scheduling: config.max_events_per_scheduling,
                components: Mutex::new(Vec::new()),
                next_component: AtomicU64::new(0),
                next_timeout: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a component from its definition. The component starts
    /// passive; call [`ComponentSystem::start`].
    pub fn create<C, F>(&self, f: F) -> ComponentRef<C>
    where
        C: ComponentDefinition,
        F: FnOnce() -> C,
    {
        let id = ComponentId(self.inner.next_component.fetch_add(1, Ordering::Relaxed));
        let core = ComponentCore::new(id, Arc::downgrade(&self.inner));
        let component = Arc::new(Component {
            core: core.clone(),
            definition: Mutex::new(f()),
        });
        let abstract_ref: Arc<dyn AbstractComponent> = component.clone();
        core.runner
            .set(Arc::downgrade(&abstract_ref))
            .unwrap_or_else(|_| unreachable!("runner set twice"));
        self.inner.components.lock().push(abstract_ref);
        ComponentRef { component }
    }

    /// Connects `provider`'s provided port `P` to `requirer`'s required
    /// port `P` with an unfiltered channel.
    pub fn connect<P, A, B>(&self, provider: &ComponentRef<A>, requirer: &ComponentRef<B>)
    where
        P: Port,
        A: ProvideRef<P>,
        B: RequireRef<P>,
    {
        self.connect_filtered::<P, A, B>(provider, requirer, None, None);
    }

    /// Connects with optional channel selectors: `request_filter` gates
    /// events travelling to the provider, `indication_filter` gates events
    /// travelling to the requirer (Kompics `ChannelSelector`s; used for
    /// virtual-node routing).
    pub fn connect_filtered<P, A, B>(
        &self,
        provider: &ComponentRef<A>,
        requirer: &ComponentRef<B>,
        request_filter: Option<Selector<P::Request>>,
        indication_filter: Option<Selector<P::Indication>>,
    ) where
        P: Port,
        A: ProvideRef<P>,
        B: RequireRef<P>,
    {
        let provider_core = provider.component.core.clone();
        let requirer_core = requirer.component.core.clone();
        let prov_q = {
            let mut def = provider.component.definition.lock();
            def.provided_port().inbound.clone()
        };
        let req_q = {
            let mut def = requirer.component.definition.lock();
            def.required_port().inbound.clone()
        };
        provider
            .component
            .definition
            .lock()
            .provided_port()
            .outbound
            .push(ChannelToRequirer {
                queue: req_q,
                cell: requirer_core,
                filter: indication_filter,
            });
        requirer
            .component
            .definition
            .lock()
            .required_port()
            .outbound
            .push(ChannelToProvider {
                queue: prov_q,
                cell: provider_core,
                filter: request_filter,
            });
    }

    /// Starts a component (delivers [`ControlEvent::Start`]).
    pub fn start<C: ComponentDefinition>(&self, comp: &ComponentRef<C>) {
        comp.component.core.push_control(ControlEvent::Start);
    }

    /// Stops a component (delivers [`ControlEvent::Stop`]).
    pub fn stop<C: ComponentDefinition>(&self, comp: &ComponentRef<C>) {
        comp.component.core.push_control(ControlEvent::Stop);
    }

    /// Destroys a component (delivers [`ControlEvent::Kill`]).
    pub fn kill<C: ComponentDefinition>(&self, comp: &ComponentRef<C>) {
        comp.component.core.push_control(ControlEvent::Kill);
    }

    /// The system clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.inner.clock.now()
    }

    /// Number of components created in this system.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.inner.components.lock().len()
    }

    /// Shuts down the scheduler (threaded mode: joins workers).
    pub fn shutdown(&self) {
        self.inner.scheduler.shutdown();
    }
}

impl<C: ComponentDefinition> ComponentRef<C> {
    /// The component's id.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.component.core.id
    }

    /// Runs `f` with exclusive access to the definition (setup or
    /// inspection). Blocks if the component is currently executing.
    pub fn on_definition<R>(&self, f: impl FnOnce(&mut C) -> R) -> R {
        let mut def = self.component.definition.lock();
        f(&mut def)
    }

    /// Binds a [`SelfPort`] field to this component and returns a
    /// cloneable injector handle for use outside the component system.
    pub fn self_ref<Ev: Send + 'static>(
        &self,
        f: impl FnOnce(&mut C) -> &mut SelfPort<Ev>,
    ) -> SelfRef<Ev> {
        let core = self.component.core.clone();
        let mut def = self.component.definition.lock();
        let port = f(&mut def);
        let _ = port.cell.set(core.clone());
        SelfRef {
            queue: port.queue.clone(),
            cell: core,
        }
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn lifecycle_state(&self) -> crate::component::LifecycleState {
        self.component.core.lifecycle_state()
    }
}

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    struct Nop;
    impl crate::component::ComponentDefinition for Nop {
        fn execute(&mut self, _: &mut crate::component::ComponentContext, _: usize) -> usize {
            0
        }
    }

    #[test]
    fn public_types_are_send_sync() {
        assert_send_sync::<ComponentSystem>();
        assert_send_sync::<ComponentRef<Nop>>();
        assert_send_sync::<crate::component::ComponentCore>();
        assert_send_sync::<crate::port::SelfRef<u32>>();
    }
}
