//! Component schedulers: where and when a component with pending work runs.
//!
//! * [`SimulationScheduler`] executes components as events on a
//!   [`kmsg_netsim::engine::Sim`] virtual-time loop — fully
//!   deterministic, used by all experiments.
//! * [`ThreadPoolScheduler`] runs components on a pool of worker threads —
//!   the "production" mode exploiting the parallelism of the component
//!   graph.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use kmsg_netsim::engine::Sim;

use crate::component::ComponentCore;

/// Dispatches components that have pending work.
pub trait Scheduler: Send + Sync {
    /// Enqueues a component for execution. Called at most once per
    /// component until its `run` completes (the core's `scheduled` flag
    /// guards re-entry).
    fn schedule(&self, core: Arc<ComponentCore>);

    /// Shuts the scheduler down, releasing worker threads if any.
    fn shutdown(&self) {}
}

/// Executes components as simulation events (deterministic virtual time).
#[derive(Debug, Clone)]
pub struct SimulationScheduler {
    sim: Sim,
}

impl SimulationScheduler {
    /// Creates a scheduler driving components on `sim`'s event loop.
    #[must_use]
    pub fn new(sim: &Sim) -> Self {
        SimulationScheduler { sim: sim.clone() }
    }
}

impl Scheduler for SimulationScheduler {
    fn schedule(&self, core: Arc<ComponentCore>) {
        // Scheduling at "now" preserves FIFO order among ready components
        // (ties broken by insertion order in the event queue).
        self.sim.schedule_in(std::time::Duration::ZERO, move |_| {
            core.run();
        });
    }
}

/// Executes components on a fixed pool of worker threads.
pub struct ThreadPoolScheduler {
    tx: Sender<Arc<ComponentCore>>,
    workers: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    down: Arc<AtomicBool>,
}

impl std::fmt::Debug for ThreadPoolScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPoolScheduler")
            .field("workers", &self.workers.lock().len())
            .finish()
    }
}

impl ThreadPoolScheduler {
    /// Spawns `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx): (Sender<Arc<ComponentCore>>, Receiver<Arc<ComponentCore>>) = unbounded();
        let down = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            let down = down.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kmsg-worker-{i}"))
                    .spawn(move || {
                        while let Ok(core) = rx.recv() {
                            if down.load(Ordering::Acquire) {
                                break;
                            }
                            core.run();
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        ThreadPoolScheduler {
            tx,
            workers: parking_lot::Mutex::new(workers),
            down,
        }
    }
}

impl Scheduler for ThreadPoolScheduler {
    fn schedule(&self, core: Arc<ComponentCore>) {
        // Ignore failures during shutdown.
        let _ = self.tx.send(core);
    }

    fn shutdown(&self) {
        self.down.store(true, Ordering::Release);
        // Wake workers with no-op sends so they observe the flag; the
        // channel disconnects when the scheduler drops.
        let mut workers = self.workers.lock();
        for _ in workers.iter() {
            let dummy = ComponentCore::new(
                crate::component::ComponentId(u64::MAX),
                std::sync::Weak::new(),
            );
            let _ = self.tx.send(dummy);
        }
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPoolScheduler {
    fn drop(&mut self) {
        if !self.down.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_scheduler_runs_core() {
        let sim = Sim::new(1);
        let sched = SimulationScheduler::new(&sim);
        let core = ComponentCore::new(crate::component::ComponentId(7), std::sync::Weak::new());
        sched.schedule(core);
        // Core has no runner: run() is a no-op, but the event must execute.
        let executed = sim.run_for(std::time::Duration::from_millis(1));
        assert_eq!(executed, 1);
    }

    #[test]
    fn thread_pool_starts_and_shuts_down() {
        let sched = ThreadPoolScheduler::new(2);
        let core = ComponentCore::new(crate::component::ComponentId(8), std::sync::Weak::new());
        sched.schedule(core);
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.shutdown();
    }
}
