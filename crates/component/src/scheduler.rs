//! Component schedulers: where and when a component with pending work runs.
//!
//! * [`SimulationScheduler`] executes components as events on a
//!   [`kmsg_netsim::engine::Sim`] virtual-time loop — fully
//!   deterministic, used by all experiments.
//! * [`ThreadPoolScheduler`] runs components on a pool of worker threads —
//!   the "production" mode exploiting the parallelism of the component
//!   graph.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use kmsg_netsim::engine::Sim;
use kmsg_telemetry::EventKind;

use crate::component::ComponentCore;

/// Dispatches components that have pending work.
pub trait Scheduler: Send + Sync {
    /// Enqueues a component for execution. Called at most once per
    /// component until its `run` completes (the core's `scheduled` flag
    /// guards re-entry).
    fn schedule(&self, core: Arc<ComponentCore>);

    /// Shuts the scheduler down, releasing worker threads if any.
    fn shutdown(&self) {}
}

/// Telemetry hook a [`SimulationScheduler`] installs on every core it
/// schedules: the scheduler's shared queue-depth gauge plus the simulation
/// handle (clock + recorder) used to stamp events from `run`.
#[derive(Debug, Clone)]
pub(crate) struct SchedProbe {
    pub(crate) sim: Sim,
    pub(crate) depth: Arc<AtomicU64>,
}

/// Executes components as simulation events (deterministic virtual time).
#[derive(Debug, Clone)]
pub struct SimulationScheduler {
    sim: Sim,
    /// Component executions scheduled on the engine but not yet run — the
    /// component-layer queue depth reported to telemetry.
    depth: Arc<AtomicU64>,
}

impl SimulationScheduler {
    /// Creates a scheduler driving components on `sim`'s event loop.
    #[must_use]
    pub fn new(sim: &Sim) -> Self {
        SimulationScheduler {
            sim: sim.clone(),
            depth: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Scheduler for SimulationScheduler {
    fn schedule(&self, core: Arc<ComponentCore>) {
        // First schedule wires the core to this scheduler's telemetry; the
        // core uses it from `run` to report its execution.
        let probe = core.probe.get_or_init(|| SchedProbe {
            sim: self.sim.clone(),
            depth: self.depth.clone(),
        });
        let depth = probe.depth.fetch_add(1, Ordering::Relaxed) + 1;
        let rec = self.sim.recorder();
        if rec.is_enabled() {
            rec.record(
                self.sim.now().as_nanos(),
                EventKind::SchedulerQueue { depth },
            );
        }
        // Scheduling at "now" preserves FIFO order among ready components
        // (ties broken by insertion order in the engine's now lane). The
        // core itself is the event target, so this allocates nothing —
        // every component execution used to box a closure here.
        self.sim
            .schedule_target_in(std::time::Duration::ZERO, core, 0);
    }
}

/// What a pool worker receives: a component to run, or an orderly stop.
///
/// The explicit shutdown message replaces the old hack of sending dummy
/// `ComponentCore`s with a sentinel id: because the channel is FIFO and the
/// stop message is enqueued *behind* real work, workers finish everything
/// scheduled before `shutdown` was called, and no id can collide with a
/// user component.
enum WorkerMsg {
    Run(Arc<ComponentCore>),
    Shutdown,
}

/// Executes components on a fixed pool of worker threads.
pub struct ThreadPoolScheduler {
    tx: Sender<WorkerMsg>,
    workers: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    down: AtomicBool,
}

impl std::fmt::Debug for ThreadPoolScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPoolScheduler")
            .field("workers", &self.workers.lock().len())
            .finish()
    }
}

impl ThreadPoolScheduler {
    /// Spawns `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kmsg-worker-{i}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                WorkerMsg::Run(core) => {
                                    core.run();
                                }
                                WorkerMsg::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        ThreadPoolScheduler {
            tx,
            workers: parking_lot::Mutex::new(workers),
            down: AtomicBool::new(false),
        }
    }
}

impl Scheduler for ThreadPoolScheduler {
    fn schedule(&self, core: Arc<ComponentCore>) {
        // After shutdown this is a documented no-op (the workers are gone).
        if self.down.load(Ordering::Acquire) {
            return;
        }
        let _ = self.tx.send(WorkerMsg::Run(core));
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return; // idempotent
        }
        let mut workers = self.workers.lock();
        // One stop message per worker, queued behind all real work: each
        // worker drains work in FIFO order and exits on its stop message.
        for _ in workers.iter() {
            let _ = self.tx.send(WorkerMsg::Shutdown);
        }
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPoolScheduler {
    fn drop(&mut self) {
        if !self.down.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{
        AbstractComponent, Component, ComponentContext, ComponentDefinition, ComponentId,
        ControlEvent,
    };
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Weak;

    #[test]
    fn sim_scheduler_runs_core() {
        let sim = Sim::new(1);
        let sched = SimulationScheduler::new(&sim);
        let core = ComponentCore::new(crate::component::ComponentId(7), std::sync::Weak::new());
        sched.schedule(core);
        // Core has no runner: run() is a no-op, but the event must execute.
        let executed = sim.run_for(std::time::Duration::from_millis(1));
        assert_eq!(executed, 1);
    }

    #[test]
    fn sim_scheduler_reports_queue_and_exec_telemetry() {
        let sim = Sim::new(2);
        sim.recorder().enable();
        let sched = SimulationScheduler::new(&sim);
        let core = ComponentCore::new(ComponentId(11), Weak::new());
        sched.schedule(core);
        sim.run_for(std::time::Duration::from_millis(1));
        let events = sim.recorder().events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, vec!["scheduler_queue", "component_exec"]);
        match events[0].kind {
            EventKind::SchedulerQueue { depth } => assert_eq!(depth, 1),
            ref other => panic!("unexpected {other:?}"),
        }
        match events[1].kind {
            EventKind::ComponentExec { component, handled } => {
                assert_eq!(component, 11);
                assert_eq!(handled, 0, "core without a runner handles nothing");
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn thread_pool_starts_and_shuts_down() {
        let sched = ThreadPoolScheduler::new(2);
        let core = ComponentCore::new(crate::component::ComponentId(8), std::sync::Weak::new());
        sched.schedule(core);
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.shutdown();
        // Idempotent and safe after workers are gone.
        sched.shutdown();
        let core = ComponentCore::new(crate::component::ComponentId(9), std::sync::Weak::new());
        sched.schedule(core);
    }

    struct CountStarts(Arc<AtomicUsize>);
    impl ComponentDefinition for CountStarts {
        fn execute(&mut self, _: &mut ComponentContext, _: usize) -> usize {
            0
        }
        fn handle_control(&mut self, _: &mut ComponentContext, event: ControlEvent) {
            if event == ControlEvent::Start {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    #[test]
    fn shutdown_drains_already_scheduled_work() {
        // Regression test for the dummy-sentinel shutdown: work enqueued
        // before shutdown() must run, not be dropped on the floor.
        let sched = ThreadPoolScheduler::new(2);
        let started = Arc::new(AtomicUsize::new(0));
        let mut components = Vec::new();
        const N: usize = 64;
        for i in 0..N {
            let core = ComponentCore::new(ComponentId(i as u64), Weak::new());
            let component = Arc::new(Component {
                core: core.clone(),
                definition: Mutex::new(CountStarts(started.clone())),
            });
            let abstract_ref: Arc<dyn AbstractComponent> = component.clone();
            core.runner
                .set(Arc::downgrade(&abstract_ref))
                .unwrap_or_else(|_| unreachable!("runner set twice"));
            core.control_q.push(ControlEvent::Start);
            components.push(component);
            sched.schedule(core);
        }
        sched.shutdown();
        assert_eq!(started.load(Ordering::SeqCst), N);
    }
}
