//! Typed ports and channels.
//!
//! A [`Port`] declares a bidirectional "service": *requests* travel from the
//! component that **requires** the port to the component that **provides**
//! it, and *indications* travel the opposite way. Components own
//! [`ProvidedPort`] / [`RequiredPort`] instances as fields and are connected
//! with [`ComponentSystem::connect`](crate::system::ComponentSystem::connect).
//!
//! Channels follow Kompics semantics: FIFO per channel, exactly-once per
//! receiver, and *broadcast* — a triggered event is delivered on every
//! connected channel (subject to the channel's selector), and receivers
//! silently drop events they don't care about.

use std::sync::Arc;

use crossbeam::queue::SegQueue;

use crate::component::ComponentCore;

/// A port type: the "service specification" naming the event types that
/// travel in each direction.
///
/// # Examples
///
/// ```
/// use kmsg_component::port::Port;
///
/// #[derive(Debug, Clone)]
/// pub struct Ping(pub u64);
/// #[derive(Debug, Clone)]
/// pub struct Pong(pub u64);
///
/// /// Requests are `Ping`s (from the requirer), indications are `Pong`s.
/// pub struct PingPort;
/// impl Port for PingPort {
///     type Request = Ping;
///     type Indication = Pong;
/// }
/// ```
pub trait Port: 'static {
    /// Event type travelling from requirer to provider.
    type Request: Clone + Send + std::fmt::Debug + 'static;
    /// Event type travelling from provider to requirer.
    type Indication: Clone + Send + std::fmt::Debug + 'static;
}

/// An event type for port directions that carry no events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Never {}

/// Predicate deciding whether a channel carries a given event
/// (Kompics' `ChannelSelector`).
pub type Selector<Ev> = Arc<dyn Fn(&Ev) -> bool + Send + Sync>;

pub(crate) struct ChannelToRequirer<P: Port> {
    pub(crate) queue: Arc<SegQueue<P::Indication>>,
    pub(crate) cell: Arc<ComponentCore>,
    pub(crate) filter: Option<Selector<P::Indication>>,
}

pub(crate) struct ChannelToProvider<P: Port> {
    pub(crate) queue: Arc<SegQueue<P::Request>>,
    pub(crate) cell: Arc<ComponentCore>,
    pub(crate) filter: Option<Selector<P::Request>>,
}

/// The providing side of a port: receives requests, triggers indications.
///
/// Owned as a field by a component definition; see the
/// [crate documentation](crate) for a complete example.
pub struct ProvidedPort<P: Port> {
    pub(crate) inbound: Arc<SegQueue<P::Request>>,
    pub(crate) outbound: Vec<ChannelToRequirer<P>>,
}

impl<P: Port> Default for ProvidedPort<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Port> std::fmt::Debug for ProvidedPort<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvidedPort")
            .field("pending", &self.inbound.len())
            .field("channels", &self.outbound.len())
            .finish()
    }
}

impl<P: Port> ProvidedPort<P> {
    /// Creates an unconnected provided port.
    #[must_use]
    pub fn new() -> Self {
        ProvidedPort {
            inbound: Arc::new(SegQueue::new()),
            outbound: Vec::new(),
        }
    }

    /// Publishes an indication on every connected channel whose selector
    /// accepts it.
    pub fn trigger(&self, event: P::Indication) {
        fan_out(&self.outbound, event, |c| (&c.queue, &c.cell, &c.filter));
    }

    /// Takes the next queued request, if any.
    pub fn take(&mut self) -> Option<P::Request> {
        self.inbound.pop()
    }

    /// Number of requests currently queued.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inbound.len()
    }

    /// Number of connected channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.outbound.len()
    }
}

/// The requiring side of a port: receives indications, triggers requests.
pub struct RequiredPort<P: Port> {
    pub(crate) inbound: Arc<SegQueue<P::Indication>>,
    pub(crate) outbound: Vec<ChannelToProvider<P>>,
}

impl<P: Port> Default for RequiredPort<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Port> std::fmt::Debug for RequiredPort<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequiredPort")
            .field("pending", &self.inbound.len())
            .field("channels", &self.outbound.len())
            .finish()
    }
}

impl<P: Port> RequiredPort<P> {
    /// Creates an unconnected required port.
    #[must_use]
    pub fn new() -> Self {
        RequiredPort {
            inbound: Arc::new(SegQueue::new()),
            outbound: Vec::new(),
        }
    }

    /// Publishes a request on every connected channel whose selector
    /// accepts it.
    pub fn trigger(&self, event: P::Request) {
        fan_out(&self.outbound, event, |c| (&c.queue, &c.cell, &c.filter));
    }

    /// Takes the next queued indication, if any.
    pub fn take(&mut self) -> Option<P::Indication> {
        self.inbound.pop()
    }

    /// Number of indications currently queued.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inbound.len()
    }

    /// Number of connected channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.outbound.len()
    }
}

fn fan_out<C, Ev: Clone>(
    channels: &[C],
    event: Ev,
    parts: impl Fn(&C) -> (&Arc<SegQueue<Ev>>, &Arc<ComponentCore>, &Option<Selector<Ev>>),
) {
    // Deliver a clone on every accepting channel. The last accepting channel
    // could take the original, but uniform cloning keeps the code simple and
    // events are expected to be cheap to clone (Arc/Bytes payloads).
    for c in channels {
        let (queue, cell, filter) = parts(c);
        if filter.as_ref().is_none_or(|f| f(&event)) {
            queue.push(event.clone());
            cell.notify();
        }
    }
}

/// A queue feeding a component from *outside* the component system (e.g.
/// network callbacks). Drained inside the component's `execute` like a port.
pub struct SelfPort<Ev> {
    pub(crate) queue: Arc<SegQueue<Ev>>,
    pub(crate) cell: std::sync::OnceLock<Arc<ComponentCore>>,
}

impl<Ev> Default for SelfPort<Ev> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ev> std::fmt::Debug for SelfPort<Ev> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfPort")
            .field("pending", &self.queue.len())
            .finish()
    }
}

impl<Ev> SelfPort<Ev> {
    /// Creates an unbound self-port.
    #[must_use]
    pub fn new() -> Self {
        SelfPort {
            queue: Arc::new(SegQueue::new()),
            cell: std::sync::OnceLock::new(),
        }
    }

    /// Takes the next queued event, if any.
    pub fn take(&mut self) -> Option<Ev> {
        self.queue.pop()
    }

    /// Number of queued events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A cloneable, thread-safe handle that injects events into a component's
/// [`SelfPort`]. Obtained via
/// [`ComponentRef::self_ref`](crate::system::ComponentRef::self_ref).
pub struct SelfRef<Ev> {
    pub(crate) queue: Arc<SegQueue<Ev>>,
    pub(crate) cell: Arc<ComponentCore>,
}

impl<Ev> Clone for SelfRef<Ev> {
    fn clone(&self) -> Self {
        SelfRef {
            queue: self.queue.clone(),
            cell: self.cell.clone(),
        }
    }
}

impl<Ev> std::fmt::Debug for SelfRef<Ev> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfRef").finish_non_exhaustive()
    }
}

impl<Ev: Send + 'static> SelfRef<Ev> {
    /// Enqueues an event and wakes the owning component.
    pub fn push(&self, event: Ev) {
        self.queue.push(event);
        self.cell.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);
    #[derive(Debug, Clone, PartialEq)]
    struct Pong(u64);
    struct PingPort;
    impl Port for PingPort {
        type Request = Ping;
        type Indication = Pong;
    }

    #[test]
    fn unconnected_trigger_is_noop() {
        let port: ProvidedPort<PingPort> = ProvidedPort::new();
        port.trigger(Pong(1)); // no channels: silently dropped
        assert_eq!(port.channel_count(), 0);
    }

    #[test]
    fn take_from_empty_is_none() {
        let mut port: RequiredPort<PingPort> = RequiredPort::new();
        assert!(port.take().is_none());
        assert_eq!(port.pending(), 0);
    }

    #[test]
    fn self_port_fifo() {
        let mut sp: SelfPort<u32> = SelfPort::new();
        sp.queue.push(1);
        sp.queue.push(2);
        assert_eq!(sp.pending(), 2);
        assert_eq!(sp.take(), Some(1));
        assert_eq!(sp.take(), Some(2));
        assert_eq!(sp.take(), None);
    }

    #[test]
    fn debug_impls_nonempty() {
        let p: ProvidedPort<PingPort> = ProvidedPort::new();
        let r: RequiredPort<PingPort> = RequiredPort::new();
        let s: SelfPort<u32> = SelfPort::new();
        assert!(format!("{p:?}").contains("ProvidedPort"));
        assert!(format!("{r:?}").contains("RequiredPort"));
        assert!(format!("{s:?}").contains("SelfPort"));
    }
}
