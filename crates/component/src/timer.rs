//! Timer facilities: one-shot and periodic timeouts delivered to
//! components through
//! [`ComponentDefinition::on_timeout`](crate::component::ComponentDefinition::on_timeout).

use std::sync::{Arc, Weak};
use std::time::Duration;

use kmsg_netsim::engine::{EventTarget, Sim};
use kmsg_netsim::time::SimTime;

use crate::component::ComponentCore;

/// Identifies a scheduled timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeoutId(pub u64);

/// Source of timer expirations.
pub trait TimerSource: Send + Sync {
    /// Delivers `id` to `target` once, after `delay`.
    fn schedule_once(&self, delay: Duration, target: Arc<ComponentCore>, id: TimeoutId);

    /// Delivers `id` to `target` after `delay` and then every `period`,
    /// until cancelled through the component's context.
    fn schedule_periodic(
        &self,
        delay: Duration,
        period: Duration,
        target: Arc<ComponentCore>,
        id: TimeoutId,
    );
}

/// A clock readable by components.
pub trait Clock: Send + Sync {
    /// The current time (virtual or wall, depending on the system mode).
    fn now(&self) -> SimTime;
}

/// Virtual-time timers and clock driven by a [`Sim`].
#[derive(Debug, Clone)]
pub struct SimTimer {
    sim: Sim,
}

impl SimTimer {
    /// Creates a timer source on `sim`'s event loop.
    #[must_use]
    pub fn new(sim: &Sim) -> Self {
        SimTimer { sim: sim.clone() }
    }
}

impl TimerSource for SimTimer {
    fn schedule_once(&self, delay: Duration, target: Arc<ComponentCore>, id: TimeoutId) {
        // The per-core timeout sink is created once and reused for every
        // one-shot; the timeout id rides in the event token, so scheduling
        // a timer allocates nothing.
        let sink = target.timeout_sink();
        self.sim.schedule_target_in(delay, sink, id.0);
    }

    fn schedule_periodic(
        &self,
        delay: Duration,
        period: Duration,
        target: Arc<ComponentCore>,
        id: TimeoutId,
    ) {
        let sink = Arc::new(PeriodicSink {
            core: Arc::downgrade(&target),
            period,
            id,
        });
        self.sim.schedule_target_in(delay, sink, id.0);
    }
}

/// Per-core one-shot timeout receiver: fires `TimeoutId(token)` into the
/// component. One allocation per component, shared by all its one-shots.
pub(crate) struct TimeoutSink {
    pub(crate) core: Weak<ComponentCore>,
}

impl EventTarget for TimeoutSink {
    fn fire(self: Arc<Self>, _sim: &Sim, token: u64) {
        if let Some(core) = self.core.upgrade() {
            core.push_timeout(TimeoutId(token));
        }
    }
}

/// A periodic timeout chain: one allocation at set-up, then the sink
/// reschedules its own `Arc` every period until cancelled or the component
/// is destroyed.
struct PeriodicSink {
    core: Weak<ComponentCore>,
    period: Duration,
    id: TimeoutId,
}

impl EventTarget for PeriodicSink {
    fn fire(self: Arc<Self>, sim: &Sim, _token: u64) {
        let Some(core) = self.core.upgrade() else {
            return;
        };
        if core.is_timeout_cancelled(self.id) {
            // Consume the cancellation so the id can be reused safely.
            core.cancelled_timeouts.lock().remove(&self.id);
            return;
        }
        if core.lifecycle_state() == crate::component::LifecycleState::Destroyed {
            return;
        }
        core.push_timeout(self.id);
        let (period, token) = (self.period, self.id.0);
        sim.schedule_target_in(period, self, token);
    }
}

impl Clock for SimTimer {
    fn now(&self) -> SimTime {
        self.sim.now()
    }
}

/// Wall-clock timers and clock for threaded systems, backed by one timer
/// thread with a monotonic heap.
pub struct WallTimer {
    inner: Arc<WallTimerInner>,
}

impl std::fmt::Debug for WallTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WallTimer").finish_non_exhaustive()
    }
}

struct PendingTimer {
    at: std::time::Instant,
    seq: u64,
    target: Arc<ComponentCore>,
    id: TimeoutId,
    period: Option<Duration>,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct WallTimerInner {
    heap: parking_lot::Mutex<std::collections::BinaryHeap<PendingTimer>>,
    condvar: parking_lot::Condvar,
    guard: parking_lot::Mutex<bool>, // shutdown flag
    epoch: std::time::Instant,
    seq: std::sync::atomic::AtomicU64,
}

impl WallTimer {
    /// Creates the timer source and spawns its timer thread.
    #[must_use]
    pub fn new() -> Self {
        let inner = Arc::new(WallTimerInner {
            heap: parking_lot::Mutex::new(std::collections::BinaryHeap::new()),
            condvar: parking_lot::Condvar::new(),
            guard: parking_lot::Mutex::new(false),
            epoch: std::time::Instant::now(),
            seq: std::sync::atomic::AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("kmsg-timer".into())
            .spawn(move || loop {
                let Some(inner) = weak.upgrade() else {
                    return;
                };
                let mut down = inner.guard.lock();
                if *down {
                    return;
                }
                let now = std::time::Instant::now();
                let mut due = Vec::new();
                let wait = {
                    let mut heap = inner.heap.lock();
                    while let Some(head) = heap.peek() {
                        if head.at <= now {
                            due.push(heap.pop().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                    heap.peek().map(|h| h.at.saturating_duration_since(now))
                };
                for t in &due {
                    if t.target.is_timeout_cancelled(t.id) {
                        t.target.cancelled_timeouts.lock().remove(&t.id);
                        continue;
                    }
                    t.target.push_timeout(t.id);
                    if let Some(period) = t.period {
                        let seq =
                            inner.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        inner.heap.lock().push(PendingTimer {
                            at: now + period,
                            seq,
                            target: t.target.clone(),
                            id: t.id,
                            period: Some(period),
                        });
                    }
                }
                match wait {
                    Some(d) => {
                        let _ = inner
                            .condvar
                            .wait_for(&mut down, d.min(Duration::from_millis(100)));
                    }
                    None => {
                        let _ = inner
                            .condvar
                            .wait_for(&mut down, Duration::from_millis(100));
                    }
                }
            })
            .expect("spawn timer thread");
        WallTimer { inner }
    }

    fn push(&self, at: std::time::Instant, target: Arc<ComponentCore>, id: TimeoutId, period: Option<Duration>) {
        let seq = self
            .inner
            .seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.heap.lock().push(PendingTimer {
            at,
            seq,
            target,
            id,
            period,
        });
        self.inner.condvar.notify_all();
    }
}

impl Default for WallTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerSource for WallTimer {
    fn schedule_once(&self, delay: Duration, target: Arc<ComponentCore>, id: TimeoutId) {
        self.push(std::time::Instant::now() + delay, target, id, None);
    }

    fn schedule_periodic(
        &self,
        delay: Duration,
        period: Duration,
        target: Arc<ComponentCore>,
        id: TimeoutId,
    ) {
        self.push(std::time::Instant::now() + delay, target, id, Some(period));
    }
}

impl Clock for WallTimer {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(
            u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
        )
    }
}

impl Drop for WallTimer {
    fn drop(&mut self) {
        *self.inner.guard.lock() = true;
        self.inner.condvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentId;
    use std::sync::Weak;

    #[test]
    fn sim_timer_delivers_once() {
        let sim = Sim::new(1);
        let timer = SimTimer::new(&sim);
        let core = ComponentCore::new(ComponentId(1), Weak::new());
        timer.schedule_once(Duration::from_millis(5), core.clone(), TimeoutId(42));
        sim.run_for(Duration::from_millis(10));
        assert_eq!(core.timeout_q.pop(), Some(TimeoutId(42)));
        assert!(core.timeout_q.pop().is_none());
    }

    #[test]
    fn sim_timer_periodic_fires_until_cancelled() {
        let sim = Sim::new(1);
        let timer = SimTimer::new(&sim);
        let core = ComponentCore::new(ComponentId(1), Weak::new());
        timer.schedule_periodic(
            Duration::from_millis(1),
            Duration::from_millis(1),
            core.clone(),
            TimeoutId(7),
        );
        sim.run_for(Duration::from_millis(5));
        let mut fired = 0;
        while core.timeout_q.pop().is_some() {
            fired += 1;
        }
        assert!(fired >= 4, "expected several periodic firings, got {fired}");
        core.cancelled_timeouts.lock().insert(TimeoutId(7));
        sim.run_for(Duration::from_millis(5));
        // One extra firing may have been queued before cancellation took
        // effect, but the chain must stop.
        sim.run_for(Duration::from_millis(5));
        let residual = core.timeout_q.len();
        assert!(residual <= 1, "periodic chain must stop, residual {residual}");
    }

    #[test]
    fn sim_clock_reads_virtual_time() {
        let sim = Sim::new(1);
        let timer = SimTimer::new(&sim);
        sim.run_for(Duration::from_secs(3));
        assert_eq!(timer.now(), SimTime::from_secs(3));
    }

    #[test]
    fn wall_timer_delivers() {
        let timer = WallTimer::new();
        let core = ComponentCore::new(ComponentId(1), Weak::new());
        timer.schedule_once(Duration::from_millis(10), core.clone(), TimeoutId(9));
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(core.timeout_q.pop(), Some(TimeoutId(9)));
    }
}
