//! Component definitions, cores, lifecycle, and execution context.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

use kmsg_netsim::time::SimTime;

use crate::system::SystemInner;
use crate::timer::TimeoutId;

/// Lifecycle events delivered to every component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// The component was started and will now execute queued events.
    Start,
    /// The component was paused; queued events are retained.
    Stop,
    /// The component was destroyed; queued events are dropped.
    Kill,
}

/// Lifecycle state of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Created but not yet started; events queue up.
    Passive,
    /// Running: scheduled whenever it has queued events.
    Active,
    /// Destroyed: never scheduled again.
    Destroyed,
}

const STATE_PASSIVE: u8 = 0;
const STATE_ACTIVE: u8 = 1;
const STATE_DESTROYED: u8 = 2;

/// User-implemented component behaviour.
///
/// The definition owns the component's state and ports. `execute` drains the
/// ports (typically via [`execute_ports!`](crate::execute_ports)) and is
/// guaranteed to run on at most one thread at a time, so the definition
/// needs no internal synchronisation — the Kompics concurrency model.
pub trait ComponentDefinition: Send + 'static {
    /// Drains up to `max_events` events from this component's ports,
    /// returning how many were handled.
    fn execute(&mut self, ctx: &mut ComponentContext, max_events: usize) -> usize;

    /// Reacts to lifecycle transitions. Default: ignore.
    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        let _ = (ctx, event);
    }

    /// Reacts to a timer expiry scheduled through
    /// [`ComponentContext::schedule_once`] /
    /// [`ComponentContext::schedule_periodic`]. Default: ignore.
    fn on_timeout(&mut self, ctx: &mut ComponentContext, id: TimeoutId) {
        let _ = (ctx, id);
    }
}

/// Handles an event type delivered through a
/// [`SelfPort`](crate::port::SelfPort).
pub trait HandleSelf<Ev>: ComponentDefinition {
    /// Handles one self-event.
    fn handle_self(&mut self, ctx: &mut ComponentContext, event: Ev);
}

/// Handles requests on a provided port `P`.
pub trait Provide<P: crate::port::Port>: ComponentDefinition {
    /// Handles one request.
    fn handle(&mut self, ctx: &mut ComponentContext, event: P::Request);
}

/// Handles indications on a required port `P`.
pub trait Require<P: crate::port::Port>: ComponentDefinition {
    /// Handles one indication.
    fn handle(&mut self, ctx: &mut ComponentContext, event: P::Indication);
}

/// Exposes a component's provided port of type `P` for wiring.
pub trait ProvideRef<P: crate::port::Port>: ComponentDefinition {
    /// Mutable access to the provided port field.
    fn provided_port(&mut self) -> &mut crate::port::ProvidedPort<P>;
}

/// Exposes a component's required port of type `P` for wiring.
pub trait RequireRef<P: crate::port::Port>: ComponentDefinition {
    /// Mutable access to the required port field.
    fn required_port(&mut self) -> &mut crate::port::RequiredPort<P>;
}

/// Unique component id within a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u64);

/// The scheduling core shared by all handles to one component.
pub struct ComponentCore {
    pub(crate) id: ComponentId,
    pub(crate) system: Weak<SystemInner>,
    pub(crate) state: AtomicU8,
    pub(crate) dirty: AtomicBool,
    pub(crate) scheduled: AtomicBool,
    pub(crate) control_q: SegQueue<ControlEvent>,
    pub(crate) timeout_q: SegQueue<TimeoutId>,
    pub(crate) cancelled_timeouts: Mutex<HashSet<TimeoutId>>,
    pub(crate) runner: OnceLock<Weak<dyn AbstractComponent>>,
    /// Lazily-created shared receiver for one-shot timeouts, so scheduling
    /// a timer never allocates per event.
    timeout_sink: OnceLock<Arc<crate::timer::TimeoutSink>>,
    /// Telemetry probe installed by the first
    /// [`SimulationScheduler`](crate::scheduler::SimulationScheduler) that
    /// schedules this core; absent under the thread-pool scheduler.
    pub(crate) probe: OnceLock<crate::scheduler::SchedProbe>,
}

impl std::fmt::Debug for ComponentCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentCore")
            .field("id", &self.id)
            .field("state", &self.lifecycle_state())
            .finish()
    }
}

impl ComponentCore {
    pub(crate) fn new(id: ComponentId, system: Weak<SystemInner>) -> Arc<Self> {
        Arc::new(ComponentCore {
            id,
            system,
            state: AtomicU8::new(STATE_PASSIVE),
            dirty: AtomicBool::new(false),
            scheduled: AtomicBool::new(false),
            control_q: SegQueue::new(),
            timeout_q: SegQueue::new(),
            cancelled_timeouts: Mutex::new(HashSet::new()),
            runner: OnceLock::new(),
            timeout_sink: OnceLock::new(),
            probe: OnceLock::new(),
        })
    }

    /// The shared one-shot timeout receiver for this core.
    pub(crate) fn timeout_sink(self: &Arc<Self>) -> Arc<crate::timer::TimeoutSink> {
        self.timeout_sink
            .get_or_init(|| {
                Arc::new(crate::timer::TimeoutSink {
                    core: Arc::downgrade(self),
                })
            })
            .clone()
    }

    /// This component's id.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn lifecycle_state(&self) -> LifecycleState {
        match self.state.load(Ordering::Acquire) {
            STATE_PASSIVE => LifecycleState::Passive,
            STATE_ACTIVE => LifecycleState::Active,
            _ => LifecycleState::Destroyed,
        }
    }

    /// Marks the component as having pending work and schedules it if it is
    /// not already queued for execution.
    pub fn notify(self: &Arc<Self>) {
        self.dirty.store(true, Ordering::Release);
        if self.state.load(Ordering::Acquire) == STATE_DESTROYED {
            return;
        }
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            if let Some(system) = self.system.upgrade() {
                system.scheduler.schedule(self.clone());
            }
        }
    }

    pub(crate) fn push_control(self: &Arc<Self>, event: ControlEvent) {
        self.control_q.push(event);
        self.notify();
    }

    pub(crate) fn push_timeout(self: &Arc<Self>, id: TimeoutId) {
        self.timeout_q.push(id);
        self.notify();
    }

    pub(crate) fn is_timeout_cancelled(&self, id: TimeoutId) -> bool {
        self.cancelled_timeouts.lock().contains(&id)
    }

    /// Executes one scheduling batch: control events, timeouts, then up to
    /// the system's `max_events` port events. Re-schedules itself if new
    /// work arrived during execution or the batch limit was hit. Returns
    /// how many events the batch handled.
    pub fn run(self: &Arc<Self>) -> usize {
        if let Some(probe) = self.probe.get() {
            // The engine has dequeued this execution; a reschedule below
            // counts as a fresh queue entry.
            let _ = probe
                .depth
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
        }
        let handled = self.run_batch();
        if let Some(probe) = self.probe.get() {
            let rec = probe.sim.recorder();
            if rec.is_enabled() {
                rec.record(
                    probe.sim.now().as_nanos(),
                    kmsg_telemetry::EventKind::ComponentExec {
                        component: self.id.0,
                        handled: handled as u64,
                    },
                );
            }
        }
        handled
    }

    fn run_batch(self: &Arc<Self>) -> usize {
        let Some(runner) = self.runner.get().and_then(Weak::upgrade) else {
            self.scheduled.store(false, Ordering::Release);
            return 0;
        };
        let max_events = self
            .system
            .upgrade()
            .map_or(usize::MAX, |s| s.max_events_per_scheduling);
        self.dirty.store(false, Ordering::Release);
        let handled = runner.execute_batch(max_events);
        self.scheduled.store(false, Ordering::Release);
        if self.state.load(Ordering::Acquire) == STATE_DESTROYED {
            return handled;
        }
        if (self.dirty.load(Ordering::Acquire) || handled >= max_events)
            && !self.scheduled.swap(true, Ordering::AcqRel)
        {
            if let Some(system) = self.system.upgrade() {
                // Back of the queue: fairness between busy components.
                system.scheduler.schedule(self.clone());
            }
        }
        handled
    }
}

/// The simulation scheduler schedules a core's execution as an engine event
/// with the core itself as the target — no per-execution allocation.
impl kmsg_netsim::engine::EventTarget for ComponentCore {
    fn fire(self: Arc<Self>, _sim: &kmsg_netsim::engine::Sim, _token: u64) {
        self.run();
    }
}

/// Object-safe view of a typed [`Component`], held by the scheduler.
pub(crate) trait AbstractComponent: Send + Sync {
    fn execute_batch(&self, max_events: usize) -> usize;
}

/// A typed component: its definition plus its scheduling core.
pub struct Component<C: ComponentDefinition> {
    pub(crate) core: Arc<ComponentCore>,
    pub(crate) definition: Mutex<C>,
}

impl<C: ComponentDefinition> std::fmt::Debug for Component<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Component").field("core", &self.core).finish()
    }
}

impl<C: ComponentDefinition> AbstractComponent for Component<C> {
    fn execute_batch(&self, max_events: usize) -> usize {
        let mut definition = self.definition.lock();
        let mut ctx = ComponentContext {
            core: self.core.clone(),
        };
        let mut handled = 0usize;

        while let Some(ctrl) = self.core.control_q.pop() {
            let new_state = match ctrl {
                ControlEvent::Start => STATE_ACTIVE,
                ControlEvent::Stop => STATE_PASSIVE,
                ControlEvent::Kill => STATE_DESTROYED,
            };
            self.core.state.store(new_state, Ordering::Release);
            definition.handle_control(&mut ctx, ctrl);
            handled += 1;
            if ctrl == ControlEvent::Kill {
                return handled;
            }
        }
        if self.core.state.load(Ordering::Acquire) != STATE_ACTIVE {
            return handled;
        }
        while handled < max_events {
            let Some(id) = self.core.timeout_q.pop() else {
                break;
            };
            let cancelled = {
                let mut set = self.core.cancelled_timeouts.lock();
                set.take(&id).is_some()
            };
            if !cancelled {
                definition.on_timeout(&mut ctx, id);
                handled += 1;
            }
        }
        if handled < max_events {
            handled += definition.execute(&mut ctx, max_events - handled);
        }
        handled
    }

}

/// Execution context handed to every handler invocation.
///
/// Provides access to the clock, timer scheduling, and the component's own
/// identity. Deliberately *not* a general system handle: components
/// communicate through ports, never by reaching into each other.
pub struct ComponentContext {
    pub(crate) core: Arc<ComponentCore>,
}

impl std::fmt::Debug for ComponentContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentContext").field("id", &self.core.id).finish()
    }
}

impl ComponentContext {
    /// The id of the executing component.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.core.id
    }

    /// The system clock (virtual time under simulation, wall time since
    /// system start otherwise).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core
            .system
            .upgrade()
            .map_or(SimTime::ZERO, |s| s.clock.now())
    }

    /// Schedules a one-shot timeout; `on_timeout` fires after `delay`.
    pub fn schedule_once(&mut self, delay: Duration) -> TimeoutId {
        let system = self.core.system.upgrade().expect("system gone");
        let id = system.fresh_timeout_id();
        system.timer.schedule_once(delay, self.core.clone(), id);
        id
    }

    /// Schedules a periodic timeout firing every `period` after an initial
    /// `delay`.
    pub fn schedule_periodic(&mut self, delay: Duration, period: Duration) -> TimeoutId {
        let system = self.core.system.upgrade().expect("system gone");
        let id = system.fresh_timeout_id();
        system
            .timer
            .schedule_periodic(delay, period, self.core.clone(), id);
        id
    }

    /// Cancels a scheduled timeout. Expiries already queued are suppressed.
    pub fn cancel_timer(&mut self, id: TimeoutId) {
        self.core.cancelled_timeouts.lock().insert(id);
    }

    /// Stops this component (it can be started again).
    pub fn stop_self(&mut self) {
        self.core.push_control(ControlEvent::Stop);
    }

    /// Destroys this component.
    pub fn kill_self(&mut self) {
        self.core.push_control(ControlEvent::Kill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_states_map() {
        let core = ComponentCore::new(ComponentId(1), Weak::new());
        assert_eq!(core.lifecycle_state(), LifecycleState::Passive);
        core.state.store(STATE_ACTIVE, Ordering::Release);
        assert_eq!(core.lifecycle_state(), LifecycleState::Active);
        core.state.store(STATE_DESTROYED, Ordering::Release);
        assert_eq!(core.lifecycle_state(), LifecycleState::Destroyed);
        assert_eq!(core.id(), ComponentId(1));
    }

    #[test]
    fn notify_without_system_is_safe() {
        let core = ComponentCore::new(ComponentId(2), Weak::new());
        core.notify(); // system is gone: no panic
        assert!(core.dirty.load(Ordering::Acquire));
    }
}
