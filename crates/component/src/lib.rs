//! # kmsg-component — a Kompics-style component model for Rust
//!
//! Implements the programming model of the Kompics framework (§II-A of
//! *Fast and Flexible Networking for Message-oriented Middleware*,
//! ICDCS 2017): event-driven **components** connected by FIFO,
//! exactly-once **channels** through typed **ports**. Events are broadcast
//! on all connected channels (subject to per-channel selectors) and
//! components silently ignore events they don't subscribe to. A component
//! executes on at most one thread at a time and handles up to a
//! configurable number of events per scheduling — the throughput vs.
//! fairness knob described in the paper.
//!
//! Two execution modes share all component code:
//!
//! * **simulation** — components run as events on a
//!   [`kmsg_netsim::engine::Sim`] virtual-time loop (deterministic;
//!   used by every experiment in the reproduction), and
//! * **threaded** — a work-pool scheduler with wall-clock timers.
//!
//! # Example
//!
//! ```
//! use kmsg_component::prelude::*;
//! use kmsg_netsim::engine::Sim;
//! use std::time::Duration;
//!
//! // 1. Declare a port type.
//! #[derive(Debug, Clone)]
//! pub struct Ping(pub u64);
//! #[derive(Debug, Clone)]
//! pub struct Pong(pub u64);
//! pub struct PingPort;
//! impl Port for PingPort {
//!     type Request = Ping;      // requirer -> provider
//!     type Indication = Pong;   // provider -> requirer
//! }
//!
//! // 2. A provider component: answers every Ping with a Pong.
//! #[derive(Default)]
//! pub struct Ponger {
//!     port: ProvidedPort<PingPort>,
//! }
//! impl ComponentDefinition for Ponger {
//!     fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
//!         execute_ports!(self, ctx, max, [provided port: PingPort])
//!     }
//! }
//! impl Provide<PingPort> for Ponger {
//!     fn handle(&mut self, _ctx: &mut ComponentContext, ping: Ping) {
//!         self.port.trigger(Pong(ping.0));
//!     }
//! }
//! impl ProvideRef<PingPort> for Ponger {
//!     fn provided_port(&mut self) -> &mut ProvidedPort<PingPort> {
//!         &mut self.port
//!     }
//! }
//!
//! // 3. A requirer component: sends Pings on start, counts Pongs.
//! #[derive(Default)]
//! pub struct Pinger {
//!     port: RequiredPort<PingPort>,
//!     pub pongs: u64,
//! }
//! impl ComponentDefinition for Pinger {
//!     fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
//!         execute_ports!(self, ctx, max, [required port: PingPort])
//!     }
//!     fn handle_control(&mut self, _ctx: &mut ComponentContext, event: ControlEvent) {
//!         if event == ControlEvent::Start {
//!             for i in 0..10 {
//!                 self.port.trigger(Ping(i));
//!             }
//!         }
//!     }
//! }
//! impl Require<PingPort> for Pinger {
//!     fn handle(&mut self, _ctx: &mut ComponentContext, _pong: Pong) {
//!         self.pongs += 1;
//!     }
//! }
//! impl RequireRef<PingPort> for Pinger {
//!     fn required_port(&mut self) -> &mut RequiredPort<PingPort> {
//!         &mut self.port
//!     }
//! }
//!
//! // 4. Wire and run under virtual time.
//! let sim = Sim::new(1);
//! let system = ComponentSystem::simulation(&sim, SystemConfig::default());
//! let ponger = system.create(Ponger::default);
//! let pinger = system.create(Pinger::default);
//! system.connect::<PingPort, _, _>(&ponger, &pinger);
//! system.start(&ponger);
//! system.start(&pinger);
//! sim.run_for(Duration::from_secs(1));
//! assert_eq!(pinger.on_definition(|p| p.pongs), 10);
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod port;
pub mod scheduler;
pub mod system;
pub mod timer;

pub use component::{
    ComponentContext, ComponentDefinition, ComponentId, ControlEvent, HandleSelf, LifecycleState,
    Provide, ProvideRef, Require, RequireRef,
};
pub use port::{Never, Port, ProvidedPort, RequiredPort, Selector, SelfPort, SelfRef};
pub use system::{ComponentRef, ComponentSystem, SystemConfig};
pub use timer::TimeoutId;

/// Everything needed to define and wire components.
pub mod prelude {
    pub use crate::component::{
        ComponentContext, ComponentDefinition, ComponentId, ControlEvent, HandleSelf,
        LifecycleState, Provide, ProvideRef, Require, RequireRef,
    };
    pub use crate::execute_ports;
    pub use crate::port::{Never, Port, ProvidedPort, RequiredPort, Selector, SelfPort, SelfRef};
    pub use crate::system::{ComponentRef, ComponentSystem, SystemConfig};
    pub use crate::timer::TimeoutId;
}

/// Implements a component's `execute` by draining its ports round-robin.
///
/// Each entry is `kind field: Type` where `kind` is one of:
///
/// * `provided` — `field: ProvidedPort<Type>`, dispatching to
///   [`Provide<Type>::handle`](crate::component::Provide::handle);
/// * `required` — `field: RequiredPort<Type>`, dispatching to
///   [`Require<Type>::handle`](crate::component::Require::handle);
/// * `selfport` — `field: SelfPort<Type>`, dispatching to
///   [`HandleSelf<Type>::handle_self`](crate::component::HandleSelf::handle_self).
///
/// Returns the number of events handled (at most `max`).
///
/// See the [crate documentation](crate) for a complete example.
#[macro_export]
macro_rules! execute_ports {
    ($self:ident, $ctx:ident, $max:ident, [ $($kind:ident $field:ident : $ty:ty),* $(,)? ]) => {{
        let mut handled = 0usize;
        let mut progress = true;
        while progress && handled < $max {
            progress = false;
            $(
                if handled < $max {
                    if let Some(ev) = $self.$field.take() {
                        $crate::execute_ports!(@dispatch $kind, $self, $ctx, ev, $ty);
                        handled += 1;
                        progress = true;
                    }
                }
            )*
        }
        handled
    }};
    (@dispatch provided, $self:ident, $ctx:ident, $ev:ident, $ty:ty) => {
        <Self as $crate::component::Provide<$ty>>::handle($self, $ctx, $ev)
    };
    (@dispatch required, $self:ident, $ctx:ident, $ev:ident, $ty:ty) => {
        <Self as $crate::component::Require<$ty>>::handle($self, $ctx, $ev)
    };
    (@dispatch selfport, $self:ident, $ctx:ident, $ev:ident, $ty:ty) => {
        <Self as $crate::component::HandleSelf<$ty>>::handle_self($self, $ctx, $ev)
    };
}
