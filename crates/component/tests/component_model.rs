//! Integration tests for the component model: Kompics semantics
//! (broadcast, FIFO, exactly-once, selectors), lifecycle, timers, self
//! ports, fairness, and the threaded scheduler.

use std::sync::Arc;
use std::time::Duration;

use kmsg_component::prelude::*;
use kmsg_netsim::engine::Sim;

#[derive(Debug, Clone, PartialEq)]
struct Num(u64);

struct NumPort;
impl Port for NumPort {
    type Request = Num;
    type Indication = Num;
}

/// Echoes every request back as an indication.
#[derive(Default)]
struct Echo {
    port: ProvidedPort<NumPort>,
    seen: Vec<u64>,
}

impl ComponentDefinition for Echo {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [provided port: NumPort])
    }
}
impl Provide<NumPort> for Echo {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: Num) {
        self.seen.push(ev.0);
        self.port.trigger(ev);
    }
}
impl ProvideRef<NumPort> for Echo {
    fn provided_port(&mut self) -> &mut ProvidedPort<NumPort> {
        &mut self.port
    }
}

/// Sends a burst on start, records indications.
#[derive(Default)]
struct Client {
    port: RequiredPort<NumPort>,
    burst: u64,
    received: Vec<u64>,
}

impl ComponentDefinition for Client {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [required port: NumPort])
    }
    fn handle_control(&mut self, _ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start {
            for i in 0..self.burst {
                self.port.trigger(Num(i));
            }
        }
    }
}
impl Require<NumPort> for Client {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: Num) {
        self.received.push(ev.0);
    }
}
impl RequireRef<NumPort> for Client {
    fn required_port(&mut self) -> &mut RequiredPort<NumPort> {
        &mut self.port
    }
}

fn sim_system() -> (Sim, ComponentSystem) {
    let sim = Sim::new(99);
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    (sim, system)
}

#[test]
fn fifo_exactly_once_round_trip() {
    let (sim, system) = sim_system();
    let echo = system.create(Echo::default);
    let client = system.create(|| Client {
        burst: 100,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &client);
    system.start(&echo);
    system.start(&client);
    sim.run_for(Duration::from_secs(1));
    let received = client.on_definition(|c| c.received.clone());
    assert_eq!(received, (0..100).collect::<Vec<_>>(), "FIFO exactly-once");
    assert_eq!(echo.on_definition(|e| e.seen.len()), 100);
}

#[test]
fn broadcast_to_multiple_requirers() {
    let (sim, system) = sim_system();
    let echo = system.create(Echo::default);
    let c1 = system.create(|| Client {
        burst: 1,
        ..Client::default()
    });
    let c2 = system.create(|| Client {
        burst: 0,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &c1);
    system.connect::<NumPort, _, _>(&echo, &c2);
    system.start(&echo);
    system.start(&c1);
    system.start(&c2);
    sim.run_for(Duration::from_secs(1));
    // c1's single ping is answered; the indication broadcasts to BOTH
    // requirers (Kompics channel semantics).
    assert_eq!(c1.on_definition(|c| c.received.clone()), vec![0]);
    assert_eq!(c2.on_definition(|c| c.received.clone()), vec![0]);
}

#[test]
fn channel_selectors_route_indications() {
    let (sim, system) = sim_system();
    let echo = system.create(Echo::default);
    let even = system.create(|| Client {
        burst: 10,
        ..Client::default()
    });
    let odd = system.create(|| Client {
        burst: 0,
        ..Client::default()
    });
    system.connect_filtered::<NumPort, _, _>(
        &echo,
        &even,
        None,
        Some(Arc::new(|n: &Num| n.0.is_multiple_of(2))),
    );
    system.connect_filtered::<NumPort, _, _>(
        &echo,
        &odd,
        None,
        Some(Arc::new(|n: &Num| n.0 % 2 == 1)),
    );
    system.start(&echo);
    system.start(&even);
    system.start(&odd);
    sim.run_for(Duration::from_secs(1));
    assert_eq!(even.on_definition(|c| c.received.clone()), vec![0, 2, 4, 6, 8]);
    assert_eq!(odd.on_definition(|c| c.received.clone()), vec![1, 3, 5, 7, 9]);
}

#[test]
fn passive_components_queue_until_started() {
    let (sim, system) = sim_system();
    let echo = system.create(Echo::default);
    let client = system.create(|| Client {
        burst: 5,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &client);
    system.start(&client); // echo stays passive
    sim.run_for(Duration::from_secs(1));
    assert_eq!(echo.on_definition(|e| e.seen.len()), 0, "passive: must not run");
    assert_eq!(echo.lifecycle_state(), LifecycleState::Passive);
    system.start(&echo);
    sim.run_for(Duration::from_secs(1));
    assert_eq!(echo.on_definition(|e| e.seen.len()), 5, "events retained");
    assert_eq!(client.on_definition(|c| c.received.len()), 5);
}

#[test]
fn killed_component_stops_processing() {
    let (sim, system) = sim_system();
    let echo = system.create(Echo::default);
    let client = system.create(|| Client {
        burst: 1,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &client);
    system.start(&echo);
    system.start(&client);
    sim.run_for(Duration::from_secs(1));
    system.kill(&echo);
    sim.run_for(Duration::from_millis(10));
    assert_eq!(echo.lifecycle_state(), LifecycleState::Destroyed);
    // New requests are ignored.
    client.on_definition(|c| c.port.trigger(Num(7)));
    sim.run_for(Duration::from_secs(1));
    assert_eq!(echo.on_definition(|e| e.seen.len()), 1);
}

/// A component that counts timer firings and cancels after five.
#[derive(Default)]
struct Ticker {
    ticks: u32,
    timer: Option<TimeoutId>,
}

impl ComponentDefinition for Ticker {
    fn execute(&mut self, _ctx: &mut ComponentContext, _max: usize) -> usize {
        0
    }
    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start {
            self.timer =
                Some(ctx.schedule_periodic(Duration::from_millis(10), Duration::from_millis(10)));
        }
    }
    fn on_timeout(&mut self, ctx: &mut ComponentContext, id: TimeoutId) {
        if Some(id) == self.timer {
            self.ticks += 1;
            if self.ticks == 5 {
                ctx.cancel_timer(id);
            }
        }
    }
}

#[test]
fn periodic_timer_fires_and_cancels() {
    let (sim, system) = sim_system();
    let ticker = system.create(Ticker::default);
    system.start(&ticker);
    sim.run_for(Duration::from_secs(2));
    assert_eq!(ticker.on_definition(|t| t.ticks), 5);
}

/// A component fed exclusively through a self port.
#[derive(Default)]
struct Injected {
    inbox: SelfPort<String>,
    log: Vec<String>,
}

impl ComponentDefinition for Injected {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [selfport inbox: String])
    }
}
impl HandleSelf<String> for Injected {
    fn handle_self(&mut self, _ctx: &mut ComponentContext, event: String) {
        self.log.push(event);
    }
}

#[test]
fn self_port_injection_from_outside() {
    let (sim, system) = sim_system();
    let comp = system.create(Injected::default);
    let handle = comp.self_ref(|c| &mut c.inbox);
    system.start(&comp);
    handle.push("hello".to_string());
    handle.push("world".to_string());
    sim.run_for(Duration::from_secs(1));
    assert_eq!(comp.on_definition(|c| c.log.clone()), vec!["hello", "world"]);
}

/// An echo variant that records how many events each `execute` batch
/// handled, to verify the `max_events_per_scheduling` fairness knob.
#[derive(Default)]
struct BatchEcho {
    port: ProvidedPort<NumPort>,
    batches: Vec<usize>,
    total: usize,
}

impl ComponentDefinition for BatchEcho {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        let handled = execute_ports!(self, ctx, max, [provided port: NumPort]);
        if handled > 0 {
            self.batches.push(handled);
            self.total += handled;
        }
        handled
    }
}
impl Provide<NumPort> for BatchEcho {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: Num) {
        self.port.trigger(ev);
    }
}
impl ProvideRef<NumPort> for BatchEcho {
    fn provided_port(&mut self) -> &mut ProvidedPort<NumPort> {
        &mut self.port
    }
}

/// Fairness: a component with a huge backlog yields after
/// `max_events_per_scheduling` events and is rescheduled at the back of
/// the queue rather than monopolising the scheduler.
#[test]
fn max_events_per_scheduling_bounds_batches() {
    let sim = Sim::new(5);
    let system = ComponentSystem::simulation(
        &sim,
        SystemConfig {
            max_events_per_scheduling: 10,
            ..SystemConfig::default()
        },
    );
    let echo = system.create(BatchEcho::default);
    let client = system.create(|| Client {
        burst: 1000,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &client);
    system.start(&echo);
    system.start(&client);
    sim.run_for(Duration::from_secs(1));
    let (batches, total) = echo.on_definition(|e| (e.batches.clone(), e.total));
    assert_eq!(total, 1000);
    assert!(batches.iter().all(|&b| b <= 10), "batch exceeded limit: {batches:?}");
    assert!(batches.len() >= 100, "expected >= 100 batches, got {}", batches.len());
    assert_eq!(client.on_definition(|c| c.received.len()), 1000);
}

#[test]
fn threaded_system_round_trip() {
    let system = ComponentSystem::threaded(SystemConfig {
        threads: 2,
        ..SystemConfig::default()
    });
    let echo = system.create(Echo::default);
    let client = system.create(|| Client {
        burst: 500,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &client);
    system.start(&echo);
    system.start(&client);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let n = client.on_definition(|c| c.received.len());
        if n == 500 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "threaded round trip timed out at {n}/500"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let received = client.on_definition(|c| c.received.clone());
    assert_eq!(received, (0..500).collect::<Vec<_>>(), "FIFO under threads");
    system.shutdown();
}

#[test]
fn threaded_timer_delivery() {
    let system = ComponentSystem::threaded(SystemConfig {
        threads: 2,
        ..SystemConfig::default()
    });
    let ticker = system.create(Ticker::default);
    system.start(&ticker);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ticker.on_definition(|t| t.ticks) < 5 {
        assert!(std::time::Instant::now() < deadline, "timer ticks timed out");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(ticker.on_definition(|t| t.ticks), 5);
    system.shutdown();
}

#[test]
fn system_clock_advances_with_sim() {
    let (sim, system) = sim_system();
    assert_eq!(system.now(), kmsg_netsim::time::SimTime::ZERO);
    sim.run_for(Duration::from_secs(4));
    assert_eq!(system.now(), kmsg_netsim::time::SimTime::from_secs(4));
}

#[test]
fn component_count_tracks_creation() {
    let (_sim, system) = sim_system();
    assert_eq!(system.component_count(), 0);
    let _a = system.create(Echo::default);
    let _b = system.create(Echo::default);
    assert_eq!(system.component_count(), 2);
}

/// Request-direction selectors: a provider only receives the requests its
/// channel's filter accepts (the mirror image of the indication selectors
/// used for virtual-node routing).
#[test]
fn channel_selectors_route_requests() {
    let sim = Sim::new(123);
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    let even_echo = system.create(Echo::default);
    let odd_echo = system.create(Echo::default);
    let client = system.create(|| Client {
        burst: 10,
        ..Client::default()
    });
    system.connect_filtered::<NumPort, _, _>(
        &even_echo,
        &client,
        Some(Arc::new(|n: &Num| n.0.is_multiple_of(2))),
        None,
    );
    system.connect_filtered::<NumPort, _, _>(
        &odd_echo,
        &client,
        Some(Arc::new(|n: &Num| n.0 % 2 == 1)),
        None,
    );
    system.start(&even_echo);
    system.start(&odd_echo);
    system.start(&client);
    sim.run_for(Duration::from_secs(1));
    assert_eq!(even_echo.on_definition(|e| e.seen.clone()), vec![0, 2, 4, 6, 8]);
    assert_eq!(odd_echo.on_definition(|e| e.seen.clone()), vec![1, 3, 5, 7, 9]);
    // The client hears every echo twice? No: each request went to exactly
    // one provider, and each provider broadcasts its indication to its own
    // channel back to the client.
    assert_eq!(client.on_definition(|c| c.received.len()), 10);
}

/// Stop pauses a component (events queue); start resumes with events
/// retained.
#[test]
fn stop_and_restart_retains_events() {
    let sim = Sim::new(7);
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    let echo = system.create(Echo::default);
    let client = system.create(|| Client {
        burst: 3,
        ..Client::default()
    });
    system.connect::<NumPort, _, _>(&echo, &client);
    system.start(&echo);
    system.start(&client);
    sim.run_for(Duration::from_secs(1));
    assert_eq!(echo.on_definition(|e| e.seen.len()), 3);
    system.stop(&echo);
    sim.run_for(Duration::from_millis(10));
    assert_eq!(echo.lifecycle_state(), LifecycleState::Passive);
    client.on_definition(|c| {
        for i in 100..105 {
            c.port.trigger(Num(i));
        }
    });
    sim.run_for(Duration::from_secs(1));
    assert_eq!(echo.on_definition(|e| e.seen.len()), 3, "paused: nothing handled");
    system.start(&echo);
    sim.run_for(Duration::from_secs(1));
    assert_eq!(
        echo.on_definition(|e| e.seen.clone())[3..],
        [100, 101, 102, 103, 104]
    );
}
