//! # kompics-messaging — fast and flexible networking for
//! message-oriented middleware
//!
//! A comprehensive Rust reproduction of *Fast and Flexible Networking for
//! Message-oriented Middleware* (Kroll, Ormenisan, Dowling — ICDCS 2017):
//! the **KompicsMessaging** middleware, every substrate it depends on, and
//! the paper's full experimental evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`component`] | `kmsg-component` | Kompics component model: typed ports, FIFO channels, selectors, schedulers |
//! | [`netsim`] | `kmsg-netsim` | deterministic discrete-event network simulator: packet-level TCP, UDP, UDT |
//! | [`learning`] | `kmsg-learning` | Sarsa(λ), eligibility traces, value-function backends |
//! | [`core`] | `kmsg-core` | the middleware: per-message transport selection, `DATA` meta-protocol, vnodes, routing |
//! | [`apps`] | `kmsg-apps` | evaluation workloads: file transfer, ping/pong, EC2-like scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use kompics_messaging::prelude::*;
//! use std::time::Duration;
//!
//! // A deterministic world: two hosts, 3 ms RTT VPC link.
//! let world = two_host_world(42, &Setup::EuVpc);
//! let a = NetAddress::new(world.host_a, 7000);
//! let b = NetAddress::new(world.host_b, 7000);
//!
//! // Full middleware stacks on both hosts.
//! let stack_a = create_network(&world.system, &world.net, NetworkConfig::new(a)).unwrap();
//! let stack_b = create_network(&world.system, &world.net, NetworkConfig::new(b)).unwrap();
//! world.system.start(&stack_a);
//! world.system.start(&stack_b);
//!
//! // Middleware stats are observable live.
//! let stats = stack_a.on_definition(|n| n.stats());
//! world.sim.run_for(Duration::from_secs(1));
//! assert_eq!(stats.lock().total_sent(), 0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `kmsg-bench` for
//! the binaries regenerating every figure of the paper's evaluation.

pub use kmsg_apps as apps;
pub use kmsg_component as component;
pub use kmsg_core as core;
pub use kmsg_learning as learning;
pub use kmsg_netsim as netsim;

/// One-stop imports for building applications on the middleware.
pub mod prelude {
    pub use kmsg_apps::{
        run_experiment, two_host_world, Dataset, ExperimentConfig, ExperimentResult,
        FileReceiver, FileSender, PingSettings, Pinger, PingerConfig, Ponger, ReceiverConfig,
        SenderConfig, Setup, TwoHostWorld,
    };
    pub use kmsg_component::prelude::*;
    pub use kmsg_core::prelude::*;
    pub use kmsg_netsim::{
        engine::Sim, link::LinkConfig, link::PolicerConfig, network::Network, rng::SeedSource,
        time::SimTime,
    };
}
