//! Whole-stack determinism: two runs of the same seeded transfer through
//! the timing-wheel engine must be byte-identical — same middleware
//! counters on both hosts, same number of simulation events executed.
//!
//! This is the integration-level complement to the engine-level property
//! tests in `crates/netsim/tests/engine_determinism.rs`: it exercises the
//! now-lane component scheduler, zero-alloc timer targets and packet-hop
//! events through the full TCP/UDT middleware stacks.

use kompics_messaging::prelude::*;

struct RunSnapshot {
    sender_net: String,
    receiver_net: String,
    events: u64,
    verified: bool,
    transfer_time: Option<std::time::Duration>,
}

fn run_once(transport: Transport, seed: u64) -> RunSnapshot {
    let mb = if cfg!(debug_assertions) { 2 } else { 6 };
    let dataset = Dataset::climate(mb * 1024 * 1024, seed);
    let setup = Setup::paper_setups()
        .into_iter()
        .next()
        .expect("paper setups nonempty");
    let cfg = ExperimentConfig::transfer(setup, transport, dataset, seed);
    let r = run_experiment(&cfg);
    RunSnapshot {
        sender_net: format!("{:?}", r.sender_net),
        receiver_net: format!("{:?}", r.receiver_net),
        events: r.events,
        verified: r.verified,
        transfer_time: r.transfer_time,
    }
}

#[test]
fn same_seed_transfer_runs_are_byte_identical() {
    for transport in [Transport::Tcp, Transport::Udt] {
        let a = run_once(transport, 11);
        let b = run_once(transport, 11);
        assert!(a.verified, "{transport}: transfer must verify");
        assert!(a.events > 0, "{transport}: events must be counted");
        assert_eq!(
            a.sender_net, b.sender_net,
            "{transport}: sender middleware stats must be identical"
        );
        assert_eq!(
            a.receiver_net, b.receiver_net,
            "{transport}: receiver middleware stats must be identical"
        );
        assert_eq!(
            a.events, b.events,
            "{transport}: events executed must be identical"
        );
        assert_eq!(
            a.transfer_time, b.transfer_time,
            "{transport}: transfer completion time must be identical"
        );
        assert_eq!(a.verified, b.verified);
    }
}
