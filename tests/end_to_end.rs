//! Cross-crate end-to-end tests: full middleware stacks on the calibrated
//! environments, exercising the behaviours the paper's evaluation hinges
//! on.

use std::time::Duration;

use kompics_messaging::prelude::*;

fn small_climate(seed: u64) -> Dataset {
    let mb = if cfg!(debug_assertions) { 4 } else { 8 };
    Dataset::climate(mb * 1024 * 1024, seed)
}

#[test]
fn transfer_verifies_on_every_setup_and_transport() {
    for setup in Setup::paper_setups() {
        for transport in [Transport::Tcp, Transport::Udt] {
            let cfg = ExperimentConfig::transfer(setup.clone(), transport, small_climate(1), 3);
            let result = run_experiment(&cfg);
            assert!(
                result.verified,
                "checksum must hold for {transport} on {}",
                setup.label()
            );
            assert!(result.throughput.is_some(), "{transport} on {}", setup.label());
        }
    }
}

#[test]
fn adaptive_data_converges_towards_udt_on_lossy_wan() {
    // After TCP's slow-start honeymoon decays, its AIMD equilibrium is far
    // below UDT's policer-capped ~8-10 MB/s; over a long enough horizon the
    // learner's target must sit on the UDT side. Unoptimized builds run a
    // 10x-lossier variant so the honeymoon (and the test) is 10x shorter;
    // the release build exercises the paper's EU2AU setup.
    let (setup, size) = if cfg!(debug_assertions) {
        (
            Setup::Custom {
                label: "lossy-wan",
                link: LinkConfig::new(125e6, Duration::from_millis(160))
                    .random_loss(5e-4)
                    .udp_policer(PolicerConfig::ec2_udp()),
            },
            64 * 1024 * 1024,
        )
    } else {
        (Setup::Eu2Au, 256 * 1024 * 1024)
    };
    let dataset = Dataset::climate(size, 2);
    let mut cfg = ExperimentConfig::transfer(setup, Transport::Data, dataset, 5);
    cfg.max_sim_time = Duration::from_secs(500);
    let result = run_experiment(&cfg);
    assert!(result.verified);
    let tail: Vec<f64> = result
        .flow_points
        .iter()
        .rev()
        .take(8)
        .map(|p| p.target_ratio)
        .collect();
    assert!(!tail.is_empty(), "learner must have produced episodes");
    let mean_tail = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        mean_tail > 0.0,
        "target ratio should lean UDT on the lossy WAN, got {mean_tail}"
    );
}

#[test]
fn adaptive_data_converges_towards_tcp_on_fast_path() {
    // The analysis link: TCP ~100 MB/s, UDT ~11 MB/s.
    let result = {
        use kmsg_core::data::{DataNetworkConfig, PrpKind};
        let dataset = Dataset::climate(4 * 1024 * 1024 * 1024, 2);
        let mut cfg = ExperimentConfig::transfer(
            Setup::analysis_link(),
            Transport::Data,
            dataset,
            6,
        );
        cfg.use_disk = false;
        cfg.max_sim_time =
            Duration::from_secs(if cfg!(debug_assertions) { 30 } else { 45 });
        // Default TD config with the Fig. 6 backend is already in place;
        // just make sure we really are using a learner.
        assert!(matches!(cfg.data_cfg.prp, PrpKind::Td(_)));
        let _ = DataNetworkConfig::default();
        run_experiment(&cfg)
    };
    let tail: Vec<f64> = result
        .flow_points
        .iter()
        .rev()
        .take(10)
        .map(|p| p.target_ratio)
        .collect();
    let mean_tail = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        mean_tail < -0.2,
        "target ratio should lean TCP on the fast clean path, got {mean_tail}"
    );
}

#[test]
fn control_latency_ordering_matches_figure_8() {
    let setup = Setup::Eu2Us;
    let ping = PingSettings::default();
    let mean_ms = |cfg: &ExperimentConfig| -> f64 {
        let r = run_experiment(cfg);
        r.ping
            .expect("ping stats")
            .mean()
            .expect("rtts collected")
            .as_secs_f64()
            * 1e3
    };
    let baseline = {
        let cfg =
            ExperimentConfig::ping_only(setup.clone(), ping.clone(), 7, Duration::from_secs(8));
        mean_ms(&cfg)
    };
    let mb = if cfg!(debug_assertions) { 8 } else { 24 };
    let dataset = Dataset::climate(mb * 1024 * 1024, 1);
    let with = |transport: Transport| {
        let mut cfg = ExperimentConfig::transfer(setup.clone(), transport, dataset, 7);
        cfg.ping = Some(ping.clone());
        mean_ms(&cfg)
    };
    let tcp_tcp = with(Transport::Tcp);
    let tcp_udt = with(Transport::Udt);
    let tcp_data = with(Transport::Data);
    assert!(
        tcp_tcp > 2.0 * baseline,
        "data over TCP must hurt control latency: {tcp_tcp} vs {baseline}"
    );
    assert!(
        tcp_udt < 1.3 * baseline,
        "data over UDT must barely interfere: {tcp_udt} vs {baseline}"
    );
    assert!(
        tcp_data < tcp_tcp,
        "DATA must beat all-TCP: {tcp_data} vs {tcp_tcp}"
    );
}

#[test]
fn experiments_are_deterministic() {
    let cfg = ExperimentConfig::transfer(Setup::Eu2Us, Transport::Udt, small_climate(4), 11);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.transfer_time, b.transfer_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.receiver_samples.len(), b.receiver_samples.len());
}

#[test]
fn different_seeds_vary_lossy_runs() {
    // A heavily lossy custom link guarantees many random loss events.
    let setup = Setup::Custom {
        label: "lossy",
        link: LinkConfig::new(10e6, Duration::from_millis(20)).random_loss(0.01),
    };
    let thr = |seed| {
        let cfg = ExperimentConfig::transfer(setup.clone(), Transport::Tcp, small_climate(4), seed);
        run_experiment(&cfg).transfer_time.expect("completed")
    };
    assert_ne!(thr(1), thr(2), "loss randomness must differ across seeds");
}

#[test]
fn udp_pings_work_alongside_transfers() {
    let mut cfg = ExperimentConfig::transfer(
        Setup::EuVpc,
        Transport::Tcp,
        small_climate(1),
        9,
    );
    cfg.ping = Some(PingSettings {
        transport: Transport::Udp,
        interval: Duration::from_millis(100),
    });
    let result = run_experiment(&cfg);
    assert!(result.verified);
    let ping = result.ping.expect("ping stats");
    assert!(ping.received > 0, "UDP pings must flow during the transfer");
}

#[test]
fn middleware_stats_surface_in_results() {
    let cfg = ExperimentConfig::transfer(Setup::EuVpc, Transport::Udt, small_climate(2), 13);
    let result = run_experiment(&cfg);
    assert!(result.verified);
    let tx = &result.sender_net;
    let rx = &result.receiver_net;
    assert!(tx.sent[Transport::Udt.to_byte() as usize] > 0, "UDT messages counted");
    assert_eq!(tx.total_sent(), rx.total_received(), "no loss on the clean VPC");
    assert!(tx.bytes_out > 0);
    // The climate dataset compresses ~10%: wire bytes < payload bytes.
    assert!(
        tx.bytes_out < 8 * 1024 * 1024,
        "compression must shave the wire bytes, got {}",
        tx.bytes_out
    );
    assert_eq!(tx.local_reflections, 0);
}
